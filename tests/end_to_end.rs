//! Cross-crate integration tests: the full PatDNN pipeline from training
//! through pruning, compilation, and execution.

use patdnn::compiler::fkr::filter_kernel_reorder;
use patdnn::compiler::fkw::FkwLayer;
use patdnn::compiler::tune::space::TuningConfig;
use patdnn::core::admm::{conv_weights, AdmmConfig, AdmmPruner};
use patdnn::core::sparsity::{conv_sparsity, total_compression};
use patdnn::nn::data::Dataset;
use patdnn::nn::layer::{Layer, Mode};
use patdnn::nn::models::small_cnn;
use patdnn::nn::optim::Adam;
use patdnn::nn::train::{evaluate, train, TrainConfig};
use patdnn::runtime::executor::ConvExecutor;
use patdnn::runtime::pattern_exec::{OptLevel, PatternConv};
use patdnn::tensor::rng::Rng;
use patdnn::tensor::{Conv2dGeometry, Tensor};

fn fast_admm() -> AdmmConfig {
    AdmmConfig {
        pattern_count: 6,
        connectivity_rate: 2.0,
        iterations: 2,
        epochs_per_iteration: 1,
        retrain_epochs: 2,
        batch_size: 8,
        lr: 2e-3,
        ..AdmmConfig::default()
    }
}

/// Train → ADMM prune → compile to FKW → execute: the pruned network's
/// conv layers must produce identical results through the pattern
/// executor as through the nn-layer forward pass.
#[test]
fn pruned_network_executes_identically_through_the_runtime() {
    let mut rng = Rng::seed_from(1);
    let data = Dataset::synthetic(3, 10, 3, 8, 8, 0.4, &mut rng);
    let mut net = small_cnn(3, 8, 3, &mut rng);
    let mut opt = Adam::new(2e-3);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        verbose: false,
    };
    train(&mut net, &data, &mut opt, &cfg, &mut rng);

    let pruner = AdmmPruner::new(fast_admm());
    let (pruned, _) = pruner.prune(&mut net, &data, &mut rng);

    // Pull each pruned conv's weights and compare nn vs runtime execution.
    let weights = conv_weights(&mut net);
    for (lp, w) in pruned.layers.iter().zip(&weights) {
        let s = w.shape4();
        let geo = Conv2dGeometry::new(s.n, s.c, s.h, s.w, 8, 8, 1, 1);
        let order = filter_kernel_reorder(lp);
        let fkw = FkwLayer::from_pruned(w, lp, &pruned.pattern_set, &order);
        assert_eq!(fkw.to_dense(), *w, "FKW round trip for {}", lp.name);

        let input = Tensor::randn(&[1, s.c, 8, 8], &mut rng);
        let expect = patdnn::tensor::conv2d_ref(&input, w, None, &geo);
        for level in OptLevel::all() {
            let exec =
                PatternConv::new(geo, fkw.clone(), None, level, TuningConfig::tuned_default());
            let got = exec.run(&input);
            assert!(
                expect.approx_eq(&got, 1e-3),
                "{} diverges on layer {}",
                level.label(),
                lp.name
            );
        }
    }
}

/// The accuracy pipeline end to end: pruning with retraining should stay
/// within a reasonable band of the dense accuracy on the synthetic task.
#[test]
fn admm_pruning_keeps_accuracy_on_synthetic_task() {
    let mut rng = Rng::seed_from(2);
    let data = Dataset::synthetic(3, 20, 3, 8, 8, 0.4, &mut rng);
    let (train_ds, test_ds) = data.split(0.8);
    let mut net = small_cnn(3, 8, 3, &mut rng);
    let mut opt = Adam::new(2e-3);
    let cfg = TrainConfig {
        epochs: 6,
        batch_size: 8,
        verbose: false,
    };
    train(&mut net, &train_ds, &mut opt, &cfg, &mut rng);
    let dense = evaluate(&mut net, &test_ds);

    let pruner = AdmmPruner::new(fast_admm());
    let (pruned, _) = pruner.prune(&mut net, &train_ds, &mut rng);
    let sparse = evaluate(&mut net, &test_ds);

    assert!(
        pruned.conv_compression() > 3.0,
        "compression {:.2}",
        pruned.conv_compression()
    );
    assert!(
        sparse.top1 >= dense.top1 - 0.25,
        "accuracy collapsed: dense {:?} sparse {:?}",
        dense,
        sparse
    );
    // The sparsity accounting agrees with the pruning record.
    let stats = conv_sparsity(&mut net);
    assert!((total_compression(&stats) - pruned.conv_compression()).abs() < 0.3);
}

/// The network still runs forward/backward after pruning (masks do not
/// break gradient flow for surviving weights).
#[test]
fn pruned_network_remains_trainable() {
    let mut rng = Rng::seed_from(3);
    let data = Dataset::synthetic(3, 8, 3, 8, 8, 0.4, &mut rng);
    let mut net = small_cnn(3, 8, 3, &mut rng);
    let pruner = AdmmPruner::new(fast_admm());
    pruner.prune(&mut net, &data, &mut rng);

    let (x, _) = data.batch(&[0, 1]);
    let out = net.forward(&x, Mode::Train);
    let grad = Tensor::filled(out.shape(), 1.0);
    let dx = net.backward(&grad);
    assert_eq!(dx.shape(), x.shape());
}
