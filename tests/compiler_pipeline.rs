//! Integration tests of the compiler stage against the model specs.

use patdnn::compiler::codegen::{emit_conv_kernel, CodegenLevel};
use patdnn::compiler::fkr::filter_kernel_reorder;
use patdnn::compiler::fkw::FkwLayer;
use patdnn::compiler::graph::Graph;
use patdnn::compiler::lr::{Device, LayerLr};
use patdnn::compiler::passes::optimize;
use patdnn::compiler::tune::space::TuningConfig;
use patdnn::core::pattern_set::PatternSet;
use patdnn::core::project::{alpha_for_rate, prune_layer};
use patdnn::nn::models::{resnet50, vgg16, DatasetKind};
use patdnn::tensor::rng::Rng;
use patdnn::tensor::Tensor;

/// Every 3x3 VGG-16 layer compiles through prune → FKR → FKW → LR →
/// codegen without loss.
#[test]
fn vgg16_layers_compile_end_to_end() {
    let spec = vgg16(DatasetKind::Cifar10);
    let mut rng = Rng::seed_from(5);
    for (conv, _) in spec.unique_convs() {
        let mut w = Tensor::randn(&[conv.out_c, conv.in_c, 3, 3], &mut rng);
        let set = PatternSet::harvest(&[&w], 8);
        let alpha = alpha_for_rate(conv.out_c * conv.in_c, 3.6);
        let lp = prune_layer(&conv.name, &mut w, &set, alpha);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        assert_eq!(fkw.to_dense(), w, "{} round trip", conv.name);
        assert_eq!(
            order.group_imbalance(&lp),
            0,
            "{} balanced groups",
            conv.name
        );

        let lr = LayerLr::for_fkw(
            &conv.name,
            Device::Cpu,
            &fkw,
            TuningConfig::tuned_default(),
            1,
            1,
        );
        let text = lr.emit();
        assert!(text.contains(&conv.name));

        let code = emit_conv_kernel(
            &conv.name,
            &fkw,
            &TuningConfig::tuned_default(),
            CodegenLevel::Reorder,
        );
        assert!(
            !code.contains("switch"),
            "{} reorder code branch-free",
            conv.name
        );
    }
}

/// ResNet-50's conv/BN/ReLU chains fully fuse in the graph passes.
#[test]
fn resnet_chain_fuses_completely() {
    let spec = resnet50(DatasetKind::Cifar10);
    // Build a graph from the first bottleneck's main path.
    let convs: Vec<_> = spec
        .convs
        .iter()
        .filter(|c| c.name.starts_with("stage1.block1") && !c.shortcut)
        .collect();
    assert_eq!(convs.len(), 3);
    let tuples: Vec<(&str, usize, usize, usize, usize, usize)> = convs
        .iter()
        .map(|c| (c.name.as_str(), c.out_c, c.in_c, c.kernel, c.stride, c.pad))
        .collect();
    let mut g = Graph::conv_chain(&[1, 64, 32, 32], &tuples, true, true);
    let before = g.nodes.len();
    optimize(&mut g);
    assert_eq!(g.count_kind("batchnorm"), 0);
    assert_eq!(g.count_kind("relu"), 0);
    assert_eq!(g.count_kind("conv"), 3);
    assert!(g.nodes.len() < before);
}

/// The paper-critical invariant: 1x1 layers (ResNet bottlenecks) go
/// through connectivity-only pruning and still compile to FKW.
#[test]
fn resnet_1x1_layers_compile_with_connectivity_only() {
    let spec = resnet50(DatasetKind::ImageNet);
    let one_by_one = spec
        .convs
        .iter()
        .find(|c| c.kernel == 1 && !c.shortcut)
        .expect("resnet has 1x1 convs");
    let mut rng = Rng::seed_from(6);
    let mut w = Tensor::randn(&[one_by_one.out_c, one_by_one.in_c, 1, 1], &mut rng);
    let set = PatternSet::standard(8);
    let alpha = alpha_for_rate(one_by_one.out_c * one_by_one.in_c, 3.6);
    let lp = prune_layer(&one_by_one.name, &mut w, &set, alpha);
    assert_eq!(lp.kept_kernels(), alpha);
    let order = filter_kernel_reorder(&lp);
    let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
    assert_eq!(fkw.entries_per_kernel, 1);
    assert_eq!(fkw.to_dense(), w);
}
