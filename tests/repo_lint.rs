//! Tier-1 gate for the zero-dependency repo lint (`tools/lint.rs`):
//! `unsafe` blocks must carry `// SAFETY:` justifications, and the
//! serving warm paths must not `unwrap`/`expect` outside the reviewed
//! allowlist (`tools/lint_allow.txt`).

#[path = "../tools/lint.rs"]
mod lint;

#[test]
fn repo_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let violations = lint::run(root);
    assert!(
        violations.is_empty(),
        "repo lint violations:\n  {}",
        violations.join("\n  ")
    );
}
