//! Tier-1 gate for the concurrency auditor: a thin shim over the
//! `patdnn-analyze` crate (`tools/analyze/`), which replaced the old
//! substring-based `tools/lint.rs`. Lock-order cycles, guards held
//! across blocking ops, warm-path discipline, `// SAFETY:` coverage,
//! and wire/catalog exhaustiveness must all be clean on every commit.

#[test]
fn repo_is_analysis_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let analysis = patdnn_analyze::run(root);
    if !analysis.findings.is_empty() {
        for finding in &analysis.findings {
            eprintln!("{finding}");
        }
        panic!(
            "patdnn-analyze: {} findings (run `cargo run -p patdnn-analyze` for the full report)",
            analysis.findings.len()
        );
    }
}
