//! Tier-1 gate for the plan-verifier mutation corpus.
//!
//! Runs the quick corpus (`patdnn_bench::corpus`): byte-flip,
//! truncation, and semantic-forgery mutants over real compiled
//! artifacts. Every mutant must be decode-rejected with a typed error,
//! verifier-rejected with a typed violation, or decode bit-identically
//! — with zero panics and zero mutants executed. The full-density sweep
//! runs in CI via `repro verify-corpus`.

#[test]
fn every_mutant_is_rejected_or_roundtrips_without_panics() {
    let report = patdnn_bench::corpus::run(true);
    assert_eq!(report.panics, 0, "corpus panicked:\n{report}");
    assert_eq!(report.executed, 0, "a mutant reached execution:\n{report}");
    assert!(report.is_ok(), "corpus failures:\n{report}");
    assert!(
        report.mutants > 500,
        "corpus unexpectedly small ({} mutants)",
        report.mutants
    );
    // Both rejection layers must actually fire: wire-format errors at
    // decode and typed violations from the verifier.
    assert!(
        report.decode_rejected > 0,
        "no decode rejections:\n{report}"
    );
    assert!(
        report.verify_rejected > 0,
        "no verifier rejections:\n{report}"
    );
}
