//! Property-based cross-executor equivalence: every executor in the
//! workspace computes the same convolution.
//!
//! Exercised over a deterministic sweep of seeds using the workspace's
//! own [`Rng`]; case parameters are derived from each seed, covering the
//! same ranges the original proptest strategies did.

use patdnn::compiler::csr::CsrLayer;
use patdnn::compiler::fkr::{filter_kernel_reorder, FilterOrder};
use patdnn::compiler::fkw::FkwLayer;
use patdnn::compiler::tune::space::TuningConfig;
use patdnn::core::pattern_set::PatternSet;
use patdnn::core::project::prune_layer;
use patdnn::runtime::dense::{Im2colConv, NaiveConv, TiledConv, WinogradConv};
use patdnn::runtime::executor::ConvExecutor;
use patdnn::runtime::parallel::{ParallelPattern, Schedule};
use patdnn::runtime::pattern_exec::{OptLevel, PatternConv};
use patdnn::runtime::sparse_csr::CsrConv;
use patdnn::tensor::rng::Rng;
use patdnn::tensor::{conv2d_ref, Conv2dGeometry, Tensor};

/// Dense executors agree with the reference for arbitrary geometry.
#[test]
fn dense_executors_agree() {
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from(seed);
        let (oc, ic) = (1 + rng.below(5), 1 + rng.below(5));
        let hw = 4 + rng.below(8);
        let stride = 1 + rng.below(2);
        let geo = Conv2dGeometry::new(oc, ic, 3, 3, hw, hw, stride, 1);
        let w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let b: Vec<f32> = (0..oc).map(|_| rng.uniform(-0.5, 0.5)).collect();
        let input = Tensor::randn(&[1, ic, hw, hw], &mut rng);
        let expect = conv2d_ref(&input, &w, Some(&b), &geo);
        let execs: Vec<Box<dyn ConvExecutor>> = vec![
            Box::new(NaiveConv::new(geo, w.clone(), Some(b.clone()))),
            Box::new(Im2colConv::new(geo, w.clone(), Some(b.clone()))),
            Box::new(WinogradConv::new(geo, w.clone(), Some(b.clone()))),
            Box::new(TiledConv::new(geo, w.clone(), Some(b.clone()))),
        ];
        for e in execs {
            let got = e.run(&input);
            assert!(
                expect.approx_eq(&got, 5e-3),
                "seed {seed}: {} diverged",
                e.name()
            );
        }
    }
}

/// Sparse executors (CSR + all pattern levels + parallel) agree with
/// the reference on pruned weights, for any pruning rate.
#[test]
fn sparse_executors_agree() {
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from(seed);
        let (oc, ic) = (2 + rng.below(6), 2 + rng.below(6));
        let hw = 4 + rng.below(6);
        let keep_frac = rng.uniform(0.2, 1.0);
        let geo = Conv2dGeometry::new(oc, ic, 3, 3, hw, hw, 1, 1);
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let alpha = (((oc * ic) as f32 * keep_frac) as usize).max(1);
        let lp = prune_layer("p", &mut w, &set, alpha);
        let input = Tensor::randn(&[1, ic, hw, hw], &mut rng);
        let expect = conv2d_ref(&input, &w, None, &geo);

        let csr = CsrConv::new(geo, CsrLayer::from_dense(&w), None);
        assert!(
            expect.approx_eq(&csr.run(&input), 1e-3),
            "seed {seed}: CSR diverged"
        );

        for order in [FilterOrder::identity(&lp), filter_kernel_reorder(&lp)] {
            let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
            assert_eq!(fkw.to_dense(), w.clone(), "seed {seed}");
            for level in OptLevel::all() {
                let exec =
                    PatternConv::new(geo, fkw.clone(), None, level, TuningConfig::tuned_default());
                assert!(
                    expect.approx_eq(&exec.run(&input), 1e-3),
                    "seed {seed}: {} diverged",
                    level.label()
                );
            }
            let par = ParallelPattern::new(
                PatternConv::new(
                    geo,
                    fkw,
                    None,
                    OptLevel::Full,
                    TuningConfig::tuned_default(),
                ),
                3,
                Schedule::Balanced,
            );
            assert!(
                expect.approx_eq(&par.run(&input), 1e-3),
                "seed {seed}: parallel diverged"
            );
        }
    }
}

/// FKR + FKW never lose weights: the multiset of non-zero values is
/// preserved exactly.
#[test]
fn fkw_preserves_weight_multiset() {
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from(seed);
        let (oc, ic) = (2 + rng.below(6), 2 + rng.below(6));
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let set = PatternSet::standard(6);
        let lp = prune_layer("p", &mut w, &set, (oc * ic).div_ceil(2));
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        let mut original: Vec<u32> = w
            .data()
            .iter()
            .filter(|&&x| x != 0.0)
            .map(|x| x.to_bits())
            .collect();
        let mut stored: Vec<u32> = fkw
            .weights
            .iter()
            .filter(|&&x| x != 0.0)
            .map(|x| x.to_bits())
            .collect();
        original.sort_unstable();
        stored.sort_unstable();
        assert_eq!(original, stored, "seed {seed}");
    }
}
