//! Property-based cross-executor equivalence: every executor in the
//! workspace computes the same convolution.

use patdnn::compiler::csr::CsrLayer;
use patdnn::compiler::fkr::{filter_kernel_reorder, FilterOrder};
use patdnn::compiler::fkw::FkwLayer;
use patdnn::compiler::tune::space::TuningConfig;
use patdnn::core::pattern_set::PatternSet;
use patdnn::core::project::prune_layer;
use patdnn::runtime::dense::{Im2colConv, NaiveConv, TiledConv, WinogradConv};
use patdnn::runtime::executor::ConvExecutor;
use patdnn::runtime::parallel::{ParallelPattern, Schedule};
use patdnn::runtime::pattern_exec::{OptLevel, PatternConv};
use patdnn::runtime::sparse_csr::CsrConv;
use patdnn::tensor::rng::Rng;
use patdnn::tensor::{conv2d_ref, Conv2dGeometry, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense executors agree with the reference for arbitrary geometry.
    #[test]
    fn dense_executors_agree(
        oc in 1usize..6,
        ic in 1usize..6,
        hw in 4usize..12,
        stride in 1usize..3,
        seed in any::<u64>(),
    ) {
        let geo = Conv2dGeometry::new(oc, ic, 3, 3, hw, hw, stride, 1);
        let mut rng = Rng::seed_from(seed);
        let w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let b: Vec<f32> = (0..oc).map(|_| rng.uniform(-0.5, 0.5)).collect();
        let input = Tensor::randn(&[1, ic, hw, hw], &mut rng);
        let expect = conv2d_ref(&input, &w, Some(&b), &geo);
        let execs: Vec<Box<dyn ConvExecutor>> = vec![
            Box::new(NaiveConv::new(geo, w.clone(), Some(b.clone()))),
            Box::new(Im2colConv::new(geo, w.clone(), Some(b.clone()))),
            Box::new(WinogradConv::new(geo, w.clone(), Some(b.clone()))),
            Box::new(TiledConv::new(geo, w.clone(), Some(b.clone()))),
        ];
        for e in execs {
            let got = e.run(&input);
            prop_assert!(expect.approx_eq(&got, 5e-3), "{} diverged", e.name());
        }
    }

    /// Sparse executors (CSR + all pattern levels + parallel) agree with
    /// the reference on pruned weights, for any pruning rate.
    #[test]
    fn sparse_executors_agree(
        oc in 2usize..8,
        ic in 2usize..8,
        hw in 4usize..10,
        keep_frac in 0.2f32..1.0,
        seed in any::<u64>(),
    ) {
        let geo = Conv2dGeometry::new(oc, ic, 3, 3, hw, hw, 1, 1);
        let mut rng = Rng::seed_from(seed);
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let alpha = (((oc * ic) as f32 * keep_frac) as usize).max(1);
        let lp = prune_layer("p", &mut w, &set, alpha);
        let input = Tensor::randn(&[1, ic, hw, hw], &mut rng);
        let expect = conv2d_ref(&input, &w, None, &geo);

        let csr = CsrConv::new(geo, CsrLayer::from_dense(&w), None);
        prop_assert!(expect.approx_eq(&csr.run(&input), 1e-3), "CSR diverged");

        for order in [FilterOrder::identity(&lp), filter_kernel_reorder(&lp)] {
            let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
            prop_assert_eq!(fkw.to_dense(), w.clone());
            for level in OptLevel::all() {
                let exec = PatternConv::new(geo, fkw.clone(), None, level, TuningConfig::tuned_default());
                prop_assert!(
                    expect.approx_eq(&exec.run(&input), 1e-3),
                    "{} diverged", level.label()
                );
            }
            let par = ParallelPattern::new(
                PatternConv::new(geo, fkw, None, OptLevel::Full, TuningConfig::tuned_default()),
                3,
                Schedule::Balanced,
            );
            prop_assert!(expect.approx_eq(&par.run(&input), 1e-3), "parallel diverged");
        }
    }

    /// FKR + FKW never lose weights: the multiset of non-zero values is
    /// preserved exactly.
    #[test]
    fn fkw_preserves_weight_multiset(
        oc in 2usize..8,
        ic in 2usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::seed_from(seed);
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let set = PatternSet::standard(6);
        let lp = prune_layer("p", &mut w, &set, (oc * ic).div_ceil(2));
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        let mut original: Vec<u32> = w.data().iter().filter(|&&x| x != 0.0).map(|x| x.to_bits()).collect();
        let mut stored: Vec<u32> = fkw.weights.iter().filter(|&&x| x != 0.0).map(|x| x.to_bits()).collect();
        original.sort_unstable();
        stored.sort_unstable();
        prop_assert_eq!(original, stored);
    }
}
