//! DAG engine equivalence over randomized residual topologies.
//!
//! The chain-model analogue lives in `executor_equivalence.rs`; this
//! sweep covers the serving pipeline's DAG path end to end: for each
//! seed, build a random residual network (block count, widths, strides,
//! identity vs projection shortcuts, and trailing head all derived from
//! the seed), pattern-prune it, compile it through the graph passes and
//! liveness slot assignment, and assert the compiled engine matches the
//! `nn` forward pass within 1e-4 — batched and batch-1 — both directly
//! and after an artifact codec round trip.

use patdnn::core::prune::pattern_project_network;
use patdnn::nn::activation::Relu;
use patdnn::nn::batchnorm::BatchNorm2d;
use patdnn::nn::conv::Conv2d;
use patdnn::nn::layer::{Layer, Mode};
use patdnn::nn::linear::{Flatten, Linear};
use patdnn::nn::network::{Residual, Sequential};
use patdnn::nn::pool::GlobalAvgPool;
use patdnn::serve::compile::compile_network;
use patdnn::serve::engine::{Engine, EngineOptions};
use patdnn::serve::ModelArtifact;
use patdnn::tensor::rng::Rng;
use patdnn::tensor::Tensor;

/// Builds a random residual network on 3×16×16 inputs: a stem, 1–3
/// residual blocks (each with a seed-derived width, stride, and
/// shortcut kind), then GAP → flatten → FC.
fn random_residual_net(rng: &mut Rng) -> Sequential {
    let mut net = Sequential::new("rand_res");
    let mut channels = 4 + rng.below(5); // 4..=8
    net.push(Conv2d::new("stem", channels, 3, 3, 1, 1, rng));
    net.push(BatchNorm2d::new("stem_bn", channels));
    net.push(Relu::new("stem_relu"));

    let blocks = 1 + rng.below(3); // 1..=3
    let mut hw = 16usize;
    for b in 0..blocks {
        let name = format!("block{b}");
        // Stride-2 blocks halve resolution and must project; stride-1
        // blocks flip a coin between identity and projection.
        let stride = if hw >= 8 && rng.chance(0.4) { 2 } else { 1 };
        let out_c = if rng.chance(0.5) {
            channels
        } else {
            channels + 2 + rng.below(4)
        };
        let needs_projection = stride != 1 || out_c != channels;

        let mut main = Sequential::new("main");
        main.push(Conv2d::new(
            &format!("{name}_conv1"),
            out_c,
            channels,
            3,
            stride,
            1,
            rng,
        ));
        main.push(BatchNorm2d::new(&format!("{name}_bn1"), out_c));
        main.push(Relu::new(&format!("{name}_relu1")));
        main.push(Conv2d::new(
            &format!("{name}_conv2"),
            out_c,
            out_c,
            3,
            1,
            1,
            rng,
        ));
        main.push(BatchNorm2d::new(&format!("{name}_bn2"), out_c));

        if needs_projection || rng.chance(0.3) {
            // Projection shortcut: 1×1 conv (+BN), the connectivity-pruned
            // skip-path case.
            let mut short = Sequential::new("short");
            short.push(Conv2d::new(
                &format!("{name}_proj"),
                out_c,
                channels,
                1,
                stride,
                0,
                rng,
            ));
            short.push(BatchNorm2d::new(&format!("{name}_proj_bn"), out_c));
            net.push(Residual::projected(&name, main, short));
        } else {
            net.push(Residual::identity(&name, main));
        }
        net.push(Relu::new(&format!("{name}_out_relu")));
        channels = out_c;
        hw /= stride;
    }

    net.push(GlobalAvgPool::new("gap"));
    net.push(Flatten::new("flatten"));
    net.push(Linear::new("fc", 5, channels, rng));
    net
}

#[test]
fn random_residual_topologies_compile_and_match_nn_forward() {
    for seed in 0..12u64 {
        let mut rng = Rng::seed_from(1000 + seed);
        let mut net = random_residual_net(&mut rng);
        // Seed-derived pruning pressure (connectivity rate 2x..4x).
        let rate = rng.uniform(2.0, 4.0);
        pattern_project_network(&mut net, 8, rate);

        let artifact = compile_network("rand", &net, [3, 16, 16])
            .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}"));
        assert!(
            artifact.steps.iter().any(|s| s.op.kind() == "add"),
            "seed {seed}: residual plan must contain a join"
        );
        // The artifact survives its own codec.
        let decoded = ModelArtifact::decode(&artifact.encode())
            .unwrap_or_else(|e| panic!("seed {seed}: decode failed: {e}"));
        assert_eq!(artifact, decoded, "seed {seed}: codec round trip");

        let engine = Engine::new(decoded, EngineOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: engine build failed: {e}"));
        for batch in [1usize, 2 + rng.below(3)] {
            let x = Tensor::randn(&[batch, 3, 16, 16], &mut rng);
            let want = net.forward(&x, Mode::Eval);
            let got = engine
                .infer(&x)
                .unwrap_or_else(|e| panic!("seed {seed}: infer failed: {e}"));
            assert_eq!(got.shape(), want.shape(), "seed {seed}");
            assert!(
                want.approx_eq(&got, 1e-4),
                "seed {seed} batch {batch}: engine diverges from nn forward by {:?}",
                want.max_abs_diff(&got)
            );
        }
    }
}

/// The threaded engine agrees with the serial one on DAG plans.
#[test]
fn random_residual_topologies_match_across_thread_counts() {
    for seed in 0..6u64 {
        let mut rng = Rng::seed_from(2000 + seed);
        let mut net = random_residual_net(&mut rng);
        pattern_project_network(&mut net, 8, 3.0);
        let artifact = compile_network("rand", &net, [3, 16, 16])
            .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}"));
        let serial = Engine::new(artifact.clone(), EngineOptions::default()).expect("serial");
        let par = Engine::new(artifact, EngineOptions { threads: Some(3) }).expect("parallel");
        let x = Tensor::randn(&[2, 3, 16, 16], &mut rng);
        let a = serial.infer(&x).expect("serial infer");
        let b = par.infer(&x).expect("parallel infer");
        assert!(
            a.approx_eq(&b, 1e-5),
            "seed {seed}: threaded engine diverges"
        );
    }
}
