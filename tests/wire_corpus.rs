//! Tier-1 gate for the wire-protocol mutation corpus.
//!
//! Runs the quick corpus (`patdnn_bench::wire_corpus`): byte-flip and
//! truncation mutants over every frame the network protocol defines,
//! plus hand-crafted streams aimed at the allocation guards. Every
//! mutant must be refused with a typed `WireError` or decode into a
//! frame that re-encodes bit-identically — with zero panics and
//! nothing ever dispatched to a server. The full-density sweep runs in
//! CI via `repro wire-corpus`.

#[test]
fn every_wire_mutant_is_rejected_or_roundtrips_without_panics() {
    let report = patdnn_bench::wire_corpus::run(true);
    assert_eq!(report.panics, 0, "wire corpus panicked:\n{report}");
    assert_eq!(report.executed, 0, "a mutant was dispatched:\n{report}");
    assert!(report.is_ok(), "wire corpus failures:\n{report}");
    assert!(
        report.mutants > 500,
        "wire corpus unexpectedly small ({} mutants)",
        report.mutants
    );
    assert!(report.decode_rejected > 0, "no typed rejections:\n{report}");
    assert!(
        report.benign > 0,
        "no benign bit-identical mutants:\n{report}"
    );
    // The frame-cap and tensor-size guards must have fired.
    assert!(
        report.per_class.contains_key("wire:oversize"),
        "no oversize rejection:\n{report}"
    );
}
