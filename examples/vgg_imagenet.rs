//! VGG-16 at ImageNet geometry: dense frameworks vs PatDNN, per layer.
//!
//! Walks the nine unique CONV layers of VGG-16 (Table 6), measures every
//! framework executor plus the simulated mobile GPU, and prints the
//! Figure-12-style summary for one model. Uses quarter-scale spatial
//! sizes by default so it finishes in about a minute; pass `--full` for
//! the exact 224-input shapes.
//!
//! Run with: `cargo run --release --example vgg_imagenet [-- --full]`

use patdnn::nn::models::vgg_unique_layers;
use patdnn::runtime::gpu::{simulate_pattern_conv, GpuModel};
use patdnn::runtime::pattern_exec::OptLevel;
use patdnn::tensor::Conv2dGeometry;
use patdnn_bench::workloads::{Framework, PrunedLayer};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = |hw: usize| if full { hw } else { (hw / 4).max(7) };
    let threads = 8;
    let gpu = GpuModel::adreno_640();

    println!(
        "VGG-16 unique CONV layers (8 patterns + 3.6x connectivity), {} spatial scale",
        if full { "full" } else { "1/4" }
    );
    println!(
        "{:<4} {:>16} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "L", "shape", "TFLite", "TVM", "MNN", "PatDNN", "GPU(sim)"
    );

    let mut totals = [0.0f64; 4];
    let mut gpu_total = 0.0f64;
    for (i, (name, spec, mult)) in vgg_unique_layers().into_iter().enumerate() {
        let hw = scale(spec.in_h);
        let geo = Conv2dGeometry::new(spec.out_c, spec.in_c, 3, 3, hw, hw, 1, 1);
        let layer = PrunedLayer::from_geometry(&name, geo, 8, 3.6, 90 + i as u64);
        let mut times = Vec::new();
        for fw in Framework::figure12() {
            times.push(layer.measure_cpu(fw, threads, 2, 17));
        }
        let exec = layer.pattern_exec(OptLevel::Full);
        let sim = simulate_pattern_conv(&gpu, &exec, &layer.input(18));
        for (t, total) in times.iter().zip(&mut totals) {
            *total += t * mult as f64;
        }
        gpu_total += sim.millis * mult as f64;
        println!(
            "{:<4} {:>16} {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.2}ms",
            name,
            spec.filter_shape(),
            times[0] * 1e3,
            times[1] * 1e3,
            times[2] * 1e3,
            times[3] * 1e3,
            sim.millis
        );
    }
    println!(
        "\nconv-stack totals (x multiplicity): TFLite {:.0}ms, TVM {:.0}ms, MNN {:.0}ms, PatDNN {:.0}ms, GPU(sim) {:.1}ms",
        totals[0] * 1e3,
        totals[1] * 1e3,
        totals[2] * 1e3,
        totals[3] * 1e3,
        gpu_total
    );
    println!(
        "PatDNN speedup: {:.1}x over TFLite-like, {:.1}x over TVM-like, {:.1}x over MNN-like",
        totals[0] / totals[3],
        totals[1] / totals[3],
        totals[2] / totals[3]
    );
}
