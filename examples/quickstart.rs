//! Quickstart: the full PatDNN pipeline on one layer in under a minute.
//!
//! Builds a pruned conv layer, compiles it (FKR + FKW + LR + codegen),
//! executes it at every optimization level, and verifies the outputs
//! against the dense reference.
//!
//! Run with: `cargo run --release --example quickstart`

use patdnn::compiler::codegen::{emit_conv_kernel, CodegenLevel};
use patdnn::compiler::fkr::filter_kernel_reorder;
use patdnn::compiler::fkw::FkwLayer;
use patdnn::compiler::lr::{Device, LayerLr};
use patdnn::compiler::tune::space::TuningConfig;
use patdnn::core::pattern_set::PatternSet;
use patdnn::core::project::{alpha_for_rate, prune_layer};
use patdnn::runtime::executor::{measure, ConvExecutor};
use patdnn::runtime::pattern_exec::{OptLevel, PatternConv};
use patdnn::tensor::rng::Rng;
use patdnn::tensor::{conv2d_ref, Conv2dGeometry, Tensor};

fn main() {
    let mut rng = Rng::seed_from(7);

    // 1. A VGG-style layer: 64 filters over 64 channels, 3x3, 56x56 input.
    let geo = Conv2dGeometry::new(64, 64, 3, 3, 56, 56, 1, 1);
    let dense = Tensor::randn_std(&[64, 64, 3, 3], 0.06, &mut rng);
    println!("layer: {} ({} dense MACs)", geo.weight_shape(), geo.macs());

    // 2. Pattern-based pruning: 8-pattern set harvested from the weights,
    //    3.6x connectivity pruning.
    let set = PatternSet::harvest(&[&dense], 8);
    let mut weights = dense.clone();
    let alpha = alpha_for_rate(64 * 64, 3.6);
    let lp = prune_layer("conv_op1", &mut weights, &set, alpha);
    println!(
        "pruned: {} of {} kernels kept, {} non-zero weights ({:.1}x compression)",
        lp.kept_kernels(),
        64 * 64,
        weights.count_nonzero(),
        weights.len() as f64 / weights.count_nonzero() as f64,
    );

    // 3. Compile: filter-kernel reorder + FKW storage + LR.
    let order = filter_kernel_reorder(&lp);
    let fkw = FkwLayer::from_pruned(&weights, &lp, &set, &order);
    let lr = LayerLr::for_fkw(
        "conv_op1",
        Device::Cpu,
        &fkw,
        TuningConfig::tuned_default(),
        1,
        1,
    );
    println!("\nlayerwise representation:\n{lr}\n");
    println!(
        "FKW storage: {} weight bytes + {} index bytes (CSR would need {})",
        fkw.weight_bytes(),
        fkw.extra_bytes(),
        patdnn::compiler::csr::CsrLayer::from_dense(&weights).extra_bytes(),
    );

    // 4. Generated kernel sketch at the full optimization level.
    let code = emit_conv_kernel(
        "conv_op1",
        &fkw,
        &TuningConfig::tuned_default(),
        CodegenLevel::Full,
    );
    println!("\ngenerated kernel (first lines):");
    for line in code.lines().take(6) {
        println!("  {line}");
    }

    // 5. Execute at every optimization level and verify.
    let input = Tensor::randn(&[1, 64, 56, 56], &mut rng);
    let reference = conv2d_ref(&input, &weights, None, &geo);
    println!("\nexecution (mean of 3 runs):");
    for level in OptLevel::all() {
        let exec = PatternConv::new(geo, fkw.clone(), None, level, TuningConfig::tuned_default());
        let out = exec.run(&input);
        assert!(
            reference.approx_eq(&out, 1e-3),
            "{} output mismatch",
            level.label()
        );
        let m = measure(&exec, &input, 3);
        println!(
            "  {:<18} {:>8.2} ms   ({:.2} dense-equivalent GFLOPS)",
            level.label(),
            m.seconds * 1e3,
            m.dense_gflops
        );
    }
    println!("\nall levels verified against the dense reference ✓");
}
