//! End-to-end ADMM pattern + connectivity pruning on a trainable network.
//!
//! Trains a scaled-down VGG on synthetic CIFAR-shaped data, prunes it
//! with the extended ADMM framework (8 patterns + 3.6x connectivity),
//! and reports accuracy before/after plus the achieved compression —
//! the workflow behind Tables 3 and 4.
//!
//! Run with: `cargo run --release --example train_prune_admm`

use patdnn::core::admm::{AdmmConfig, AdmmPruner};
use patdnn::core::sparsity::{conv_sparsity, total_compression};
use patdnn::nn::data::Dataset;
use patdnn::nn::models::vgg_small;
use patdnn::nn::optim::Adam;
use patdnn::nn::train::{evaluate, train, TrainConfig};
use patdnn::tensor::rng::Rng;

fn main() {
    let mut rng = Rng::seed_from(2024);

    // Synthetic 10-class dataset with CIFAR-10 geometry (see DESIGN.md §2).
    let data = Dataset::cifar_like(24, 0.6, &mut rng);
    let (train_ds, test_ds) = data.split(0.8);
    println!(
        "dataset: {} train / {} test images of 3x32x32",
        train_ds.len(),
        test_ds.len()
    );

    // Pre-train the dense model.
    let mut net = vgg_small(10, &mut rng);
    let mut opt = Adam::new(2e-3);
    let cfg = TrainConfig {
        epochs: 8,
        batch_size: 16,
        verbose: true,
    };
    train(&mut net, &train_ds, &mut opt, &cfg, &mut rng);
    let dense_acc = evaluate(&mut net, &test_ds);
    println!(
        "\ndense model: top-1 {:.1}%, top-5 {:.1}%",
        dense_acc.top1 * 100.0,
        dense_acc.top5 * 100.0
    );

    // Extended-ADMM pattern + connectivity pruning.
    let pruner = AdmmPruner::new(AdmmConfig {
        pattern_count: 8,
        connectivity_rate: 3.6,
        iterations: 3,
        epochs_per_iteration: 1,
        retrain_epochs: 4,
        ..AdmmConfig::default()
    });
    let (pruned, report) = pruner.prune(&mut net, &train_ds, &mut rng);
    println!("\nADMM iterations: losses {:?}", report.iteration_losses);
    println!("primal residuals: {:?}", report.primal_residuals);

    let sparse_acc = evaluate(&mut net, &test_ds);
    let stats = conv_sparsity(&mut net);
    println!("\nper-layer sparsity:");
    for s in &stats {
        println!(
            "  {:<12} {:>6}/{:<6} weights, {:>4}/{:<4} kernels ({:.1}x)",
            s.name,
            s.nonzero_weights,
            s.total_weights,
            s.nonzero_kernels,
            s.total_kernels,
            s.compression()
        );
    }
    println!(
        "\npruned model: top-1 {:.1}%, top-5 {:.1}% — CONV compression {:.1}x (record says {:.1}x)",
        sparse_acc.top1 * 100.0,
        sparse_acc.top5 * 100.0,
        total_compression(&stats),
        pruned.conv_compression(),
    );
    println!(
        "accuracy change: {:+.1} points top-1",
        (sparse_acc.top1 - dense_acc.top1) * 100.0
    );
}
