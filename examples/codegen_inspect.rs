//! Inspect the compiler stage: LR, FKW arrays, generated kernels, and the
//! auto-tuner on one layer.
//!
//! Run with: `cargo run --release --example codegen_inspect`

use patdnn::compiler::codegen::{emit_conv_kernel, CodegenLevel};
use patdnn::compiler::fkr::filter_kernel_reorder;
use patdnn::compiler::fkw::FkwLayer;
use patdnn::compiler::lr::{Device, LayerLr};
use patdnn::compiler::tune::ga::GaConfig;
use patdnn::compiler::tune::space::{ConfigSpace, TuningConfig};
use patdnn::compiler::tune::tuner::AutoTuner;
use patdnn::core::pattern_set::PatternSet;
use patdnn::core::project::{alpha_for_rate, prune_layer};
use patdnn::runtime::executor::measure;
use patdnn::runtime::pattern_exec::{OptLevel, PatternConv};
use patdnn::tensor::rng::Rng;
use patdnn::tensor::{Conv2dGeometry, Tensor};

fn main() {
    let mut rng = Rng::seed_from(99);
    let geo = Conv2dGeometry::new(16, 16, 3, 3, 28, 28, 1, 1);
    let dense = Tensor::randn_std(&[16, 16, 3, 3], 0.08, &mut rng);
    let set = PatternSet::harvest(&[&dense], 4);

    println!("pattern set (Figure 3 style):");
    for (id, p) in set.iter() {
        println!("pattern {id}:");
        for line in p.to_string().lines() {
            println!("  {line}");
        }
    }

    let mut weights = dense.clone();
    let lp = prune_layer("conv_op1", &mut weights, &set, alpha_for_rate(256, 3.6));
    let order = filter_kernel_reorder(&lp);
    let fkw = FkwLayer::from_pruned(&weights, &lp, &set, &order);

    println!("\nFKW arrays (Figure 10):");
    println!("  offsets: {:?}", &fkw.offsets[..8.min(fkw.offsets.len())]);
    println!("  reorder: {:?}", &fkw.reorder[..8.min(fkw.reorder.len())]);
    println!("  index:   {:?}", &fkw.index[..12.min(fkw.index.len())]);
    println!("  stride:  {:?}", &fkw.stride[..10.min(fkw.stride.len())]);
    println!(
        "  weights: {} values, {} per kernel",
        fkw.weights.len(),
        fkw.entries_per_kernel
    );

    let lr = LayerLr::for_fkw(
        "conv_op1",
        Device::Cpu,
        &fkw,
        TuningConfig::tuned_default(),
        1,
        1,
    );
    println!("\nLR (Figure 8):\n{lr}");

    for level in [
        CodegenLevel::NoOpt,
        CodegenLevel::Reorder,
        CodegenLevel::Full,
    ] {
        println!("\n=== generated kernel: {} ===", level.label());
        println!(
            "{}",
            emit_conv_kernel("conv_op1", &fkw, &TuningConfig::tuned_default(), level)
        );
    }

    // Auto-tune against real measurements (§5.5).
    println!(
        "=== auto-tuning (GA explorer over {} configs) ===",
        ConfigSpace::standard().len()
    );
    let input = Tensor::randn(&[1, 16, 28, 28], &mut rng);
    let mut tuner = AutoTuner::with_config(
        ConfigSpace::standard(),
        GaConfig {
            population: 12,
            generations: 5,
            ..GaConfig::default()
        },
    );
    let fkw_for_tuning = fkw.clone();
    let result = tuner.tune(
        |cfg| {
            let exec = PatternConv::new(geo, fkw_for_tuning.clone(), None, OptLevel::Full, *cfg);
            measure(&exec, &input, 2).seconds
        },
        &mut rng,
    );
    println!(
        "best config after {} measurements: {:?} ({:.3} ms)",
        result.measurements,
        result.best,
        result.best_cost * 1e3
    );
    let mut est = tuner.train_estimator(40, &mut rng);
    let (predicted, cost) = tuner.predict_best(&mut est);
    println!(
        "MLP estimator predicts best = {:?} (predicted {:.3} ms)",
        predicted,
        cost * 1e3
    );
}
