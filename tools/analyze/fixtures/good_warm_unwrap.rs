//! Known-good twin of `bad_warm_unwrap.rs`: the miss is propagated as
//! `None` instead of panicking.

pub fn admit(queue: &[u64], id: u64) -> Option<u64> {
    let slot = queue.iter().position(|&q| q == id)?;
    Some(queue[slot])
}
