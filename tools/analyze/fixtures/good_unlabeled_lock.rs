//! Known-good twin of `bad_unlabeled_lock.rs`: the lock declares its
//! class.

use std::sync::Mutex;

pub struct Counters {
    // lock: fixture-counters
    totals: Mutex<Vec<u64>>,
}
