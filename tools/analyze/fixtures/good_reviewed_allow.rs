//! Known-good twin of `bad_stale_allow.rs`: the allow suppresses a real
//! guard-across-write finding, so it is consumed and not stale.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

pub struct Conn {
    // lock: fixture-writer
    writer: Mutex<TcpStream>,
}

impl Conn {
    pub fn send(&self, payload: &[u8]) -> std::io::Result<()> {
        let mut stream = self.writer.lock().expect("fixture writer");
        // lock-order: allow(single-writer socket; holding the lock across the write is the design)
        stream.write_all(payload)
    }
}
