//! Known-bad: AB/BA acquisition order across two functions — the
//! lock-order graph has the cycle `fixture-a -> fixture-b -> fixture-a`.
//! Expected finding: LOCK-ORDER.

use std::sync::Mutex;

pub struct Shared {
    // lock: fixture-a
    a: Mutex<u32>,
    // lock: fixture-b
    b: Mutex<u32>,
}

impl Shared {
    pub fn forward(&self) -> u32 {
        let a = self.a.lock().unwrap();
        let b = self.b.lock().unwrap();
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = self.b.lock().unwrap();
        let a = self.a.lock().unwrap();
        *a - *b
    }
}
