//! Known-bad: a `Mutex` field without a `// lock: <label>` class
//! annotation. Expected finding: LOCK-LABEL.

use std::sync::Mutex;

pub struct Counters {
    totals: Mutex<Vec<u64>>,
}
