//! Known-good twin of `bad_guard_across_write.rs`: the sequence lock is
//! scoped to the frame assembly and released before the socket write,
//! and the pool pop happens in its own statement so the connect runs
//! unlocked.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

pub struct Conn {
    // lock: fixture-seq
    seq: Mutex<u64>,
}

fn encode(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = seq.to_le_bytes().to_vec();
    out.extend_from_slice(payload);
    out
}

impl Conn {
    pub fn send(&self, stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
        let frame = {
            let mut seq = self.seq.lock().expect("fixture seq");
            *seq += 1;
            encode(*seq, payload)
        };
        stream.write_all(&frame)
    }
}

pub struct Pool {
    // lock: fixture-pool
    pool: Mutex<Vec<TcpStream>>,
}

impl Pool {
    pub fn checkout(&self, addr: &str) -> std::io::Result<TcpStream> {
        let pooled = self.pool.lock().expect("fixture pool").pop();
        match pooled {
            Some(conn) => Ok(conn),
            None => TcpStream::connect(addr),
        }
    }
}
