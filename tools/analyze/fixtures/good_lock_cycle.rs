//! Known-good twin of `bad_lock_cycle.rs`: both paths acquire
//! `fixture-a` before `fixture-b`, so the order graph is acyclic.

use std::sync::Mutex;

pub struct Shared {
    // lock: fixture-a
    a: Mutex<u32>,
    // lock: fixture-b
    b: Mutex<u32>,
}

impl Shared {
    pub fn forward(&self) -> u32 {
        let a = self.a.lock().unwrap();
        let b = self.b.lock().unwrap();
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let a = self.a.lock().unwrap();
        let b = self.b.lock().unwrap();
        *a - *b
    }
}
