//! Known-bad: mutex guards held across socket IO, in both shapes the
//! serving stack has grown: a let-bound guard live across
//! `TcpStream::write_all`, and a match-scrutinee guard temporary that
//! keeps the pool locked across `TcpStream::connect` (the temporary
//! lives for the whole match under Rust 2021 rules).
//! Expected findings: LOCK-BLOCKING x2.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

pub struct Conn {
    // lock: fixture-writer
    writer: Mutex<TcpStream>,
}

impl Conn {
    pub fn send(&self, payload: &[u8]) -> std::io::Result<()> {
        let mut stream = self.writer.lock().expect("fixture writer");
        stream.write_all(payload)
    }
}

pub struct Pool {
    // lock: fixture-pool
    pool: Mutex<Vec<TcpStream>>,
}

impl Pool {
    pub fn checkout(&self, addr: &str) -> std::io::Result<TcpStream> {
        match self.pool.lock().expect("fixture pool").pop() {
            Some(conn) => Ok(conn),
            None => TcpStream::connect(addr),
        }
    }
}
