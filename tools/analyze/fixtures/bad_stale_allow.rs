//! Known-bad: a reviewed allow annotation that no longer suppresses
//! anything (left behind by a refactor). Expected finding: ALLOW-STALE.

pub fn noop(x: u64) -> u64 {
    // lock-order: allow(left over from a refactor)
    x + 1
}
