//! Known-bad: `.unwrap()` on a warm serving path (analyzed with the
//! warm-path rules enabled). Expected finding: WARM-UNWRAP.

pub fn admit(queue: &[u64], id: u64) -> u64 {
    let slot = queue.iter().position(|&q| q == id).unwrap();
    queue[slot]
}
