//! `patdnn-analyze`: zero-dependency static analysis for the PatDNN
//! serving stack (see DESIGN.md §15).
//!
//! Four passes over `crates/serve/src` and `crates/runtime/src`:
//!
//! 1. **Lock-order graph** — every `Mutex`/`RwLock` declaration carries a
//!    `// lock: <label>` class annotation; nested acquisitions form
//!    edges; cycles (including re-entrant self-edges) are potential
//!    deadlocks.
//! 2. **Lock-held-across-blocking-op** — socket IO, sleeps, joins,
//!    channel receives, and condvar waits under a live guard, with a
//!    reviewed `// lock-order: allow(<reason>)` escape hatch whose
//!    staleness is re-verified.
//! 3. **Warm-path discipline** — scope-aware `unwrap`/`expect`/panic
//!    and under-guard allocation bans on the hot serving files.
//! 4. **Exhaustiveness cross-checks** — wire tags vs encode/decode/
//!    mutation corpus, and `Violation` variants vs the DESIGN.md §13
//!    catalog.
//!
//! `unsafe` blocks anywhere in the repo must carry `// SAFETY:`
//! justifications (carried over from the retired `tools/lint.rs`).

pub mod exhaustive;
pub mod lexer;
pub mod locks;
pub mod model;
pub mod safety;

use std::fmt;
use std::path::{Path, PathBuf};

/// Invariant labels carried by findings, mirroring the PR-8 `Violation`
/// taxonomy: stable names the fixtures and CI reports key on.
pub mod labels {
    /// Unlabeled, conflicting, or unresolvable lock declaration/use.
    pub const LOCK_LABEL: &str = "LOCK-LABEL";
    /// Cycle in the lock-order graph (potential deadlock).
    pub const LOCK_ORDER: &str = "LOCK-ORDER";
    /// Guard held across a blocking operation.
    pub const LOCK_BLOCKING: &str = "LOCK-BLOCKING";
    /// An `allow(...)` annotation that no longer suppresses anything.
    pub const ALLOW_STALE: &str = "ALLOW-STALE";
    /// `// lock:`/`allow(...)` comment that does not parse.
    pub const ANNOTATION_SYNTAX: &str = "ANNOTATION-SYNTAX";
    /// `.unwrap()` in a warm serving path.
    pub const WARM_UNWRAP: &str = "WARM-UNWRAP";
    /// Non-lock `.expect()` in a warm serving path.
    pub const WARM_EXPECT: &str = "WARM-EXPECT";
    /// Panicking macro in a warm serving path.
    pub const WARM_PANIC: &str = "WARM-PANIC";
    /// Allocation while holding a lock in a warm serving path.
    pub const WARM_ALLOC: &str = "WARM-ALLOC";
    /// `unsafe` block without a `// SAFETY:` justification.
    pub const UNSAFE_JUSTIFY: &str = "UNSAFE-JUSTIFY";
    /// Wire frame tag missing encode/decode/corpus coverage.
    pub const WIRE_EXHAUSTIVE: &str = "WIRE-EXHAUSTIVE";
    /// `Violation` variant missing from the DESIGN.md §13 catalog.
    pub const CATALOG_EXHAUSTIVE: &str = "CATALOG-EXHAUSTIVE";
}

/// One analysis finding: file:line plus an invariant label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub label: &'static str,
    pub message: String,
}

impl Finding {
    pub fn new(file: &str, line: u32, label: &'static str, message: String) -> Self {
        Finding {
            file: file.to_owned(),
            line,
            label,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.label, self.message
        )
    }
}

/// Warm serving paths: per-request hot code where panics and avoidable
/// allocations under locks violate the latency discipline.
pub const WARM_PATHS: &[&str] = &[
    "crates/serve/src/engine.rs",
    "crates/serve/src/batching.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/request.rs",
];

/// Directories whose `.rs` files feed the lock/warm passes.
const LOCK_SCAN_DIRS: &[&str] = &["crates/serve/src", "crates/runtime/src"];

/// Directories walked for the `unsafe`/SAFETY pass (entire repo source).
const SAFETY_SCAN_DIRS: &[&str] = &["crates", "src", "tests", "tools", "benches"];

/// Known-bad analyzer fixtures live here; never scan them as repo code.
const FIXTURE_DIR: &str = "tools/analyze/fixtures";

/// Full analysis over the repository rooted at `root`. Returns all
/// findings plus the lock registry (for `--registry` reporting).
pub fn run(root: &Path) -> locks::Analysis {
    let mut files = Vec::new();
    for dir in LOCK_SCAN_DIRS {
        for path in rust_files(&root.join(dir)) {
            let rel = rel_path(root, &path);
            let src = std::fs::read_to_string(&path).unwrap_or_default();
            files.push(locks::FileInput {
                warm: WARM_PATHS.contains(&rel.as_str()),
                path: rel,
                lexed: lexer::lex(&src),
            });
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    let mut analysis = locks::analyze(&files);

    for dir in SAFETY_SCAN_DIRS {
        for path in rust_files(&root.join(dir)) {
            let rel = rel_path(root, &path);
            if rel.starts_with(FIXTURE_DIR) {
                continue;
            }
            let src = std::fs::read_to_string(&path).unwrap_or_default();
            safety::check(&rel, &src, &mut analysis.findings);
        }
    }

    exhaustive::check(root, &mut analysis.findings);
    analysis
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    analysis
}

/// Analyze a single in-memory source file (fixture/unit-test entry
/// point): lock registry, guard regions, and — when `warm` — the
/// warm-path discipline rules.
pub fn analyze_snippet(name: &str, src: &str, warm: bool) -> Vec<Finding> {
    let files = vec![locks::FileInput {
        path: name.to_owned(),
        lexed: lexer::lex(src),
        warm,
    }];
    let mut analysis = locks::analyze(&files);
    safety::check(name, src, &mut analysis.findings);
    analysis
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    analysis.findings
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// All `.rs` files under `dir`, recursively, sorted for determinism.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}
