//! Lock-order and blocking-call analysis.
//!
//! Three cooperating pieces:
//!
//! 1. A **lock registry** built from declaration sites: every
//!    `Mutex<T>`/`RwLock<T>` field or `Mutex::new` let-binding must carry
//!    a `// lock: <label>` annotation naming its lock *class*
//!    (lockdep-style: same label = same class, so the three `scratch`
//!    pools in `engine.rs` share one class). Unlabeled locks are
//!    findings.
//! 2. A **guard-region walk** over each function body that tracks which
//!    guards are live. Let-bound guards live to the end of their block
//!    (or an explicit `drop(g)`); guard temporaries live to the end of
//!    the enclosing statement — which models the Rust 2021
//!    match-scrutinee/if-let temporary extension that makes
//!    `match pool.lock().pop() { ... }` hold the lock across the whole
//!    match. Nested acquisitions emit lock-order edges; blocking
//!    operations under a live guard are findings.
//! 3. A **call-graph fixpoint** that propagates "acquires class C" and
//!    "may block" through direct calls, so a guard held across a call to
//!    a function that blocks (or locks) transitively is still caught.
//!    Ubiquitous method names (`push`, `get`, ...) are excluded from
//!    propagation to avoid false edges; the blocking primitives
//!    themselves are matched directly instead.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::lexer::{AnnKind, Lexed, Tok, Token};
use crate::model::{self, FileModel};
use crate::{labels, Finding};

/// How many lines above a site an annotation may sit.
const ANN_WINDOW: u32 = 2;

/// Methods that acquire a guard when called with zero arguments on a
/// registered lock (`.read()`/`.write()` with arguments are io traits).
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Blocking calls regardless of arity (socket IO, sleeps, wire helpers).
const BLOCKING_ANY_ARITY: &[&str] = &[
    "write_all",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "flush",
    "connect",
    "connect_timeout",
    "accept",
    "recv_timeout",
    "sleep",
    "park",
    "write_frame",
    "read_frame",
    "write_handshake",
    "read_handshake_version",
];

/// Blocking only when called with zero arguments (`Path::join`,
/// `Vec::join` and channel-like `recv(x)` lookalikes take arguments).
const BLOCKING_ZERO_ARITY: &[&str] = &["join", "recv", "wait"];

/// Names excluded from call-graph propagation: they are ubiquitous
/// method names whose summaries would alias unrelated types. The
/// blocking primitives among them are still matched directly above.
const PROPAGATION_DENYLIST: &[&str] = &[
    "push",
    "pop",
    "len",
    "is_empty",
    "insert",
    "remove",
    "get",
    "get_mut",
    "clone",
    "drain",
    "iter",
    "iter_mut",
    "next",
    "collect",
    "close",
    "new",
    "default",
    "drop",
    "send",
    "try_send",
    "wait",
    "wait_timeout",
    "recv",
    "recv_timeout",
    "join",
    "lock",
    "read",
    "write",
    "spawn",
    "min",
    "max",
    "map",
    "filter",
    "expect",
    "unwrap",
    "contains",
    "contains_key",
    "entry",
    "extend",
    "clear",
    "take",
    "replace",
    "from",
    "to_owned",
    "to_vec",
    "to_string",
    "set",
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
];

/// Allocation constructors banned in guard-live warm-path regions.
const ALLOC_PATH_TYPES: &[&str] = &[
    "Vec", "VecDeque", "HashMap", "BTreeMap", "HashSet", "Box", "String",
];
const ALLOC_PATH_FNS: &[&str] = &["new", "with_capacity", "from"];
const ALLOC_METHODS: &[&str] = &["to_owned", "to_vec", "to_string"];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// One analyzed source file.
pub struct FileInput {
    /// Repo-relative path with `/` separators (used in findings).
    pub path: String,
    pub lexed: Lexed,
    pub warm: bool,
}

/// Annotation store with consumption tracking; unconsumed allows and
/// labels become stale-annotation findings.
pub struct AnnIndex {
    entries: Vec<(u32, AnnKind, bool)>,
}

impl AnnIndex {
    fn new(lexed: &Lexed) -> Self {
        AnnIndex {
            entries: lexed
                .annotations
                .iter()
                .map(|a| (a.line, a.kind.clone(), false))
                .collect(),
        }
    }

    /// Nearest entry of the matching kind on `line` or up to
    /// `ANN_WINDOW` lines above it; marks it consumed.
    fn take<F: Fn(&AnnKind) -> bool>(&mut self, line: u32, pred: F) -> Option<&AnnKind> {
        let mut best: Option<usize> = None;
        for (i, (l, kind, _)) in self.entries.iter().enumerate() {
            if *l <= line && line - *l <= ANN_WINDOW && pred(kind) {
                best = Some(match best {
                    Some(b) if self.entries[b].0 >= *l => b,
                    _ => i,
                });
            }
        }
        best.map(|i| {
            self.entries[i].2 = true;
            &self.entries[i].1
        })
    }

    fn take_lock_label(&mut self, line: u32) -> Option<String> {
        match self.take(line, |k| matches!(k, AnnKind::LockLabel(_))) {
            Some(AnnKind::LockLabel(l)) => Some(l.clone()),
            _ => None,
        }
    }

    fn take_lock_order_allow(&mut self, line: u32) -> bool {
        self.take(line, |k| matches!(k, AnnKind::LockOrderAllow(_)))
            .is_some()
    }

    fn take_warm_allow(&mut self, line: u32) -> bool {
        self.take(line, |k| matches!(k, AnnKind::WarmAllow(_)))
            .is_some()
    }

    fn stale(&self, path: &str, findings: &mut Vec<Finding>) {
        for (line, kind, consumed) in &self.entries {
            let what = match kind {
                AnnKind::LockOrderAllow(r) => format!("lock-order: allow({r})"),
                AnnKind::WarmAllow(r) => format!("warm-path: allow({r})"),
                AnnKind::LockLabel(l) => format!("lock: {l}"),
                AnnKind::Malformed(msg) => {
                    findings.push(Finding::new(
                        path,
                        *line,
                        labels::ANNOTATION_SYNTAX,
                        msg.clone(),
                    ));
                    continue;
                }
                AnnKind::Safety => continue,
            };
            if !consumed {
                findings.push(Finding::new(
                    path,
                    *line,
                    labels::ALLOW_STALE,
                    format!(
                        "stale annotation `// {what}` no longer matches any finding or declaration"
                    ),
                ));
            }
        }
    }
}

/// A labeled lock declaration (for `--registry` reporting).
#[derive(Debug, Clone)]
pub struct LockDecl {
    pub file: String,
    pub line: u32,
    pub ident: String,
    pub label: String,
}

#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    from_site: (String, u32),
    to_site: (String, u32),
    via: Option<String>,
}

#[derive(Debug, Clone)]
struct Region {
    class: String,
    binding: Option<String>,
    acq_line: u32,
    stmt_depth: u32,
    is_let: bool,
    spawn_key: Option<usize>,
}

#[derive(Debug, Default)]
struct Summary {
    acquires: BTreeSet<String>,
    blocking: bool,
    calls: BTreeSet<String>,
}

#[derive(Debug)]
struct CallSite {
    file: String,
    line: u32,
    callee: String,
    guards: Vec<(String, u32)>,
}

/// Outcome of the lock/warm analysis over a file set.
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub decls: Vec<LockDecl>,
    pub edge_count: usize,
}

pub fn analyze(files: &[FileInput]) -> Analysis {
    let mut findings = Vec::new();
    let mut anns: Vec<AnnIndex> = files.iter().map(|f| AnnIndex::new(&f.lexed)).collect();
    let models: Vec<FileModel> = files.iter().map(|f| model::build(&f.lexed)).collect();

    // Pass 1: lock registry from declaration sites.
    let mut decls: Vec<LockDecl> = Vec::new();
    let mut registries: Vec<HashMap<String, String>> = Vec::new();
    for ((file, ann), fm) in files.iter().zip(anns.iter_mut()).zip(models.iter()) {
        registries.push(build_registry(file, fm, ann, &mut decls, &mut findings));
    }

    // Pass 2: per-function guard-region walk.
    let mut edges: Vec<Edge> = Vec::new();
    let mut call_sites: Vec<CallSite> = Vec::new();
    let mut summaries: HashMap<String, Summary> = HashMap::new();
    for (i, file) in files.iter().enumerate() {
        let fm = &models[i];
        let spawn_ranges = spawn_ranges(&file.lexed.tokens);
        for (fi, f) in fm.functions.iter().enumerate() {
            let (Some(body_open), Some(body_close)) = (f.body_open, f.body_close) else {
                continue;
            };
            if fm.in_test_region(f.fn_idx) {
                continue;
            }
            // Skip nested fn items; they are walked as their own entry.
            let nested: Vec<(usize, usize)> = fm
                .functions
                .iter()
                .enumerate()
                .filter(|(gi, g)| *gi != fi && g.fn_idx > body_open && g.fn_idx < body_close)
                .filter_map(|(_, g)| g.body_close.map(|c| (g.fn_idx, c)))
                .collect();
            let mut walk = Walk {
                file,
                registry: &registries[i],
                ann: &mut anns[i],
                spawn_ranges: &spawn_ranges,
                nested: &nested,
                findings: &mut findings,
                edges: &mut edges,
                call_sites: &mut call_sites,
                summary: Summary::default(),
            };
            walk.run(body_open, body_close);
            let entry = summaries.entry(f.name.clone()).or_default();
            entry.acquires.extend(walk.summary.acquires);
            entry.blocking |= walk.summary.blocking;
            entry.calls.extend(walk.summary.calls);
        }
    }

    // Pass 3: call-graph fixpoint, then propagate to under-guard calls.
    let (acquires_star, blocks_star) = fixpoint(&summaries);
    let path_to_idx: HashMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.path.as_str(), i))
        .collect();
    for site in &call_sites {
        if PROPAGATION_DENYLIST.contains(&site.callee.as_str()) {
            continue;
        }
        let Some(acq) = acquires_star.get(site.callee.as_str()) else {
            continue;
        };
        let blocks = blocks_star.contains(site.callee.as_str());
        if acq.is_empty() && !blocks {
            continue;
        }
        let ann = &mut anns[path_to_idx[site.file.as_str()]];
        if ann.take_lock_order_allow(site.line) {
            continue;
        }
        for (class, acq_line) in &site.guards {
            for inner in acq {
                edges.push(Edge {
                    from: class.clone(),
                    to: inner.clone(),
                    from_site: (site.file.clone(), *acq_line),
                    to_site: (site.file.clone(), site.line),
                    via: Some(site.callee.clone()),
                });
            }
            if blocks {
                findings.push(Finding::new(
                    &site.file,
                    site.line,
                    labels::LOCK_BLOCKING,
                    format!(
                        "`{class}` lock (acquired at {}:{acq_line}) held across call to \
                         `{}` which may block",
                        site.file, site.callee
                    ),
                ));
            }
        }
    }

    // Pass 4: cycle detection over the lock-order graph.
    let edge_count = report_cycles(&edges, &mut findings);

    // Pass 5: stale / malformed annotations.
    for (file, ann) in files.iter().zip(anns.iter()) {
        ann.stale(&file.path, &mut findings);
    }

    Analysis {
        findings,
        decls,
        edge_count,
    }
}

/// Find every `Mutex`/`RwLock` declaration site and its required label.
fn build_registry(
    file: &FileInput,
    fm: &FileModel,
    ann: &mut AnnIndex,
    decls: &mut Vec<LockDecl>,
    findings: &mut Vec<Finding>,
) -> HashMap<String, String> {
    let tokens = &file.lexed.tokens;
    let mut registry: HashMap<String, String> = HashMap::new();
    let mut seen: HashSet<(String, u32)> = HashSet::new();
    for (i, tok) in tokens.iter().enumerate() {
        let Tok::Ident(name) = &tok.kind else {
            continue;
        };
        if name != "Mutex" && name != "RwLock" {
            continue;
        }
        let decl = if is_path_new(tokens, i) {
            // `Mutex::new(...)`: a declaration only when let-bound;
            // struct-literal initializers are covered by their field.
            let_binding_ident(tokens, i)
        } else if model::is_punct(tokens.get(i + 1), '<') {
            if fm.in_fn_signature(i) {
                None // parameters reference a lock declared elsewhere
            } else {
                field_ident_before_type(tokens, i)
            }
        } else {
            None
        };
        let Some((ident, line)) = decl else { continue };
        if fm.in_test_region(i) || !seen.insert((ident.clone(), line)) {
            continue;
        }
        match ann.take_lock_label(line) {
            Some(label) => {
                if let Some(prev) = registry.get(&ident) {
                    if prev != &label {
                        findings.push(Finding::new(
                            &file.path,
                            line,
                            labels::LOCK_LABEL,
                            format!(
                                "lock `{ident}` declared with label `{label}` but an earlier \
                                 declaration in this file uses `{prev}`; same ident must mean \
                                 one lock class per file"
                            ),
                        ));
                        continue;
                    }
                }
                registry.insert(ident.clone(), label.clone());
                decls.push(LockDecl {
                    file: file.path.clone(),
                    line,
                    ident,
                    label,
                });
            }
            None => findings.push(Finding::new(
                &file.path,
                line,
                labels::LOCK_LABEL,
                format!("lock `{ident}` lacks a `// lock: <label>` annotation"),
            )),
        }
    }
    registry
}

fn is_path_new(tokens: &[Token], i: usize) -> bool {
    model::is_punct(tokens.get(i + 1), ':')
        && model::is_punct(tokens.get(i + 2), ':')
        && model::is_ident(tokens.get(i + 3), "new")
}

/// For `Mutex::new` at `i`: the `let` binding of the enclosing
/// statement, if any.
fn let_binding_ident(tokens: &[Token], i: usize) -> Option<(String, u32)> {
    let start = stmt_start_before(tokens, i);
    if !model::is_ident(tokens.get(start), "let") {
        return None;
    }
    let mut j = start + 1;
    while j < i {
        match &tokens[j].kind {
            Tok::Ident(s) if s == "mut" => j += 1,
            Tok::Punct('(') => j += 1,
            Tok::Ident(s) => return Some((s.clone(), tokens[j].line)),
            _ => return None,
        }
    }
    None
}

fn stmt_start_before(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        match &tokens[j - 1].kind {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => return j,
            Tok::Punct(')') | Tok::Punct(']') => j = model::matching_open(tokens, j - 1),
            _ => j -= 1,
        }
    }
    0
}

/// For `Mutex<` in type position at `i`: walk back over type wrappers
/// (`Arc<`, `&`, `Vec<`, path `::`) to the `name:` field or binding.
fn field_ident_before_type(tokens: &[Token], i: usize) -> Option<(String, u32)> {
    let mut j = i;
    while j > 0 {
        match &tokens[j - 1].kind {
            Tok::Punct('<') | Tok::Punct('&') | Tok::Lifetime => j -= 1,
            Tok::Punct(':') if j >= 2 && model::is_punct(tokens.get(j - 2), ':') => j -= 2,
            Tok::Punct(':') => {
                let name = model::ident_of(tokens.get(j.checked_sub(2)?))?;
                return Some((name.to_owned(), tokens[j - 2].line));
            }
            Tok::Ident(_) => j -= 1,
            _ => return None,
        }
    }
    None
}

/// Token index ranges of `spawn(...)` argument lists; guard regions do
/// not cross into a spawned closure (it runs on another thread).
fn spawn_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if matches!(&tok.kind, Tok::Ident(s) if s == "spawn")
            && model::is_punct(tokens.get(i + 1), '(')
            && !model::is_punct(tokens.get(i + 2), ')')
        {
            out.push((i + 1, model::matching_close(tokens, i + 1)));
        }
    }
    out
}

fn innermost_spawn(ranges: &[(usize, usize)], idx: usize) -> Option<usize> {
    ranges
        .iter()
        .enumerate()
        .filter(|(_, &(s, e))| idx > s && idx < e)
        .min_by_key(|(_, &(s, e))| e - s)
        .map(|(i, _)| i)
}

struct Walk<'a> {
    file: &'a FileInput,
    registry: &'a HashMap<String, String>,
    ann: &'a mut AnnIndex,
    spawn_ranges: &'a [(usize, usize)],
    nested: &'a [(usize, usize)],
    findings: &'a mut Vec<Finding>,
    edges: &'a mut Vec<Edge>,
    call_sites: &'a mut Vec<CallSite>,
    summary: Summary,
}

impl Walk<'_> {
    fn run(&mut self, body_open: usize, body_close: usize) {
        let tokens = &self.file.lexed.tokens;
        let mut regions: Vec<Region> = Vec::new();
        let mut depth: u32 = 0;
        let mut i = body_open + 1;
        while i < body_close {
            if let Some(&(_, end)) = self.nested.iter().find(|&&(s, _)| s == i) {
                i = end + 1;
                continue;
            }
            let tok = &tokens[i];
            match &tok.kind {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    let new_depth = depth.saturating_sub(1);
                    regions.retain(|r| {
                        if r.is_let {
                            new_depth >= r.stmt_depth
                        } else {
                            new_depth > r.stmt_depth
                        }
                    });
                    depth = new_depth;
                }
                Tok::Punct(';') => {
                    regions.retain(|r| r.is_let || depth != r.stmt_depth);
                }
                Tok::Ident(name) => {
                    if model::is_punct(tokens.get(i + 1), '(') {
                        self.handle_call(name.clone(), i, depth, &mut regions);
                    } else if self.file.warm
                        && model::is_punct(tokens.get(i + 1), '!')
                        && PANIC_MACROS.contains(&name.as_str())
                        && !self.ann.take_warm_allow(tok.line)
                    {
                        self.findings.push(Finding::new(
                            &self.file.path,
                            tok.line,
                            labels::WARM_PANIC,
                            format!(
                                "`{name}!` in a warm serving path; return a typed error or \
                                     justify with `// warm-path: allow(<reason>)`"
                            ),
                        ));
                    } else if self.file.warm {
                        self.check_warm_alloc(name, i, &regions);
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    /// Regions visible at `idx`: created under the same innermost
    /// `spawn(...)` closure (or none).
    fn visible<'r>(&self, regions: &'r [Region], idx: usize) -> Vec<&'r Region> {
        let key = innermost_spawn(self.spawn_ranges, idx);
        regions.iter().filter(|r| r.spawn_key == key).collect()
    }

    fn handle_call(&mut self, name: String, i: usize, depth: u32, regions: &mut Vec<Region>) {
        let tokens = &self.file.lexed.tokens;
        let line = tokens[i].line;
        let is_method = i > 0 && model::is_punct(tokens.get(i - 1), '.');
        let zero_arg = model::is_punct(tokens.get(i + 2), ')');
        let in_spawn = innermost_spawn(self.spawn_ranges, i);

        // `drop(g)` releases a let-bound guard early.
        if !is_method && name == "drop" && !zero_arg {
            if let Some(arg) = model::ident_of(tokens.get(i + 2)) {
                if model::is_punct(tokens.get(i + 3), ')') {
                    regions.retain(|r| r.binding.as_deref() != Some(arg));
                    return;
                }
            }
        }

        // Acquisition: `.lock()` / `.read()` / `.write()` with no args.
        if is_method && zero_arg && ACQUIRE_METHODS.contains(&name.as_str()) {
            self.handle_acquisition(&name, i, depth, regions);
            return;
        }

        // Condvar wait: `cv.wait(guard)` releases that guard during the
        // wait; other live guards are still held across it.
        if is_method && (name == "wait" || name == "wait_timeout") && !zero_arg {
            let close = model::matching_close(tokens, i + 1);
            let first_arg = (i + 2..close).find_map(|j| model::ident_of(tokens.get(j)));
            let own_idx = first_arg.and_then(|arg| {
                regions
                    .iter()
                    .position(|r| r.binding.as_deref() == Some(arg))
            });
            if in_spawn.is_none() {
                self.summary.blocking = true;
            }
            let held: Vec<(String, u32)> = regions
                .iter()
                .enumerate()
                .filter(|(ri, r)| r.spawn_key == in_spawn && Some(*ri) != own_idx)
                .map(|(_, r)| (r.class.clone(), r.acq_line))
                .collect();
            self.report_blocking(&name, line, &held);
            return;
        }

        // Other blocking primitives.
        let blocking = BLOCKING_ANY_ARITY.contains(&name.as_str())
            || (zero_arg && BLOCKING_ZERO_ARITY.contains(&name.as_str()))
            || (is_method && zero_arg && name == "spawn");
        if blocking {
            if in_spawn.is_none() {
                self.summary.blocking = true;
            }
            let held: Vec<(String, u32)> = self
                .visible(regions, i)
                .into_iter()
                .map(|r| (r.class.clone(), r.acq_line))
                .collect();
            self.report_blocking(&name, line, &held);
            return;
        }

        // Warm-path discipline for method calls: unwrap/expect bans and
        // guard-live allocation bans.
        if self.file.warm && is_method {
            if name == "unwrap" {
                if !self.ann.take_warm_allow(line) {
                    self.findings.push(Finding::new(
                        &self.file.path,
                        line,
                        labels::WARM_UNWRAP,
                        "`.unwrap()` in a warm serving path; use `?`/match or justify with \
                         `// warm-path: allow(<reason>)`"
                            .to_owned(),
                    ));
                }
            } else if name == "expect" {
                // `.lock().expect(..)` and condvar-wait results are
                // auto-allowed: propagating lock poison is the reviewed
                // policy, not a warm-path escape.
                if !is_lock_result(tokens, i) && !self.ann.take_warm_allow(line) {
                    self.findings.push(Finding::new(
                        &self.file.path,
                        line,
                        labels::WARM_EXPECT,
                        "`.expect()` on a non-lock result in a warm serving path; return a \
                         typed error or justify with `// warm-path: allow(<reason>)`"
                            .to_owned(),
                    ));
                }
            } else if ALLOC_METHODS.contains(&name.as_str()) {
                let live: Vec<(String, u32)> = self
                    .visible(regions, i)
                    .into_iter()
                    .map(|r| (r.class.clone(), r.acq_line))
                    .collect();
                self.report_warm_alloc(&name, line, &live);
            }
        }

        // Plain call: record for propagation.
        let prev_ident = model::ident_of(tokens.get(i.wrapping_sub(1)));
        if matches!(
            prev_ident,
            Some("fn" | "struct" | "enum" | "trait" | "union")
        ) {
            return;
        }
        self.summary.calls.insert(name.clone());
        let guards: Vec<(String, u32)> = self
            .visible(regions, i)
            .into_iter()
            .map(|r| (r.class.clone(), r.acq_line))
            .collect();
        if !guards.is_empty() {
            self.call_sites.push(CallSite {
                file: self.file.path.clone(),
                line,
                callee: name,
                guards,
            });
        }
    }

    fn report_blocking(&mut self, op: &str, line: u32, held: &[(String, u32)]) {
        if held.is_empty() || self.ann.take_lock_order_allow(line) {
            return;
        }
        let classes = held
            .iter()
            .map(|(c, l)| format!("`{c}` (acquired at {}:{l})", self.file.path))
            .collect::<Vec<_>>()
            .join(", ");
        self.findings.push(Finding::new(
            &self.file.path,
            line,
            labels::LOCK_BLOCKING,
            format!(
                "{classes} held across blocking `{op}`; release the guard first or justify \
                 with `// lock-order: allow(<reason>)`"
            ),
        ));
    }

    fn handle_acquisition(
        &mut self,
        method: &str,
        i: usize,
        depth: u32,
        regions: &mut Vec<Region>,
    ) {
        let tokens = &self.file.lexed.tokens;
        let line = tokens[i].line;
        let chain = receiver_chain(tokens, i - 1);
        if chain
            .iter()
            .any(|c| matches!(c.as_str(), "stdout" | "stderr" | "stdin"))
        {
            return;
        }
        let class = chain
            .iter()
            .find_map(|c| self.registry.get(c).cloned())
            .or_else(|| self.ann.take_lock_label(line));
        let Some(class) = class else {
            // Unresolvable `.read()`/`.write()` are io traits, not locks;
            // unresolvable `.lock()` means an unregistered Mutex.
            if method == "lock" {
                self.findings.push(Finding::new(
                    &self.file.path,
                    line,
                    labels::LOCK_LABEL,
                    format!(
                        "cannot resolve the lock class of this `.lock()` (receiver `{}`); \
                         label the declaration or add a use-site `// lock: <label>`",
                        chain.first().map(String::as_str).unwrap_or("?")
                    ),
                ));
            }
            return;
        };
        if innermost_spawn(self.spawn_ranges, i).is_none() {
            self.summary.acquires.insert(class.clone());
        }

        // Nested acquisition: one edge per live guard, unless allowed.
        let live = self.visible(regions, i);
        if !live.is_empty() && !self.ann.take_lock_order_allow(line) {
            for r in &live {
                self.edges.push(Edge {
                    from: r.class.clone(),
                    to: class.clone(),
                    from_site: (self.file.path.clone(), r.acq_line),
                    to_site: (self.file.path.clone(), line),
                    via: None,
                });
            }
        }

        // Guard lifetime: a let binds the guard only when the chain ends
        // at the acquisition (modulo one `.expect(..)`/`.unwrap()`);
        // further chained calls consume the guard within the statement.
        let mut after = model::matching_close(tokens, i + 1) + 1;
        if model::is_punct(tokens.get(after), '.')
            && matches!(
                model::ident_of(tokens.get(after + 1)),
                Some("expect" | "unwrap")
            )
            && model::is_punct(tokens.get(after + 2), '(')
        {
            after = model::matching_close(tokens, after + 2) + 1;
        }
        let chained_further = model::is_punct(tokens.get(after), '.');
        let binding = if chained_further {
            None
        } else {
            let_binding_ident(tokens, i).map(|(b, _)| b)
        };
        let is_let = binding.is_some();
        regions.push(Region {
            class,
            binding,
            acq_line: line,
            stmt_depth: depth,
            is_let,
            spawn_key: innermost_spawn(self.spawn_ranges, i),
        });
    }

    fn check_warm_alloc(&mut self, name: &str, i: usize, regions: &[Region]) {
        let tokens = &self.file.lexed.tokens;
        let line = tokens[i].line;
        let is_alloc = if model::is_punct(tokens.get(i + 1), '!') {
            name == "vec" || name == "format"
        } else if ALLOC_PATH_TYPES.contains(&name)
            && model::is_punct(tokens.get(i + 1), ':')
            && model::is_punct(tokens.get(i + 2), ':')
        {
            matches!(model::ident_of(tokens.get(i + 3)), Some(f) if ALLOC_PATH_FNS.contains(&f))
                && model::is_punct(tokens.get(i + 4), '(')
        } else {
            false
        };
        let is_alloc_method = ALLOC_METHODS.contains(&name)
            && model::is_punct(tokens.get(i.wrapping_sub(1)), '.')
            && model::is_punct(tokens.get(i + 1), '(');
        if !(is_alloc || is_alloc_method) {
            return;
        }
        let live: Vec<(String, u32)> = self
            .visible(regions, i)
            .into_iter()
            .map(|r| (r.class.clone(), r.acq_line))
            .collect();
        self.report_warm_alloc(name, line, &live);
    }

    fn report_warm_alloc(&mut self, name: &str, line: u32, live: &[(String, u32)]) {
        if live.is_empty() || self.ann.take_warm_allow(line) {
            return;
        }
        let classes = live
            .iter()
            .map(|(c, _)| format!("`{c}`"))
            .collect::<Vec<_>>()
            .join(", ");
        self.findings.push(Finding::new(
            &self.file.path,
            line,
            labels::WARM_ALLOC,
            format!(
                "allocation (`{name}`) while holding {classes} in a warm serving path; \
                 move it outside the guard or justify with `// warm-path: allow(<reason>)`"
            ),
        ));
    }
}

/// `true` when the `.expect(`/`.unwrap(` at `i` is chained directly onto
/// a lock acquisition or condvar wait result.
fn is_lock_result(tokens: &[Token], i: usize) -> bool {
    // tokens[i-1] is `.`; tokens[i-2] must be the `)` of the producer.
    if i < 2 || !model::is_punct(tokens.get(i - 2), ')') {
        return false;
    }
    let open = model::matching_open(tokens, i - 2);
    if open == i - 2 || open == 0 {
        return false;
    }
    matches!(
        model::ident_of(tokens.get(open - 1)),
        Some("lock" | "read" | "write" | "wait" | "wait_timeout")
    ) && model::is_punct(tokens.get(open.wrapping_sub(2)), '.')
}

/// `self.a.b[i].lock()` — idents of the receiver chain, nearest first.
fn receiver_chain(tokens: &[Token], dot_idx: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut j = dot_idx; // index of the `.` before the method
    loop {
        if j == 0 {
            break;
        }
        match &tokens[j - 1].kind {
            Tok::Punct(']') | Tok::Punct(')') => {
                let open = model::matching_open(tokens, j - 1);
                if open == j - 1 {
                    break;
                }
                j = open;
            }
            Tok::Ident(s) => {
                out.push(s.clone());
                if j >= 2 && model::is_punct(tokens.get(j - 2), '.') {
                    j -= 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    out
}

/// Fixpoint of transitive acquires / may-block over the call graph.
#[allow(clippy::type_complexity)]
fn fixpoint(
    summaries: &HashMap<String, Summary>,
) -> (BTreeMap<String, BTreeSet<String>>, BTreeSet<String>) {
    let mut acquires: BTreeMap<String, BTreeSet<String>> = summaries
        .iter()
        .map(|(k, v)| (k.clone(), v.acquires.clone()))
        .collect();
    let mut blocks: BTreeSet<String> = summaries
        .iter()
        .filter(|(_, v)| v.blocking)
        .map(|(k, _)| k.clone())
        .collect();
    loop {
        let mut changed = false;
        for (name, summary) in summaries {
            for callee in &summary.calls {
                if PROPAGATION_DENYLIST.contains(&callee.as_str())
                    || !summaries.contains_key(callee)
                {
                    continue;
                }
                let callee_acq = acquires.get(callee).cloned().unwrap_or_default();
                let mine = acquires.entry(name.clone()).or_default();
                for c in callee_acq {
                    changed |= mine.insert(c);
                }
                if blocks.contains(callee) && blocks.insert(name.clone()) {
                    changed = true;
                }
            }
        }
        if !changed {
            return (acquires, blocks);
        }
    }
}

/// Detect cycles in the lock-order graph; returns the edge count.
fn report_cycles(edges: &[Edge], findings: &mut Vec<Finding>) -> usize {
    // Dedupe parallel edges, keeping the first site pair per (from, to).
    let mut dedup: BTreeMap<(String, String), &Edge> = BTreeMap::new();
    for e in edges {
        dedup.entry((e.from.clone(), e.to.clone())).or_insert(e);
    }
    let adj: BTreeMap<&str, Vec<&Edge>> = dedup.values().fold(BTreeMap::new(), |mut m, e| {
        m.entry(e.from.as_str()).or_default().push(e);
        m
    });

    let mut reported: BTreeSet<String> = BTreeSet::new();

    // Self-edges (re-entrant acquisition of one class) deadlock on their
    // own; report them directly, DFS only finds longer cycles.
    for e in dedup.values() {
        if e.from == e.to && reported.insert(e.from.clone()) {
            let via = e
                .via
                .as_ref()
                .map(|v| format!(" via `{v}()`"))
                .unwrap_or_default();
            findings.push(Finding::new(
                &e.from_site.0,
                e.from_site.1,
                labels::LOCK_ORDER,
                format!(
                    "lock-order cycle (potential deadlock): `{}` ({}:{}) re-acquired while \
                     already held ({}:{}){via}",
                    e.from, e.from_site.0, e.from_site.1, e.to_site.0, e.to_site.1,
                ),
            ));
        }
    }
    for start in adj.keys() {
        let mut path: Vec<&Edge> = Vec::new();
        dfs(
            start,
            &adj,
            &mut path,
            &mut BTreeSet::new(),
            findings,
            &mut reported,
        );
    }
    dedup.len()
}

fn dfs<'e>(
    node: &str,
    adj: &BTreeMap<&str, Vec<&'e Edge>>,
    path: &mut Vec<&'e Edge>,
    visited: &mut BTreeSet<String>,
    findings: &mut Vec<Finding>,
    reported: &mut BTreeSet<String>,
) {
    if !visited.insert(node.to_owned()) {
        return;
    }
    for &e in adj.get(node).into_iter().flatten() {
        if let Some(pos) = path.iter().position(|p| p.from == e.to) {
            // Cycle: path[pos..] + e closes back to e.to.
            let cycle: Vec<&Edge> = path[pos..].iter().copied().chain([e]).collect();
            let mut names: Vec<&str> = cycle.iter().map(|c| c.from.as_str()).collect();
            names.sort_unstable();
            let key = names.join("->");
            if reported.insert(key) {
                let desc = cycle
                    .iter()
                    .map(|c| {
                        let via = c
                            .via
                            .as_ref()
                            .map(|v| format!(" via `{v}()`"))
                            .unwrap_or_default();
                        format!(
                            "`{}` ({}:{}) -> `{}` ({}:{}){via}",
                            c.from, c.from_site.0, c.from_site.1, c.to, c.to_site.0, c.to_site.1,
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                findings.push(Finding::new(
                    &cycle[0].from_site.0,
                    cycle[0].from_site.1,
                    labels::LOCK_ORDER,
                    format!("lock-order cycle (potential deadlock): {desc}"),
                ));
            }
            continue;
        }
        if e.from == e.to {
            continue; // handled above via path check; defensive
        }
        path.push(e);
        dfs(&e.to, adj, path, visited, findings, reported);
        path.pop();
    }
}
