//! CLI for the serving-stack static analyzer.
//!
//! ```text
//! cargo run -p patdnn-analyze              # analyze the repo, exit 0/1
//! cargo run -p patdnn-analyze -- --registry  # also print the lock registry
//! cargo run -p patdnn-analyze -- --root PATH # analyze another checkout
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut show_registry = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--registry" => show_registry = true,
            "--help" | "-h" => {
                eprintln!("usage: patdnn-analyze [--root PATH] [--registry]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    // Resolve a bare `cargo run` from anywhere inside the workspace.
    if !root.join("Cargo.toml").exists() {
        if let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") {
            // tools/analyze -> repo root
            let candidate = PathBuf::from(manifest_dir).join("../..");
            if candidate.join("Cargo.toml").exists() {
                root = candidate;
            }
        }
    }

    let analysis = patdnn_analyze::run(&root);

    if show_registry {
        println!("lock registry ({} classes):", {
            let labels: std::collections::BTreeSet<_> =
                analysis.decls.iter().map(|d| d.label.as_str()).collect();
            labels.len()
        });
        for d in &analysis.decls {
            println!("  {:<24} {}:{} ({})", d.label, d.file, d.line, d.ident);
        }
        println!();
    }

    if analysis.findings.is_empty() {
        println!(
            "patdnn-analyze: clean — {} labeled locks, {} lock-order edges, 0 findings",
            analysis.decls.len(),
            analysis.edge_count
        );
        return ExitCode::SUCCESS;
    }

    let mut by_label: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &analysis.findings {
        *by_label.entry(f.label).or_default() += 1;
        println!("{f}");
    }
    let summary = by_label
        .iter()
        .map(|(l, n)| format!("{n} {l}"))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "patdnn-analyze: {} finding(s): {summary}",
        analysis.findings.len()
    );
    ExitCode::FAILURE
}
