//! Structural view of one lexed file: function bodies, `#[cfg(test)]`
//! regions, and small token-navigation helpers shared by the passes.

use crate::lexer::{Lexed, Tok, Token};

/// A function item: `fn <name>(...) { body }`.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Index of the `fn` keyword token.
    pub fn_idx: usize,
    /// Index of the `(` opening the parameter list.
    pub params_open: usize,
    /// Index of the `)` closing the parameter list.
    pub params_close: usize,
    /// Index of the `{` opening the body (`None` for trait signatures).
    pub body_open: Option<usize>,
    /// Index of the matching `}` closing the body.
    pub body_close: Option<usize>,
}

#[derive(Debug)]
pub struct FileModel {
    pub functions: Vec<FnItem>,
    /// Token index ranges (inclusive start, exclusive end) under `#[cfg(test)]`.
    pub test_regions: Vec<(usize, usize)>,
}

pub fn is_ident(tok: Option<&Token>, text: &str) -> bool {
    matches!(tok, Some(Token { kind: Tok::Ident(s), .. }) if s == text)
}

pub fn is_punct(tok: Option<&Token>, c: char) -> bool {
    matches!(tok, Some(Token { kind: Tok::Punct(p), .. }) if *p == c)
}

pub fn ident_of(tok: Option<&Token>) -> Option<&str> {
    match tok {
        Some(Token {
            kind: Tok::Ident(s),
            ..
        }) => Some(s.as_str()),
        _ => None,
    }
}

/// Index of the token matching the opener at `open` (`(`/`[`/`{`), or
/// the last token if unbalanced.
pub fn matching_close(tokens: &[Token], open: usize) -> usize {
    let (o, c) = match tokens[open].kind {
        Tok::Punct('(') => ('(', ')'),
        Tok::Punct('[') => ('[', ']'),
        Tok::Punct('{') => ('{', '}'),
        _ => return open,
    };
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match &t.kind {
            Tok::Punct(p) if *p == o => depth += 1,
            Tok::Punct(p) if *p == c => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    tokens.len() - 1
}

/// Walk backwards from the token before `open_close.0`'s matching
/// opener; used to skip a balanced group right-to-left. Returns the
/// index of the opener, or `idx` when `idx` is not a closer.
pub fn matching_open(tokens: &[Token], close: usize) -> usize {
    let (o, c) = match tokens[close].kind {
        Tok::Punct(')') => ('(', ')'),
        Tok::Punct(']') => ('[', ']'),
        Tok::Punct('}') => ('{', '}'),
        _ => return close,
    };
    let mut depth = 0usize;
    let mut j = close;
    loop {
        match &tokens[j].kind {
            Tok::Punct(p) if *p == c => depth += 1,
            Tok::Punct(p) if *p == o => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        if j == 0 {
            return close;
        }
        j -= 1;
    }
}

/// Build the structural model: function items and `#[cfg(test)]` regions.
pub fn build(lexed: &Lexed) -> FileModel {
    let tokens = &lexed.tokens;
    let mut functions = Vec::new();
    let mut test_regions = Vec::new();

    let mut i = 0usize;
    while i < tokens.len() {
        // #[cfg(test)] — attach to the following item (to its `{...}`
        // block, or to the single statement when none, e.g. an
        // attributed `use`).
        if is_punct(tokens.get(i), '#')
            && is_punct(tokens.get(i + 1), '[')
            && is_ident(tokens.get(i + 2), "cfg")
            && is_punct(tokens.get(i + 3), '(')
            && is_ident(tokens.get(i + 4), "test")
            && is_punct(tokens.get(i + 5), ')')
            && is_punct(tokens.get(i + 6), ']')
        {
            let mut j = i + 7;
            while j < tokens.len() && !is_punct(tokens.get(j), '{') && !is_punct(tokens.get(j), ';')
            {
                j += 1;
            }
            let end = if j < tokens.len() && is_punct(tokens.get(j), '{') {
                matching_close(tokens, j) + 1
            } else {
                j + 1
            };
            test_regions.push((i, end.min(tokens.len())));
            i = end.min(tokens.len());
            continue;
        }

        if is_ident(tokens.get(i), "fn") {
            if let Some(name) = ident_of(tokens.get(i + 1)) {
                // Parameter list: first `(` after the name (skipping
                // generics), then its matching `)`.
                let mut j = i + 2;
                while j < tokens.len()
                    && !is_punct(tokens.get(j), '(')
                    && !is_punct(tokens.get(j), '{')
                    && !is_punct(tokens.get(j), ';')
                {
                    j += 1;
                }
                if j < tokens.len() && is_punct(tokens.get(j), '(') {
                    let params_close = matching_close(tokens, j);
                    // Body: first `{` after the params (return type and
                    // where-clauses contain no braces in this codebase);
                    // `;` first means a bodyless signature.
                    let mut k = params_close + 1;
                    while k < tokens.len()
                        && !is_punct(tokens.get(k), '{')
                        && !is_punct(tokens.get(k), ';')
                    {
                        k += 1;
                    }
                    let (body_open, body_close) =
                        if k < tokens.len() && is_punct(tokens.get(k), '{') {
                            (Some(k), Some(matching_close(tokens, k)))
                        } else {
                            (None, None)
                        };
                    functions.push(FnItem {
                        name: name.to_owned(),
                        fn_idx: i,
                        params_open: j,
                        params_close,
                        body_open,
                        body_close,
                    });
                }
            }
        }
        i += 1;
    }

    FileModel {
        functions,
        test_regions,
    }
}

impl FileModel {
    pub fn in_test_region(&self, tok_idx: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| tok_idx >= s && tok_idx < e)
    }

    /// `true` when `tok_idx` sits inside any function's parameter list.
    pub fn in_fn_signature(&self, tok_idx: usize) -> bool {
        self.functions
            .iter()
            .any(|f| tok_idx > f.params_open && tok_idx < f.params_close)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_functions_and_test_regions() {
        let src = r#"
            fn alpha(x: u32) -> u32 { x + 1 }
            struct S;
            impl S {
                fn beta(&self) { let y = 2; }
            }
            #[cfg(test)]
            mod tests {
                fn gamma() {}
            }
        "#;
        let lexed = lex(src);
        let model = build(&lexed);
        let names: Vec<_> = model.functions.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"alpha") && names.contains(&"beta"));
        assert_eq!(model.test_regions.len(), 1);
        // Items under #[cfg(test)] are skipped wholesale: test helpers
        // never pollute the call-graph summaries.
        assert!(!names.contains(&"gamma"));
        let (start, end) = model.test_regions[0];
        assert!(model.in_test_region(start) && model.in_test_region(end - 1));
    }

    #[test]
    fn nested_parens_in_params() {
        let src = "fn f(g: impl Fn(u32) -> u32) { g(1); }";
        let lexed = lex(src);
        let model = build(&lexed);
        let f = &model.functions[0];
        assert!(f.body_open.is_some());
        assert!(model.in_fn_signature(f.params_open + 2));
    }
}
