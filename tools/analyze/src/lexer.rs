//! Hand-written lexer for the Rust subset this repository uses.
//!
//! The analyzer never parses full Rust; it works off a token stream that
//! is exact about the three things substring lints get wrong: comments
//! (line and nested block), string/char literals (including raw and byte
//! strings), and lifetimes vs char literals. Everything else is reduced
//! to identifiers, numbers, and single-character punctuation.
//!
//! Line comments are additionally scanned for the analyzer's annotation
//! grammar (see DESIGN.md §15):
//!
//! ```text
//! // lock: <label>                  declares/names a lock class
//! // lock-order: allow(<reason>)    reviewed guard-across-blocking/edge
//! // warm-path: allow(<reason>)     reviewed warm-path discipline waiver
//! // SAFETY: <why>                  justifies an unsafe block
//! ```

/// One lexical token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (the analyzer does not distinguish).
    Ident(String),
    /// Any single punctuation character (`{`, `.`, `!`, ...).
    Punct(char),
    /// Any string literal; contents are irrelevant to the analysis.
    Str,
    /// Any char literal.
    Char,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A numeric literal.
    Num,
}

/// A structured comment recognized by the annotation grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    pub line: u32,
    pub kind: AnnKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnKind {
    /// `// lock: <label>` — names the lock class declared (or used) here.
    LockLabel(String),
    /// `// lock-order: allow(<reason>)`.
    LockOrderAllow(String),
    /// `// warm-path: allow(<reason>)`.
    WarmAllow(String),
    /// `// SAFETY: ...`.
    Safety,
    /// A `lock:`/`lock-order:`/`warm-path:` comment that does not parse.
    Malformed(String),
}

#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub annotations: Vec<Annotation>,
}

/// Lex `src` into tokens plus recognized annotations.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                let text = &src[start..j];
                if let Some(ann) = parse_annotation(text, line) {
                    out.annotations.push(ann);
                }
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            b'"' => {
                out.tokens.push(Token {
                    kind: Tok::Str,
                    line,
                });
                i = skip_string(b, i, &mut line);
            }
            b'r' | b'b' => {
                // Raw / byte string prefixes: r", r#", br", b", b'.
                if let Some(next) = raw_or_byte_literal(b, i, &mut line) {
                    out.tokens.push(Token {
                        kind: Tok::Str,
                        line,
                    });
                    i = next;
                } else {
                    let (ident, j) = take_ident(src, i);
                    out.tokens.push(Token {
                        kind: Tok::Ident(ident),
                        line,
                    });
                    i = j;
                }
            }
            b'\'' => {
                // Lifetime vs char literal: a lifetime is `'ident` NOT
                // followed by a closing quote.
                if is_lifetime(b, i) {
                    let (_, j) = take_ident(src, i + 1);
                    out.tokens.push(Token {
                        kind: Tok::Lifetime,
                        line,
                    });
                    i = j;
                } else {
                    out.tokens.push(Token {
                        kind: Tok::Char,
                        line,
                    });
                    i = skip_char_literal(b, i);
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let (ident, j) = take_ident(src, i);
                out.tokens.push(Token {
                    kind: Tok::Ident(ident),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                out.tokens.push(Token {
                    kind: Tok::Num,
                    line,
                });
                i = skip_number(b, i);
            }
            c => {
                out.tokens.push(Token {
                    kind: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn parse_annotation(comment: &str, line: u32) -> Option<Annotation> {
    let text = comment.trim_start_matches(['/', '!']).trim();
    let kind = if let Some(rest) = text.strip_prefix("lock:") {
        let label = rest.trim();
        if !label.is_empty()
            && label
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        {
            AnnKind::LockLabel(label.to_owned())
        } else {
            AnnKind::Malformed(format!(
                "lock label `{label}` must be non-empty kebab-case ([a-z0-9-]+)"
            ))
        }
    } else if let Some(rest) = text.strip_prefix("lock-order:") {
        match parse_allow(rest) {
            Some(reason) => AnnKind::LockOrderAllow(reason),
            None => AnnKind::Malformed("expected `lock-order: allow(<reason>)`".to_owned()),
        }
    } else if let Some(rest) = text.strip_prefix("warm-path:") {
        match parse_allow(rest) {
            Some(reason) => AnnKind::WarmAllow(reason),
            None => AnnKind::Malformed("expected `warm-path: allow(<reason>)`".to_owned()),
        }
    } else if text.starts_with("SAFETY:") {
        AnnKind::Safety
    } else {
        return None;
    };
    Some(Annotation { line, kind })
}

fn parse_allow(rest: &str) -> Option<String> {
    let rest = rest.trim();
    let inner = rest.strip_prefix("allow(")?.strip_suffix(')')?;
    let reason = inner.trim();
    if reason.is_empty() {
        None
    } else {
        Some(reason.to_owned())
    }
}

fn take_ident(src: &str, start: usize) -> (String, usize) {
    let b = src.as_bytes();
    let mut j = start;
    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    (src[start..j].to_owned(), j)
}

fn is_lifetime(b: &[u8], i: usize) -> bool {
    // `'a` where the char after the ident is not `'` (that would be 'a').
    if i + 1 >= b.len() {
        return false;
    }
    let c = b[i + 1];
    if !(c == b'_' || c.is_ascii_alphabetic()) {
        return false;
    }
    let mut j = i + 1;
    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    !(j < b.len() && b[j] == b'\'')
}

fn skip_string(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut j = start + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

fn skip_char_literal(b: &[u8], start: usize) -> usize {
    let mut j = start + 1;
    if j < b.len() && b[j] == b'\\' {
        j += 2;
    } else {
        j += 1;
    }
    while j < b.len() && b[j] != b'\'' {
        j += 1;
    }
    j + 1
}

fn skip_number(b: &[u8], start: usize) -> usize {
    let mut j = start;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    // Fractional part, but not the `..` of a range expression.
    if j + 1 < b.len() && b[j] == b'.' && b[j + 1].is_ascii_digit() {
        j += 1;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
    }
    j
}

/// `true` when a raw/byte string starts at `i`; advances past it.
fn raw_or_byte_literal(b: &[u8], i: usize, line: &mut u32) -> Option<usize> {
    let rest = &b[i..];
    let (hash_start, is_raw) = if rest.starts_with(b"r\"") || rest.starts_with(b"r#") {
        (i + 1, true)
    } else if rest.starts_with(b"br\"") || rest.starts_with(b"br#") {
        (i + 2, true)
    } else if rest.starts_with(b"b\"") {
        (i + 1, false)
    } else if rest.starts_with(b"b'") {
        return Some(skip_char_literal(b, i + 1));
    } else {
        return None;
    };
    if !is_raw {
        return Some(skip_string(b, hash_start, line));
    }
    let mut hashes = 0usize;
    let mut j = hash_start;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        return None;
    }
    j += 1;
    while j < b.len() {
        if b[j] == b'\n' {
            *line += 1;
            j += 1;
        } else if b[j] == b'"'
            && b[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            return Some(j + 1 + hashes);
        } else {
            j += 1;
        }
    }
    Some(j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            let x = "mutex.lock() // not real";
            // mutex.lock() in a comment
            /* nested /* mutex.lock() */ still comment */
            let y = r#"raw "lock" text"#;
            real.lock();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "lock").count(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Tok::Lifetime)
            .count();
        let chars = lexed.tokens.iter().filter(|t| t.kind == Tok::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn annotations_parse() {
        let src = "\n// lock: net-writer\n// lock-order: allow(writer serialization)\n// warm-path: allow(bounded scan)\n// SAFETY: aligned by construction\n// lock: Bad Label\n";
        let anns = lex(src).annotations;
        assert_eq!(anns.len(), 5);
        assert_eq!(anns[0].kind, AnnKind::LockLabel("net-writer".into()));
        assert_eq!(
            anns[1].kind,
            AnnKind::LockOrderAllow("writer serialization".into())
        );
        assert_eq!(anns[2].kind, AnnKind::WarmAllow("bounded scan".into()));
        assert_eq!(anns[3].kind, AnnKind::Safety);
        assert!(matches!(anns[4].kind, AnnKind::Malformed(_)));
        assert_eq!(anns[0].line, 2);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/* a\nb */\nfoo";
        let lexed = lex(src);
        assert_eq!(lexed.tokens[0].line, 3);
    }
}
