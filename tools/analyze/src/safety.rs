//! `unsafe` blocks and impls must carry a nearby `// SAFETY:`
//! justification. Token-based port of the rule from the retired
//! `tools/lint.rs`: string literals and comments can no longer produce
//! false positives, and `unsafe fn` declarations remain exempt (their
//! obligation sits at the call sites).

use crate::lexer::{self, AnnKind};
use crate::model;
use crate::{labels, Finding};

/// Lines above the `unsafe` token in which the justification may sit.
const SAFETY_WINDOW: u32 = 3;

pub fn check(path: &str, src: &str, findings: &mut Vec<Finding>) {
    let lexed = lexer::lex(src);
    let safety_lines: Vec<u32> = lexed
        .annotations
        .iter()
        .filter(|a| a.kind == AnnKind::Safety)
        .map(|a| a.line)
        .collect();
    let tokens = &lexed.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if !matches!(&tok.kind, lexer::Tok::Ident(s) if s == "unsafe") {
            continue;
        }
        let next = tokens.get(i + 1);
        let needs_comment = model::is_punct(next, '{') || model::is_ident(next, "impl");
        if !needs_comment {
            continue;
        }
        let line = tok.line;
        let justified = safety_lines
            .iter()
            .any(|&sl| sl <= line && line - sl <= SAFETY_WINDOW);
        if !justified {
            findings.push(Finding::new(
                path,
                line,
                labels::UNSAFE_JUSTIFY,
                "`unsafe` block/impl without a `// SAFETY:` justification within 3 lines above"
                    .to_owned(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unjustified_block_only() {
        let src = r#"
            fn ok() {
                // SAFETY: bounds checked above
                unsafe { core::hint::unreachable_unchecked() }
            }
            unsafe fn decl_is_exempt() {}
            fn bad() {
                unsafe { core::hint::unreachable_unchecked() }
            }
            fn not_code() {
                let s = "unsafe { fake }";
            }
        "#;
        let mut findings = Vec::new();
        check("x.rs", src, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].label, labels::UNSAFE_JUSTIFY);
        assert_eq!(findings[0].line, 8);
    }
}
