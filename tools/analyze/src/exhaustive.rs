//! Exhaustiveness cross-checks tying the wire protocol and the verifier
//! taxonomy to their enforcement artifacts:
//!
//! - every `mod tag` constant in `wire.rs` appears in both `fn tag`
//!   (encode side) and `fn decode`;
//! - every `Frame` variant has a seed in the wire mutation corpus
//!   (`crates/bench/src/wire_corpus.rs`);
//! - every `Violation` variant is documented in the DESIGN.md §13
//!   catalog.

use std::path::Path;

use crate::lexer::{self, Tok, Token};
use crate::model::{self, ident_of, is_ident, is_punct};
use crate::{labels, Finding};

const WIRE: &str = "crates/serve/src/wire.rs";
const CORPUS: &str = "crates/bench/src/wire_corpus.rs";
const VERIFY: &str = "crates/serve/src/verify.rs";
const DESIGN: &str = "DESIGN.md";

pub fn check(root: &Path, findings: &mut Vec<Finding>) {
    let read = |rel: &str| std::fs::read_to_string(root.join(rel)).unwrap_or_default();
    let wire_src = read(WIRE);
    let corpus_src = read(CORPUS);
    let verify_src = read(VERIFY);
    let design_src = read(DESIGN);
    if wire_src.is_empty() || verify_src.is_empty() {
        return; // snippet-mode callers don't have the repo layout
    }

    let wire = lexer::lex(&wire_src);
    let wire_model = model::build(&wire);

    // 1. Tag constants vs encode/decode match arms.
    let tags = mod_consts(&wire.tokens, "tag");
    for fn_name in ["tag", "decode"] {
        let Some(body) = fn_body_range(&wire_model, fn_name) else {
            findings.push(Finding::new(
                WIRE,
                1,
                labels::WIRE_EXHAUSTIVE,
                format!("expected a `fn {fn_name}` handling every wire tag"),
            ));
            continue;
        };
        for (tag, line) in &tags {
            let covered = wire.tokens[body.0..body.1]
                .iter()
                .any(|t| matches!(&t.kind, Tok::Ident(s) if s == tag));
            if !covered {
                findings.push(Finding::new(
                    WIRE,
                    *line,
                    labels::WIRE_EXHAUSTIVE,
                    format!("wire tag `{tag}` is not handled in `fn {fn_name}`"),
                ));
            }
        }
    }

    // 2. Frame variants vs the wire mutation corpus seeds.
    for (variant, line) in enum_variants(&wire.tokens, "Frame") {
        if !corpus_src.contains(&format!("Frame::{variant}")) {
            findings.push(Finding::new(
                WIRE,
                line,
                labels::WIRE_EXHAUSTIVE,
                format!(
                    "frame variant `{variant}` has no seed/mutant coverage in {CORPUS} \
                     (expected a `Frame::{variant}` construction or match)"
                ),
            ));
        }
    }

    // 3. Violation variants vs the DESIGN.md §13 catalog.
    let verify = lexer::lex(&verify_src);
    for (variant, line) in enum_variants(&verify.tokens, "Violation") {
        if !design_src.contains(&format!("`{variant}`")) {
            findings.push(Finding::new(
                VERIFY,
                line,
                labels::CATALOG_EXHAUSTIVE,
                format!("`Violation::{variant}` is missing from the DESIGN.md §13 catalog"),
            ));
        }
    }
}

/// `const NAME: ... = ...;` identifiers inside `mod <name> { ... }`.
fn mod_consts(tokens: &[Token], mod_name: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if is_ident(tokens.get(i), "mod")
            && is_ident(tokens.get(i + 1), mod_name)
            && is_punct(tokens.get(i + 2), '{')
        {
            let close = model::matching_close(tokens, i + 2);
            let mut j = i + 3;
            while j < close {
                if is_ident(tokens.get(j), "const") {
                    if let Some(name) = ident_of(tokens.get(j + 1)) {
                        out.push((name.to_owned(), tokens[j + 1].line));
                    }
                }
                j += 1;
            }
            break;
        }
    }
    out
}

/// Top-level variant identifiers of `enum <name> { ... }`.
fn enum_variants(tokens: &[Token], enum_name: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !(is_ident(tokens.get(i), "enum") && is_ident(tokens.get(i + 1), enum_name)) {
            continue;
        }
        let mut open = i + 2;
        while open < tokens.len() && !is_punct(tokens.get(open), '{') {
            open += 1;
        }
        if open >= tokens.len() {
            break;
        }
        let close = model::matching_close(tokens, open);
        let mut depth = 0i32;
        let mut j = open + 1;
        while j < close {
            match &tokens[j].kind {
                Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Ident(name) if depth == 0 => {
                    // A variant name is followed by `,`, `}`, `(`, `{`,
                    // or `=` (discriminant); field names inside variant
                    // bodies sit at depth > 0.
                    let prev_ok = is_punct(tokens.get(j - 1), '{')
                        || is_punct(tokens.get(j - 1), ',')
                        || is_punct(tokens.get(j - 1), ']');
                    if prev_ok {
                        out.push((name.clone(), tokens[j].line));
                    }
                }
                _ => {}
            }
            j += 1;
        }
        break;
    }
    out
}

/// Token range (exclusive of braces) of the body of `fn <name>`.
fn fn_body_range(fm: &model::FileModel, name: &str) -> Option<(usize, usize)> {
    let f = fm
        .functions
        .iter()
        .find(|f| f.name == name && f.body_open.is_some())?;
    Some((f.body_open? + 1, f.body_close?))
}
