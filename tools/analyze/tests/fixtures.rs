//! Runs the analyzer over the known-bad / known-good fixture corpus in
//! `tools/analyze/fixtures/`. Every known-bad snippet must flag exactly
//! its invariant label (no more, no less); every known-good twin must
//! come back clean. The fixtures directory is excluded from whole-repo
//! scans, so these snippets never pollute `patdnn_analyze::run`.

use patdnn_analyze::{analyze_snippet, labels, Finding};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn run_fixture(name: &str, warm: bool) -> Vec<Finding> {
    analyze_snippet(name, &fixture(name), warm)
}

fn assert_clean(name: &str, warm: bool) {
    let findings = run_fixture(name, warm);
    assert!(
        findings.is_empty(),
        "expected {name} clean, got {findings:?}"
    );
}

fn labels_of(name: &str, warm: bool) -> Vec<&'static str> {
    run_fixture(name, warm).iter().map(|f| f.label).collect()
}

#[test]
fn bad_lock_cycle_flags_lock_order() {
    assert_eq!(labels_of("bad_lock_cycle.rs", false), [labels::LOCK_ORDER]);
}

#[test]
fn good_lock_cycle_is_clean() {
    assert_clean("good_lock_cycle.rs", false);
}

#[test]
fn bad_guard_across_write_flags_both_shapes() {
    // One finding for the let-bound guard across `write_all`, one for
    // the match-scrutinee guard temporary across `connect` — the exact
    // bug shape fixed in `Router::forward`.
    let findings = run_fixture("bad_guard_across_write.rs", false);
    assert_eq!(
        findings.iter().map(|f| f.label).collect::<Vec<_>>(),
        [labels::LOCK_BLOCKING, labels::LOCK_BLOCKING]
    );
    assert!(
        findings[0].message.contains("fixture-writer"),
        "first finding should name the writer class: {}",
        findings[0]
    );
    assert!(
        findings[1].message.contains("fixture-pool"),
        "second finding should name the pool class: {}",
        findings[1]
    );
}

#[test]
fn good_guard_across_write_is_clean() {
    assert_clean("good_guard_across_write.rs", false);
}

#[test]
fn bad_warm_unwrap_flags_warm_unwrap() {
    assert_eq!(labels_of("bad_warm_unwrap.rs", true), [labels::WARM_UNWRAP]);
}

#[test]
fn good_warm_unwrap_is_clean() {
    assert_clean("good_warm_unwrap.rs", true);
}

#[test]
fn bad_unlabeled_lock_flags_lock_label() {
    assert_eq!(
        labels_of("bad_unlabeled_lock.rs", false),
        [labels::LOCK_LABEL]
    );
}

#[test]
fn good_unlabeled_lock_is_clean() {
    assert_clean("good_unlabeled_lock.rs", false);
}

#[test]
fn bad_stale_allow_flags_allow_stale() {
    assert_eq!(
        labels_of("bad_stale_allow.rs", false),
        [labels::ALLOW_STALE]
    );
}

#[test]
fn good_reviewed_allow_is_clean() {
    assert_clean("good_reviewed_allow.rs", false);
}
