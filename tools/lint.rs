//! Zero-dependency repo lint, run as a tier-1 test (`tests/repo_lint.rs`
//! includes this file via `#[path]`) and as a CI step.
//!
//! Two rules, both mechanical enough that a text scan is sufficient and
//! strict enough that tooling should enforce them rather than review:
//!
//! 1. **`unsafe` needs a justification.** Every `unsafe {` block and
//!    `unsafe impl` in the workspace must have a `// SAFETY:` comment
//!    within the three preceding lines stating why the invariants hold.
//!    (`unsafe fn` *declarations* are exempt: they state an obligation
//!    for callers; the call sites are where soundness is argued.) This
//!    mirrors `clippy::undocumented_unsafe_blocks`, which CI also
//!    enables — the duplication is deliberate, so the rule holds even
//!    when clippy is skipped locally.
//! 2. **No `unwrap`/`expect` on serving warm paths.** The request
//!    lifecycle files (`engine.rs`, `batching.rs`, `server.rs`,
//!    `request.rs` in `crates/serve/src`) must not panic on behalf of a
//!    request. `.unwrap()` is banned outright; `.expect("msg")` is
//!    allowed only when `msg` appears in `tools/lint_allow.txt` — the
//!    reviewed set of lock-poisoning and scratch-pool expects whose
//!    failure already means a panic elsewhere. Test modules (after
//!    `#[cfg(test)]`) and comment lines are exempt.

use std::fs;
use std::path::{Path, PathBuf};

/// Files subject to the warm-path `unwrap`/`expect` ban.
const WARM_PATHS: [&str; 4] = [
    "crates/serve/src/engine.rs",
    "crates/serve/src/batching.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/request.rs",
];

/// Runs both rules over the repository rooted at `root`. Returns one
/// human-readable line per violation; empty means clean.
pub fn run(root: &Path) -> Vec<String> {
    let mut violations = Vec::new();
    let allow = load_allowlist(root);
    for file in rust_files(root) {
        let Ok(text) = fs::read_to_string(&file) else {
            continue;
        };
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        check_unsafe_comments(&rel, &text, &mut violations);
        if WARM_PATHS.contains(&rel.as_str()) {
            check_warm_path(&rel, &text, &allow, &mut violations);
        }
    }
    violations
}

/// The reviewed `.expect("msg")` messages allowed on warm paths, one
/// per line in `tools/lint_allow.txt` (`#` comments and blanks skipped).
fn load_allowlist(root: &Path) -> Vec<String> {
    fs::read_to_string(root.join("tools/lint_allow.txt"))
        .unwrap_or_default()
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// All `.rs` files under the workspace's source roots.
fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "tools", "benches"] {
        walk(&root.join(top), &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                walk(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Whether a trimmed source line is (entirely) a comment.
fn is_comment(line: &str) -> bool {
    line.starts_with("//")
}

/// Rule 1: `unsafe {` / `unsafe impl` must follow a `SAFETY:` comment.
fn check_unsafe_comments(rel: &str, text: &str, violations: &mut Vec<String>) {
    // Needles are assembled with `concat!` so this file's own source
    // never contains them contiguously (the lint scans itself too).
    const BLOCK: &str = concat!("unsafe", " {");
    const IMPL: &str = concat!("unsafe", " impl");
    const FN: &str = concat!("unsafe", " fn");
    let lines: Vec<&str> = text.lines().collect();
    for (i, raw) in lines.iter().enumerate() {
        let line = raw.trim();
        if is_comment(line) || line.starts_with('*') {
            continue;
        }
        let opens_block = line.contains(BLOCK) || line.ends_with("unsafe");
        let opens_impl = line.starts_with(IMPL);
        if !opens_block && !opens_impl {
            continue;
        }
        // `unsafe fn` declares an obligation, it does not discharge one.
        if line.contains(FN) && !line.contains(BLOCK) {
            continue;
        }
        let documented = lines[i.saturating_sub(3)..i]
            .iter()
            .any(|prev| prev.trim().starts_with("//") && prev.contains("SAFETY:"))
            || raw.contains("SAFETY:");
        if !documented {
            violations.push(format!(
                "{rel}:{}: unsafe without a `// SAFETY:` comment on a preceding line",
                i + 1
            ));
        }
    }
}

/// Rule 2: no `unwrap`, allowlisted `expect` only, on warm paths.
fn check_warm_path(rel: &str, text: &str, allow: &[String], violations: &mut Vec<String>) {
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        // The warm path ends where the test module starts.
        if line.starts_with("#[cfg(test)]") {
            break;
        }
        if is_comment(line) {
            continue;
        }
        if line.contains(".unwrap()") {
            violations.push(format!(
                "{rel}:{}: .unwrap() on a serving warm path (return a ServeError instead)",
                i + 1
            ));
        }
        if let Some(pos) = line.find(".expect(\"") {
            let msg = &line[pos + ".expect(\"".len()..];
            let msg = msg.split('"').next().unwrap_or("");
            if !allow.iter().any(|a| a == msg) {
                violations.push(format!(
                    "{rel}:{}: .expect({msg:?}) on a serving warm path is not in \
                     tools/lint_allow.txt",
                    i + 1
                ));
            }
        } else if line.contains(".expect(") {
            violations.push(format!(
                "{rel}:{}: .expect(..) with a non-literal message on a serving warm path",
                i + 1
            ));
        }
    }
}
