//! The [`Layer`] trait and trainable [`Param`]eters.

use patdnn_tensor::Tensor;

/// Whether a forward pass is part of training or inference.
///
/// Training mode makes layers cache activations for the subsequent
/// [`Layer::backward`] call and makes batch norm use batch statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Forward for training: cache intermediates, use batch statistics.
    Train,
    /// Forward for inference: no caching, use running statistics.
    Eval,
}

/// A trainable tensor with a lazily-allocated gradient buffer.
///
/// # Examples
///
/// ```
/// use patdnn_nn::layer::Param;
/// use patdnn_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::zeros(&[2, 2]));
/// p.grad_mut().data_mut()[0] = 1.0;
/// assert_eq!(p.grad().unwrap().data()[0], 1.0);
/// p.zero_grad();
/// assert_eq!(p.grad().unwrap().data()[0], 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Param {
    /// The current value of the parameter.
    pub value: Tensor,
    grad: Option<Tensor>,
    /// Whether weight decay applies (disabled for biases and BN scales).
    pub decay: bool,
}

impl Param {
    /// Wraps a value with weight decay enabled.
    pub fn new(value: Tensor) -> Self {
        Param {
            value,
            grad: None,
            decay: true,
        }
    }

    /// Wraps a value with weight decay disabled (biases, BN parameters).
    pub fn new_no_decay(value: Tensor) -> Self {
        Param {
            value,
            grad: None,
            decay: false,
        }
    }

    /// The gradient, if a backward pass has produced one.
    pub fn grad(&self) -> Option<&Tensor> {
        self.grad.as_ref()
    }

    /// Mutable gradient, allocated as zeros on first use.
    pub fn grad_mut(&mut self) -> &mut Tensor {
        if self.grad.is_none() {
            self.grad = Some(Tensor::zeros(self.value.shape()));
        }
        self.grad.as_mut().expect("just allocated")
    }

    /// Resets the gradient to zero (keeps the allocation).
    pub fn zero_grad(&mut self) {
        if let Some(g) = &mut self.grad {
            g.map_inplace(|_| 0.0);
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Returns `true` if the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A differentiable network layer.
///
/// Layers own their parameters and cache whatever they need during a
/// [`Mode::Train`] forward pass to compute `backward` later. `backward`
/// consumes the cache, accumulates parameter gradients, and returns the
/// gradient with respect to the layer input.
pub trait Layer {
    /// A human-readable identifier used in diagnostics and specs.
    fn name(&self) -> &str;

    /// Runs the layer on `input`.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Propagates `grad_out` backwards; returns the input gradient.
    ///
    /// # Panics
    ///
    /// Implementations panic if called without a preceding
    /// [`Mode::Train`] forward pass.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every trainable parameter in a stable order.
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    /// Visits every standard convolution layer (depth-first), giving the
    /// pruning stage in-place access to filter weights.
    fn visit_convs(&mut self, _f: &mut dyn FnMut(&mut crate::conv::Conv2d)) {}

    /// Appends this layer's inference-time export records (weights plus
    /// geometry) to `out`; see [`crate::export`]. The default marks the
    /// layer as [`crate::export::LayerExport::Opaque`] (depthwise
    /// convolutions, custom layers), which export consumers must reject —
    /// layers override it to describe themselves.
    fn export_ops(&self, out: &mut Vec<crate::export::LayerExport>) {
        out.push(crate::export::LayerExport::Opaque {
            name: self.name().to_owned(),
        });
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Zeroes all parameter gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grad_is_lazy() {
        let p = Param::new(Tensor::zeros(&[4]));
        assert!(p.grad().is_none());
    }

    #[test]
    fn grad_mut_allocates_matching_shape() {
        let mut p = Param::new(Tensor::zeros(&[2, 3]));
        assert_eq!(p.grad_mut().shape(), &[2, 3]);
    }

    #[test]
    fn decay_flags() {
        assert!(Param::new(Tensor::zeros(&[1])).decay);
        assert!(!Param::new_no_decay(Tensor::zeros(&[1])).decay);
    }
}
