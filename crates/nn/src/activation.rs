//! Activation layers.

use patdnn_tensor::Tensor;

use crate::layer::{Layer, Mode};

/// Rectified linear unit: `max(0, x)`.
pub struct Relu {
    name: String,
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new(name: &str) -> Self {
        Relu {
            name: name.to_owned(),
            mask: None,
        }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
        }
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("relu backward without forward");
        assert_eq!(mask.len(), grad_out.len(), "relu grad length mismatch");
        let mut g = grad_out.clone();
        for (v, keep) in g.data_mut().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        g
    }

    fn export_ops(&self, out: &mut Vec<crate::export::LayerExport>) {
        out.push(crate::export::LayerExport::Relu {
            name: self.name.clone(),
        });
    }
}

/// ReLU capped at 6, as used by MobileNet-V2.
pub struct Relu6 {
    name: String,
    mask: Option<Vec<bool>>,
}

impl Relu6 {
    /// Creates a ReLU6 layer.
    pub fn new(name: &str) -> Self {
        Relu6 {
            name: name.to_owned(),
            mask: None,
        }
    }
}

impl Layer for Relu6 {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            self.mask = Some(input.data().iter().map(|&x| x > 0.0 && x < 6.0).collect());
        }
        input.map(|x| x.clamp(0.0, 6.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("relu6 backward without forward");
        let mut g = grad_out.clone();
        for (v, keep) in g.data_mut().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        g
    }

    fn export_ops(&self, out: &mut Vec<crate::export::LayerExport>) {
        out.push(crate::export::LayerExport::Relu6 {
            name: self.name.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new("r");
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let y = r.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_gradient_masks() {
        let mut r = Relu::new("r");
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.5, 2.0, -3.0]).unwrap();
        r.forward(&x, Mode::Train);
        let g = r.backward(&Tensor::filled(&[4], 1.0));
        assert_eq!(g.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn relu6_saturates_both_sides() {
        let mut r = Relu6::new("r6");
        let x = Tensor::from_vec(&[3], vec![-1.0, 3.0, 9.0]).unwrap();
        let y = r.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[0.0, 3.0, 6.0]);
        let g = r.backward(&Tensor::filled(&[3], 1.0));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0]);
    }
}
