//! Softmax cross-entropy loss.

use patdnn_tensor::Tensor;

/// Computes mean softmax cross-entropy and its gradient w.r.t. the logits.
///
/// `logits` is `[batch, classes]`; `targets` holds one class index per
/// batch row. Returns `(mean_loss, grad_logits)`.
///
/// # Panics
///
/// Panics if `targets.len()` differs from the batch size or any target is
/// out of range.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().len(), 2, "logits must be [batch, classes]");
    let batch = logits.shape()[0];
    let classes = logits.shape()[1];
    assert_eq!(targets.len(), batch, "one target per batch row");

    let mut grad = Tensor::zeros(logits.shape());
    let mut total_loss = 0.0f64;
    for b in 0..batch {
        let t = targets[b];
        assert!(t < classes, "target {t} out of range for {classes} classes");
        let row = &logits.data()[b * classes..(b + 1) * classes];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f64> = row.iter().map(|&x| ((x - max) as f64).exp()).collect();
        let sum: f64 = exps.iter().sum();
        let log_sum = sum.ln();
        total_loss += log_sum - (row[t] - max) as f64;
        let grow = &mut grad.data_mut()[b * classes..(b + 1) * classes];
        for (c, g) in grow.iter_mut().enumerate() {
            let p = (exps[c] / sum) as f32;
            *g = (p - if c == t { 1.0 } else { 0.0 }) / batch as f32;
        }
    }
    ((total_loss / batch as f64) as f32, grad)
}

/// Softmax probabilities of a logit matrix, row by row.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().len(), 2, "logits must be [batch, classes]");
    let classes = logits.shape()[1];
    let mut out = logits.clone();
    for row in out.data_mut().chunks_mut(classes) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros(&[1, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[2]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 2]);
        for b in 0..2 {
            let s: f32 = grad.data()[b * 3..(b + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6, "row {b} grad sum {s}");
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.5, -0.2, 1.0, 0.1, 0.9, -0.3]).unwrap();
        let targets = [2usize, 1];
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let (loss_p, _) = softmax_cross_entropy(&lp, &targets);
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (loss_m, _) = softmax_cross_entropy(&lm, &targets);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-3,
                "logit {i}: numeric {numeric} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn confident_correct_prediction_has_small_loss() {
        let logits = Tensor::from_vec(&[1, 3], vec![10.0, -10.0, -10.0]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-4, "loss {loss}");
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0]).unwrap();
        let p = softmax(&logits);
        for b in 0..2 {
            let row = &p.data()[b * 3..(b + 1) * 3];
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
        // Monotone: higher logit -> higher probability.
        assert!(p.data()[2] > p.data()[1] && p.data()[1] > p.data()[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        let logits = Tensor::zeros(&[1, 2]);
        softmax_cross_entropy(&logits, &[5]);
    }
}
