//! Inference-time weight export.
//!
//! Trained networks are built from boxed [`Layer`] trait objects, which
//! the compiler and serving stages cannot introspect directly. The
//! [`Layer::export_ops`] hook flattens a network into a neutral list of
//! [`LayerExport`] records — weights, folded batch-norm parameters, and
//! layer geometry — that `patdnn-serve` converts into a compiler graph
//! and compiles into a model artifact. Exporting reads the *current*
//! weights, so a network pruned in place (e.g. by the ADMM stage) exports
//! its pruned weights without retraining.

use patdnn_tensor::Tensor;

use crate::layer::Layer;
use crate::network::Sequential;

/// One exported layer: everything inference needs, nothing training
/// needs (no gradients, no caches, no running-statistic updates).
#[derive(Debug, Clone)]
pub enum LayerExport {
    /// Standard convolution with OIHW weights.
    Conv {
        /// Layer name.
        name: String,
        /// Output channels.
        out_c: usize,
        /// Input channels.
        in_c: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
        /// Weights, shape `[out_c, in_c, kernel, kernel]`.
        weights: Tensor,
        /// Per-filter bias.
        bias: Vec<f32>,
    },
    /// Batch normalization, folded to its inference-time affine form
    /// `y = scale * x + shift` using the running statistics.
    BatchNorm {
        /// Layer name.
        name: String,
        /// Per-channel scale.
        scale: Vec<f32>,
        /// Per-channel shift.
        shift: Vec<f32>,
    },
    /// ReLU activation.
    Relu {
        /// Layer name.
        name: String,
    },
    /// ReLU capped at 6 (MobileNet-V2).
    Relu6 {
        /// Layer name.
        name: String,
    },
    /// Max pooling.
    MaxPool {
        /// Layer name.
        name: String,
        /// Window size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
    },
    /// Global average pooling.
    GlobalAvgPool {
        /// Layer name.
        name: String,
    },
    /// Flatten to `[batch, features]`.
    Flatten {
        /// Layer name.
        name: String,
    },
    /// Fully-connected layer with `[out_f, in_f]` weights.
    Linear {
        /// Layer name.
        name: String,
        /// Weights, shape `[out_f, in_f]`.
        weights: Tensor,
        /// Per-output bias.
        bias: Vec<f32>,
    },
    /// A residual block: `y = main(x) + shortcut(x)`, with an identity
    /// skip when `shortcut` is `None`. Branches are nested export lists,
    /// so arbitrary block depths flatten structurally instead of opaquely.
    Residual {
        /// Block name.
        name: String,
        /// Main-path layers in execution order.
        main: Vec<LayerExport>,
        /// Projection-shortcut layers, or `None` for an identity skip.
        shortcut: Option<Vec<LayerExport>>,
    },
    /// A layer kind the export path does not understand (depthwise
    /// convolutions, custom layers). Consumers must reject it.
    Opaque {
        /// Layer name.
        name: String,
    },
}

impl LayerExport {
    /// The exported layer's name.
    pub fn name(&self) -> &str {
        match self {
            LayerExport::Conv { name, .. }
            | LayerExport::BatchNorm { name, .. }
            | LayerExport::Relu { name }
            | LayerExport::Relu6 { name }
            | LayerExport::MaxPool { name, .. }
            | LayerExport::GlobalAvgPool { name }
            | LayerExport::Flatten { name }
            | LayerExport::Linear { name, .. }
            | LayerExport::Residual { name, .. }
            | LayerExport::Opaque { name } => name,
        }
    }

    /// Short kind label for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            LayerExport::Conv { .. } => "conv",
            LayerExport::BatchNorm { .. } => "batchnorm",
            LayerExport::Relu { .. } => "relu",
            LayerExport::Relu6 { .. } => "relu6",
            LayerExport::MaxPool { .. } => "maxpool",
            LayerExport::GlobalAvgPool { .. } => "gap",
            LayerExport::Flatten { .. } => "flatten",
            LayerExport::Linear { .. } => "fc",
            LayerExport::Residual { .. } => "residual",
            LayerExport::Opaque { .. } => "opaque",
        }
    }
}

/// Flattens a network into its exported layer list.
pub fn export_network(net: &Sequential) -> Vec<LayerExport> {
    let mut out = Vec::new();
    net.export_ops(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::small_cnn;
    use crate::prelude::*;
    use patdnn_tensor::rng::Rng;

    #[test]
    fn small_cnn_exports_every_layer_in_order() {
        let mut rng = Rng::seed_from(1);
        let net = small_cnn(3, 8, 4, &mut rng);
        let ops = export_network(&net);
        let kinds: Vec<&str> = ops.iter().map(LayerExport::kind).collect();
        assert_eq!(
            kinds,
            vec!["conv", "relu", "maxpool", "conv", "relu", "maxpool", "flatten", "fc"]
        );
        let LayerExport::Conv {
            out_c,
            in_c,
            kernel,
            weights,
            bias,
            ..
        } = &ops[0]
        else {
            panic!("first export is the conv");
        };
        assert_eq!((*out_c, *in_c, *kernel), (16, 3, 3));
        assert_eq!(weights.shape(), &[16, 3, 3, 3]);
        assert_eq!(bias.len(), 16);
    }

    #[test]
    fn batchnorm_exports_folded_running_stats() {
        let mut net = Sequential::new("n");
        net.push(BatchNorm2d::new("bn", 4));
        let ops = export_network(&net);
        let LayerExport::BatchNorm { scale, shift, .. } = &ops[0] else {
            panic!("bn export");
        };
        // Fresh BN: unit scale (up to eps), zero shift.
        assert!(scale.iter().all(|&s| (s - 1.0).abs() < 1e-2));
        assert!(shift.iter().all(|&s| s.abs() < 1e-6));
    }

    #[test]
    fn residual_blocks_export_structured_branches() {
        let mut net = Sequential::new("n");
        let mut rng = Rng::seed_from(2);
        let mut main = Sequential::new("main");
        main.push(Conv2d::new("c", 3, 3, 3, 1, 1, &mut rng));
        net.push(Residual::identity("res", main));
        let ops = export_network(&net);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].kind(), "residual");
        assert_eq!(ops[0].name(), "res");
        let LayerExport::Residual { main, shortcut, .. } = &ops[0] else {
            panic!("residual export");
        };
        assert_eq!(main.len(), 1);
        assert_eq!(main[0].kind(), "conv");
        assert!(shortcut.is_none(), "identity skip exports no shortcut");
    }

    #[test]
    fn projected_residual_exports_both_branches() {
        let mut rng = Rng::seed_from(4);
        let mut main = Sequential::new("main");
        main.push(Conv2d::new("c1", 8, 4, 3, 2, 1, &mut rng));
        let mut short = Sequential::new("short");
        short.push(Conv2d::new("proj", 8, 4, 1, 2, 0, &mut rng));
        let mut net = Sequential::new("n");
        net.push(Residual::projected("res", main, short));
        let ops = export_network(&net);
        let LayerExport::Residual { main, shortcut, .. } = &ops[0] else {
            panic!("residual export");
        };
        assert_eq!(main[0].kind(), "conv");
        let shortcut = shortcut.as_ref().expect("projection shortcut exported");
        assert_eq!(shortcut.len(), 1);
        assert_eq!(shortcut[0].name(), "proj");
    }

    #[test]
    fn export_reflects_in_place_pruning() {
        let mut rng = Rng::seed_from(3);
        let mut net = Sequential::new("n");
        net.push(Conv2d::new("c", 4, 3, 3, 1, 1, &mut rng));
        net.visit_convs(&mut |conv| conv.weight.value.map_inplace(|_| 0.0));
        let ops = export_network(&net);
        let LayerExport::Conv { weights, .. } = &ops[0] else {
            panic!("conv export");
        };
        assert_eq!(weights.count_nonzero(), 0);
    }
}
