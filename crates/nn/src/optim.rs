//! Optimizers: SGD with momentum and Adam.
//!
//! The paper solves ADMM subproblem 1 "by stochastic gradient descent
//! (e.g., the ADAM algorithm)" (§4.2); both are provided.

use patdnn_tensor::Tensor;

use crate::layer::Layer;

/// A gradient-based parameter updater.
///
/// Optimizers keep per-parameter state (momentum/moment buffers) keyed by
/// the stable visit order of [`Layer::visit_params`].
pub trait Optimizer {
    /// Applies one update step using the gradients currently stored in the
    /// network's parameters.
    fn step(&mut self, net: &mut dyn Layer);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and weight decay.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut dyn Layer) {
        let mut idx = 0;
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        net.visit_params(&mut |p| {
            if velocity.len() == idx {
                velocity.push(Tensor::zeros(p.value.shape()));
            }
            let v = &mut velocity[idx];
            idx += 1;
            let Some(grad) = p.grad() else { return };
            let gsnap: Vec<f32> = grad.data().to_vec();
            let decay = if p.decay { wd } else { 0.0 };
            for i in 0..p.value.len() {
                let g = gsnap[i] + decay * p.value.data()[i];
                let vi = &mut v.data_mut()[i];
                *vi = momentum * *vi + g;
                p.value.data_mut()[i] -= lr * *vi;
            }
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba), the solver the paper uses for ADMM
/// subproblem 1.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u32,
    moments: Vec<(Tensor, Tensor)>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas `(0.9, 0.999)`.
    pub fn new(lr: f32) -> Self {
        Adam::with_config(lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Creates an Adam optimizer with explicit hyperparameters.
    pub fn with_config(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            moments: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut dyn Layer) {
        self.t += 1;
        let (b1, b2) = (self.beta1, self.beta2);
        let bias1 = 1.0 - b1.powi(self.t as i32);
        let bias2 = 1.0 - b2.powi(self.t as i32);
        let lr = self.lr;
        let eps = self.eps;
        let wd = self.weight_decay;
        let moments = &mut self.moments;
        let mut idx = 0;
        net.visit_params(&mut |p| {
            if moments.len() == idx {
                moments.push((
                    Tensor::zeros(p.value.shape()),
                    Tensor::zeros(p.value.shape()),
                ));
            }
            let (m, v) = &mut moments[idx];
            idx += 1;
            let Some(grad) = p.grad() else { return };
            let gsnap: Vec<f32> = grad.data().to_vec();
            let decay = if p.decay { wd } else { 0.0 };
            for i in 0..p.value.len() {
                let g = gsnap[i] + decay * p.value.data()[i];
                let mi = &mut m.data_mut()[i];
                *mi = b1 * *mi + (1.0 - b1) * g;
                let vi = &mut v.data_mut()[i];
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let mhat = *mi / bias1;
                let vhat = *vi / bias2;
                p.value.data_mut()[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Mode, Param};
    use patdnn_tensor::rng::Rng;

    /// A one-parameter quadratic "layer" for optimizer convergence tests:
    /// loss = 0.5 * ||w - target||².
    struct Quadratic {
        w: Param,
        target: Tensor,
    }

    impl Quadratic {
        fn loss_and_grad(&mut self) -> f32 {
            let diff = self
                .w
                .value
                .zip_map(&self.target, |a, b| a - b)
                .expect("same shape");
            let loss = 0.5 * diff.dot(&diff);
            self.w.zero_grad();
            self.w.grad_mut().axpy(1.0, &diff);
            loss
        }
    }

    impl Layer for Quadratic {
        fn name(&self) -> &str {
            "quadratic"
        }
        fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
            input.clone()
        }
        fn backward(&mut self, grad_out: &Tensor) -> Tensor {
            grad_out.clone()
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.w);
        }
    }

    fn quadratic() -> Quadratic {
        let mut rng = Rng::seed_from(6);
        Quadratic {
            w: Param::new(Tensor::randn(&[8], &mut rng)),
            target: Tensor::randn(&[8], &mut rng),
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut q = quadratic();
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let first = q.loss_and_grad();
        for _ in 0..200 {
            q.loss_and_grad();
            opt.step(&mut q);
        }
        let last = q.loss_and_grad();
        assert!(last < first * 1e-4, "first {first}, last {last}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut q = quadratic();
        let mut opt = Adam::new(0.05);
        let first = q.loss_and_grad();
        for _ in 0..400 {
            q.loss_and_grad();
            opt.step(&mut q);
        }
        let last = q.loss_and_grad();
        assert!(last < first * 1e-3, "first {first}, last {last}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut q = quadratic();
        q.target.map_inplace(|_| 0.0);
        // Pure decay: gradient of data term is w itself here, so decay adds.
        let mut opt = Sgd::new(0.1, 0.0, 0.1);
        let norm0 = q.w.value.l2_norm();
        for _ in 0..50 {
            q.loss_and_grad();
            opt.step(&mut q);
        }
        assert!(q.w.value.l2_norm() < norm0 * 0.1);
    }

    #[test]
    fn lr_accessors() {
        let mut opt = Adam::new(0.01);
        assert!((opt.learning_rate() - 0.01).abs() < 1e-9);
        opt.set_learning_rate(0.002);
        assert!((opt.learning_rate() - 0.002).abs() < 1e-9);
    }
}
