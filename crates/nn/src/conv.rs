//! Convolution layers with full backpropagation.

use patdnn_tensor::gemm::{gemm_at, gemm_bt};
use patdnn_tensor::im2col::{col2im, col_cols, col_rows, im2col};
use patdnn_tensor::rng::Rng;
use patdnn_tensor::{Conv2dGeometry, Tensor};

use crate::layer::{Layer, Mode, Param};

/// Standard 2-D convolution (OIHW weights, NCHW activations).
///
/// Forward and backward are im2col-based; weights are Kaiming-initialized.
///
/// # Examples
///
/// ```
/// use patdnn_nn::prelude::*;
/// use patdnn_tensor::{rng::Rng, Tensor};
///
/// let mut rng = Rng::seed_from(1);
/// let mut conv = Conv2d::new("c1", 8, 3, 3, 1, 1, &mut rng);
/// let x = Tensor::randn(&[1, 3, 16, 16], &mut rng);
/// assert_eq!(conv.forward(&x, Mode::Eval).shape(), &[1, 8, 16, 16]);
/// ```
pub struct Conv2d {
    name: String,
    out_channels: usize,
    in_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    /// Filter weights, shape `[out_c, in_c, k, k]`.
    pub weight: Param,
    /// Per-filter bias, shape `[out_c]`.
    pub bias: Param,
    cached_input: Option<Tensor>,
    cached_geo: Option<Conv2dGeometry>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal weights and zero bias.
    pub fn new(
        name: &str,
        out_channels: usize,
        in_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut Rng,
    ) -> Self {
        let fan_in = (in_channels * kernel * kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        Conv2d {
            name: name.to_owned(),
            out_channels,
            in_channels,
            kernel,
            stride,
            pad,
            weight: Param::new(Tensor::randn_std(
                &[out_channels, in_channels, kernel, kernel],
                std,
                rng,
            )),
            bias: Param::new_no_decay(Tensor::zeros(&[out_channels])),
            cached_input: None,
            cached_geo: None,
        }
    }

    /// Geometry for a given input height/width.
    pub fn geometry(&self, in_h: usize, in_w: usize) -> Conv2dGeometry {
        Conv2dGeometry::new(
            self.out_channels,
            self.in_channels,
            self.kernel,
            self.kernel,
            in_h,
            in_w,
            self.stride,
            self.pad,
        )
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Square kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padding.
    pub fn pad(&self) -> usize {
        self.pad
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let s = input.shape4();
        assert_eq!(
            s.c, self.in_channels,
            "conv {}: channel mismatch",
            self.name
        );
        let geo = self.geometry(s.h, s.w);
        let out = patdnn_tensor::im2col::conv2d_im2col(
            input,
            &self.weight.value,
            Some(self.bias.value.data()),
            &geo,
        );
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
            self.cached_geo = Some(geo);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("conv backward without train-mode forward");
        let geo = self.cached_geo.take().expect("geometry cached with input");
        let batch = input.shape4().n;
        let rows = col_rows(&geo);
        let ncols = col_cols(&geo);
        let in_img = geo.in_channels * geo.in_h * geo.in_w;
        let out_img = geo.out_channels * ncols;

        let mut dinput = Tensor::zeros(input.shape());
        let mut cols = vec![0.0f32; rows * ncols];
        let mut dcols = vec![0.0f32; rows * ncols];

        // Accumulate weight/bias gradients across the batch.
        {
            let dw = self.weight.grad_mut();
            let dwd = dw.data_mut();
            for n in 0..batch {
                let gout = &grad_out.data()[n * out_img..(n + 1) * out_img];
                im2col(&input.data()[n * in_img..(n + 1) * in_img], &geo, &mut cols);
                // dW (oc x rows) += gOut (oc x ncols) * colsᵀ (ncols x rows)
                gemm_bt(geo.out_channels, rows, ncols, gout, &cols, dwd);
            }
        }
        {
            let db = self.bias.grad_mut();
            let dbd = db.data_mut();
            for n in 0..batch {
                let gout = &grad_out.data()[n * out_img..(n + 1) * out_img];
                for oc in 0..geo.out_channels {
                    dbd[oc] += gout[oc * ncols..(oc + 1) * ncols].iter().sum::<f32>();
                }
            }
        }

        for n in 0..batch {
            let gout = &grad_out.data()[n * out_img..(n + 1) * out_img];
            dcols.iter_mut().for_each(|v| *v = 0.0);
            // dcols (rows x ncols) = Wᵀ (rows x oc) * gOut (oc x ncols)
            gemm_at(
                rows,
                ncols,
                geo.out_channels,
                self.weight.value.data(),
                gout,
                &mut dcols,
            );
            col2im(
                &dcols,
                &geo,
                &mut dinput.data_mut()[n * in_img..(n + 1) * in_img],
            );
        }
        dinput
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn visit_convs(&mut self, f: &mut dyn FnMut(&mut Conv2d)) {
        f(self);
    }

    fn export_ops(&self, out: &mut Vec<crate::export::LayerExport>) {
        out.push(crate::export::LayerExport::Conv {
            name: self.name.clone(),
            out_c: self.out_channels,
            in_c: self.in_channels,
            kernel: self.kernel,
            stride: self.stride,
            pad: self.pad,
            weights: self.weight.value.clone(),
            bias: self.bias.value.data().to_vec(),
        });
    }
}

/// Depthwise 2-D convolution (one kernel per channel), as used by
/// MobileNet-V2's inverted residual blocks.
pub struct DepthwiseConv2d {
    name: String,
    channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    /// Weights, shape `[channels, 1, k, k]`.
    pub weight: Param,
    /// Per-channel bias.
    pub bias: Param,
    cached_input: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution with Kaiming-normal weights.
    pub fn new(
        name: &str,
        channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut Rng,
    ) -> Self {
        let std = (2.0 / (kernel * kernel) as f32).sqrt();
        DepthwiseConv2d {
            name: name.to_owned(),
            channels,
            kernel,
            stride,
            pad,
            weight: Param::new(Tensor::randn_std(&[channels, 1, kernel, kernel], std, rng)),
            bias: Param::new_no_decay(Tensor::zeros(&[channels])),
            cached_input: None,
        }
    }

    fn out_dims(&self, in_h: usize, in_w: usize) -> (usize, usize) {
        (
            patdnn_tensor::conv_out_dim(in_h, self.kernel, self.stride, self.pad),
            patdnn_tensor::conv_out_dim(in_w, self.kernel, self.stride, self.pad),
        )
    }
}

impl Layer for DepthwiseConv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let s = input.shape4();
        assert_eq!(s.c, self.channels, "dwconv {}: channel mismatch", self.name);
        let (out_h, out_w) = self.out_dims(s.h, s.w);
        let mut out = Tensor::zeros(&[s.n, s.c, out_h, out_w]);
        let k = self.kernel;
        let wd = self.weight.value.data();
        let bd = self.bias.value.data();
        let in_data = input.data();
        let out_data = out.data_mut();
        for n in 0..s.n {
            for c in 0..s.c {
                let ibase = (n * s.c + c) * s.h * s.w;
                let obase = (n * s.c + c) * out_h * out_w;
                let wbase = c * k * k;
                for oh in 0..out_h {
                    for ow in 0..out_w {
                        let mut acc = bd[c];
                        for kh in 0..k {
                            let ih = (oh * self.stride + kh) as isize - self.pad as isize;
                            if ih < 0 || ih >= s.h as isize {
                                continue;
                            }
                            for kw in 0..k {
                                let iw = (ow * self.stride + kw) as isize - self.pad as isize;
                                if iw < 0 || iw >= s.w as isize {
                                    continue;
                                }
                                acc += in_data[ibase + ih as usize * s.w + iw as usize]
                                    * wd[wbase + kh * k + kw];
                            }
                        }
                        out_data[obase + oh * out_w + ow] = acc;
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("dwconv backward without train-mode forward");
        let s = input.shape4();
        let (out_h, out_w) = self.out_dims(s.h, s.w);
        let k = self.kernel;
        let mut dinput = Tensor::zeros(input.shape());
        {
            let go = grad_out.data();
            let ind = input.data();
            let dw = self.weight.grad_mut().data_mut();
            for n in 0..s.n {
                for c in 0..s.c {
                    let ibase = (n * s.c + c) * s.h * s.w;
                    let obase = (n * s.c + c) * out_h * out_w;
                    let wbase = c * k * k;
                    for oh in 0..out_h {
                        for ow in 0..out_w {
                            let g = go[obase + oh * out_w + ow];
                            if g == 0.0 {
                                continue;
                            }
                            for kh in 0..k {
                                let ih = (oh * self.stride + kh) as isize - self.pad as isize;
                                if ih < 0 || ih >= s.h as isize {
                                    continue;
                                }
                                for kw in 0..k {
                                    let iw = (ow * self.stride + kw) as isize - self.pad as isize;
                                    if iw < 0 || iw >= s.w as isize {
                                        continue;
                                    }
                                    dw[wbase + kh * k + kw] +=
                                        g * ind[ibase + ih as usize * s.w + iw as usize];
                                }
                            }
                        }
                    }
                }
            }
        }
        {
            let go = grad_out.data();
            let db = self.bias.grad_mut().data_mut();
            for n in 0..s.n {
                for c in 0..s.c {
                    let obase = (n * s.c + c) * out_h * out_w;
                    db[c] += go[obase..obase + out_h * out_w].iter().sum::<f32>();
                }
            }
        }
        {
            let go = grad_out.data();
            let wd = self.weight.value.data();
            let di = dinput.data_mut();
            for n in 0..s.n {
                for c in 0..s.c {
                    let ibase = (n * s.c + c) * s.h * s.w;
                    let obase = (n * s.c + c) * out_h * out_w;
                    let wbase = c * k * k;
                    for oh in 0..out_h {
                        for ow in 0..out_w {
                            let g = go[obase + oh * out_w + ow];
                            if g == 0.0 {
                                continue;
                            }
                            for kh in 0..k {
                                let ih = (oh * self.stride + kh) as isize - self.pad as isize;
                                if ih < 0 || ih >= s.h as isize {
                                    continue;
                                }
                                for kw in 0..k {
                                    let iw = (ow * self.stride + kw) as isize - self.pad as isize;
                                    if iw < 0 || iw >= s.w as isize {
                                        continue;
                                    }
                                    di[ibase + ih as usize * s.w + iw as usize] +=
                                        g * wd[wbase + kh * k + kw];
                                }
                            }
                        }
                    }
                }
            }
        }
        dinput
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks conv gradients with central differences.
    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(7);
        let mut conv = Conv2d::new("c", 2, 2, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        // Loss = sum(forward(x)); dLoss/dOut = ones.
        let out = conv.forward(&x, Mode::Train);
        let ones = Tensor::filled(out.shape(), 1.0);
        let dx = conv.backward(&ones);

        let eps = 1e-3;
        // Check a few weight entries.
        for &wi in &[0usize, 5, 17, 35] {
            let orig = conv.weight.value.data()[wi];
            conv.weight.value.data_mut()[wi] = orig + eps;
            let lp = conv.forward(&x, Mode::Eval).sum();
            conv.weight.value.data_mut()[wi] = orig - eps;
            let lm = conv.forward(&x, Mode::Eval).sum();
            conv.weight.value.data_mut()[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = conv.weight.grad().unwrap().data()[wi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "weight {wi}: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Check a few input entries.
        let mut x2 = x.clone();
        for &ii in &[0usize, 12, 24, 49] {
            let orig = x2.data()[ii];
            x2.data_mut()[ii] = orig + eps;
            let lp = conv.forward(&x2, Mode::Eval).sum();
            x2.data_mut()[ii] = orig - eps;
            let lm = conv.forward(&x2, Mode::Eval).sum();
            x2.data_mut()[ii] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.data()[ii];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "input {ii}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn conv_bias_gradient_counts_outputs() {
        let mut rng = Rng::seed_from(8);
        let mut conv = Conv2d::new("c", 3, 1, 1, 1, 0, &mut rng);
        let x = Tensor::randn(&[2, 1, 4, 4], &mut rng);
        let out = conv.forward(&x, Mode::Train);
        let ones = Tensor::filled(out.shape(), 1.0);
        conv.backward(&ones);
        // d(sum)/d(bias_c) = batch * out_h * out_w = 2 * 16.
        for &g in conv.bias.grad().unwrap().data() {
            assert!((g - 32.0).abs() < 1e-4, "bias grad {g}");
        }
    }

    #[test]
    fn depthwise_matches_grouped_reference() {
        let mut rng = Rng::seed_from(9);
        let mut dw = DepthwiseConv2d::new("dw", 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 3, 6, 6], &mut rng);
        let out = dw.forward(&x, Mode::Eval);
        // Compare against per-channel dense conv.
        for c in 0..3 {
            let geo = Conv2dGeometry::new(1, 1, 3, 3, 6, 6, 1, 1);
            let xin =
                Tensor::from_vec(&[1, 1, 6, 6], x.data()[c * 36..(c + 1) * 36].to_vec()).unwrap();
            let w = Tensor::from_vec(
                &[1, 1, 3, 3],
                dw.weight.value.data()[c * 9..(c + 1) * 9].to_vec(),
            )
            .unwrap();
            let r =
                patdnn_tensor::conv2d_ref(&xin, &w, Some(&dw.bias.value.data()[c..c + 1]), &geo);
            for (i, (&a, &b)) in r
                .data()
                .iter()
                .zip(&out.data()[c * 36..(c + 1) * 36])
                .enumerate()
            {
                assert!((a - b).abs() < 1e-4, "c={c} i={i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn depthwise_gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(10);
        let mut dw = DepthwiseConv2d::new("dw", 2, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let out = dw.forward(&x, Mode::Train);
        let ones = Tensor::filled(out.shape(), 1.0);
        let dx = dw.backward(&ones);
        let eps = 1e-3;
        for &wi in &[0usize, 8, 9, 17] {
            let orig = dw.weight.value.data()[wi];
            dw.weight.value.data_mut()[wi] = orig + eps;
            let lp = dw.forward(&x, Mode::Eval).sum();
            dw.weight.value.data_mut()[wi] = orig - eps;
            let lm = dw.forward(&x, Mode::Eval).sum();
            dw.weight.value.data_mut()[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dw.weight.grad().unwrap().data()[wi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "weight {wi}: {numeric} vs {analytic}"
            );
        }
        let mut x2 = x.clone();
        for &ii in &[3usize, 20, 44] {
            let orig = x2.data()[ii];
            x2.data_mut()[ii] = orig + eps;
            let lp = dw.forward(&x2, Mode::Eval).sum();
            x2.data_mut()[ii] = orig - eps;
            let lm = dw.forward(&x2, Mode::Eval).sum();
            x2.data_mut()[ii] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - dx.data()[ii]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "input {ii}"
            );
        }
    }

    #[test]
    fn param_count_is_weights_plus_bias() {
        let mut rng = Rng::seed_from(11);
        let mut conv = Conv2d::new("c", 8, 4, 3, 1, 1, &mut rng);
        assert_eq!(conv.param_count(), 8 * 4 * 9 + 8);
    }
}
