//! Model inventories of the paper's three DNNs plus trainable scaled-down
//! variants.
//!
//! Two kinds of artifacts live here:
//!
//! 1. **Specs** ([`ModelSpec`]) — exact layer-by-layer inventories of
//!    VGG-16, ResNet-50, and MobileNet-V2 for both ImageNet and CIFAR-10
//!    input shapes. Specs carry no weights; they drive Table 5 (model
//!    characteristics), Table 6 (VGG unique CONV shapes) and every
//!    per-layer performance workload in the reproduction harness.
//! 2. **Trainable builders** ([`small_cnn`], [`vgg_small`],
//!    [`resnet_small`]) — scaled-down networks used for the accuracy
//!    experiments (Tables 3, 4, 7) on synthetic data, per the
//!    substitution policy in DESIGN.md §2.

use patdnn_tensor::rng::Rng;
use patdnn_tensor::{conv_out_dim, Conv2dGeometry};

use crate::activation::Relu;
use crate::batchnorm::BatchNorm2d;
use crate::conv::Conv2d;
use crate::linear::{Flatten, Linear};
use crate::network::{Residual, Sequential};
use crate::pool::{GlobalAvgPool, MaxPool2d};

/// Which dataset's input geometry a spec is built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// 3×224×224 inputs, 1000 classes.
    ImageNet,
    /// 3×32×32 inputs, 10 classes.
    Cifar10,
}

impl DatasetKind {
    /// Input spatial size.
    pub fn input_hw(&self) -> usize {
        match self {
            DatasetKind::ImageNet => 224,
            DatasetKind::Cifar10 => 32,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        match self {
            DatasetKind::ImageNet => 1000,
            DatasetKind::Cifar10 => 10,
        }
    }

    /// Display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetKind::ImageNet => "ImageNet",
            DatasetKind::Cifar10 => "CIFAR-10",
        }
    }
}

/// A convolution layer's static description.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConvSpec {
    /// Layer name, e.g. `conv4_2` or `stage2.block1.conv3x3`.
    pub name: String,
    /// Output channels (filters).
    pub out_c: usize,
    /// Input channels (kernels per filter).
    pub in_c: usize,
    /// Kernel size (square).
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub pad: usize,
    /// Input height at this layer.
    pub in_h: usize,
    /// Input width at this layer.
    pub in_w: usize,
    /// Depthwise convolution (one kernel per channel)?
    pub depthwise: bool,
    /// Is this a residual-shortcut projection (not counted as a "CONV
    /// layer" in the paper's Table 5)?
    pub shortcut: bool,
    /// Does the conv carry a bias (false when followed by batch norm)?
    pub bias: bool,
}

impl ConvSpec {
    /// The layer's execution geometry.
    pub fn geometry(&self) -> Conv2dGeometry {
        let in_c = if self.depthwise { 1 } else { self.in_c };
        Conv2dGeometry::new(
            self.out_c,
            in_c,
            self.kernel,
            self.kernel,
            self.in_h,
            self.in_w,
            self.stride,
            self.pad,
        )
    }

    /// Number of trainable parameters.
    pub fn params(&self) -> usize {
        let in_c = if self.depthwise { 1 } else { self.in_c };
        self.out_c * in_c * self.kernel * self.kernel + if self.bias { self.out_c } else { 0 }
    }

    /// Filter shape in the paper's `[out, in, kh, kw]` notation.
    pub fn filter_shape(&self) -> String {
        let in_c = if self.depthwise { 1 } else { self.in_c };
        format!(
            "[{}, {}, {}, {}]",
            self.out_c, in_c, self.kernel, self.kernel
        )
    }
}

/// A non-convolution layer's static description (for parameter counting).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AuxSpec {
    /// Fully-connected layer `in → out` (with bias).
    Fc {
        /// Layer name.
        name: String,
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
    },
    /// Batch normalization over `c` channels (gamma + beta).
    BatchNorm {
        /// Channel count.
        c: usize,
    },
}

impl AuxSpec {
    /// Number of trainable parameters.
    pub fn params(&self) -> usize {
        match self {
            AuxSpec::Fc { in_f, out_f, .. } => in_f * out_f + out_f,
            AuxSpec::BatchNorm { c } => 2 * c,
        }
    }
}

/// A complete static model inventory.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Model name (`VGG-16`, `ResNet-50`, `MobileNet-V2`).
    pub name: String,
    /// Short name used in the paper's plots (`VGG`, `RNT`, `MBNT`).
    pub short_name: String,
    /// The dataset geometry this spec targets.
    pub dataset: DatasetKind,
    /// All convolution layers in execution order.
    pub convs: Vec<ConvSpec>,
    /// Non-conv parameterized layers.
    pub aux: Vec<AuxSpec>,
}

impl ModelSpec {
    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.convs.iter().map(ConvSpec::params).sum::<usize>()
            + self.aux.iter().map(AuxSpec::params).sum::<usize>()
    }

    /// Model size in (decimal) megabytes at 32-bit floats, as Table 5
    /// reports it.
    pub fn size_mb(&self) -> f64 {
        self.param_count() as f64 * 4.0 / 1e6
    }

    /// Number of CONV layers as the paper counts them (main path only,
    /// excluding shortcut projections).
    pub fn conv_layer_count(&self) -> usize {
        self.convs.iter().filter(|c| !c.shortcut).count()
    }

    /// Number of "layers" as Table 5 counts them: main-path convs plus
    /// fully-connected layers.
    pub fn layer_count(&self) -> usize {
        self.conv_layer_count()
            + self
                .aux
                .iter()
                .filter(|a| matches!(a, AuxSpec::Fc { .. }))
                .count()
    }

    /// Total dense multiply-accumulates across all conv layers.
    pub fn conv_macs(&self) -> usize {
        self.convs.iter().map(|c| c.geometry().macs()).sum()
    }

    /// Parameters in conv layers only (the paper's compression rates are
    /// "CONV compression rates").
    pub fn conv_params(&self) -> usize {
        self.convs.iter().map(ConvSpec::params).sum()
    }

    /// Groups identical `(filter shape, input size)` conv layers, in
    /// first-appearance order, returning `(representative, multiplicity)`.
    ///
    /// Applied to the ImageNet VGG-16 spec this yields exactly the paper's
    /// Table 6 unique layers L1–L9.
    pub fn unique_convs(&self) -> Vec<(ConvSpec, usize)> {
        let mut uniq: Vec<(ConvSpec, usize)> = Vec::new();
        for c in self.convs.iter().filter(|c| !c.shortcut) {
            if let Some(entry) = uniq.iter_mut().find(|(u, _)| {
                u.out_c == c.out_c
                    && u.in_c == c.in_c
                    && u.kernel == c.kernel
                    && u.in_h == c.in_h
                    && u.stride == c.stride
                    && u.depthwise == c.depthwise
            }) {
                entry.1 += 1;
            } else {
                uniq.push((c.clone(), 1));
            }
        }
        uniq
    }
}

fn conv(
    name: impl Into<String>,
    out_c: usize,
    in_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    in_hw: usize,
    bias: bool,
) -> ConvSpec {
    ConvSpec {
        name: name.into(),
        out_c,
        in_c,
        kernel,
        stride,
        pad,
        in_h: in_hw,
        in_w: in_hw,
        depthwise: false,
        shortcut: false,
        bias,
    }
}

/// VGG-16 (Simonyan & Zisserman) — 13 conv layers + 3 FC (ImageNet) or
/// 2 FC (CIFAR-10).
pub fn vgg16(dataset: DatasetKind) -> ModelSpec {
    // (stage, layer-in-stage, channels): classic configuration D.
    let stages: [(usize, usize); 5] = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)];
    let mut convs = Vec::new();
    let mut hw = dataset.input_hw();
    let mut in_c = 3;
    for (si, &(layers, ch)) in stages.iter().enumerate() {
        for li in 0..layers {
            convs.push(conv(
                format!("conv{}_{}", si + 1, li + 1),
                ch,
                in_c,
                3,
                1,
                1,
                hw,
                true,
            ));
            in_c = ch;
        }
        hw /= 2; // 2x2 max pool after every stage
    }
    let aux = match dataset {
        DatasetKind::ImageNet => vec![
            AuxSpec::Fc {
                name: "fc6".into(),
                in_f: 512 * hw * hw, // hw = 7 after five pools on 224
                out_f: 4096,
            },
            AuxSpec::Fc {
                name: "fc7".into(),
                in_f: 4096,
                out_f: 4096,
            },
            AuxSpec::Fc {
                name: "fc8".into(),
                in_f: 4096,
                out_f: 1000,
            },
        ],
        DatasetKind::Cifar10 => vec![
            AuxSpec::Fc {
                name: "fc6".into(),
                in_f: 512 * hw * hw, // hw = 1 after five pools on 32
                out_f: 512,
            },
            AuxSpec::Fc {
                name: "fc7".into(),
                in_f: 512,
                out_f: 10,
            },
        ],
    };
    ModelSpec {
        name: "VGG-16".into(),
        short_name: "VGG".into(),
        dataset,
        convs,
        aux,
    }
}

/// ResNet-50 (He et al.) — bottleneck blocks `[3, 4, 6, 3]`.
pub fn resnet50(dataset: DatasetKind) -> ModelSpec {
    let mut convs = Vec::new();
    let mut aux = Vec::new();
    let mut hw;
    let mut in_c;
    match dataset {
        DatasetKind::ImageNet => {
            convs.push(conv("stem", 64, 3, 7, 2, 3, 224, false));
            aux.push(AuxSpec::BatchNorm { c: 64 });
            hw = conv_out_dim(224, 7, 2, 3); // 112
            hw = conv_out_dim(hw, 3, 2, 1); // maxpool -> 56
            in_c = 64;
        }
        DatasetKind::Cifar10 => {
            convs.push(conv("stem", 64, 3, 3, 1, 1, 32, false));
            aux.push(AuxSpec::BatchNorm { c: 64 });
            hw = 32;
            in_c = 64;
        }
    }
    let stages: [(usize, usize, usize); 4] = [(64, 3, 1), (128, 4, 2), (256, 6, 2), (512, 3, 2)];
    for (si, &(width, blocks, first_stride)) in stages.iter().enumerate() {
        let out_c = width * 4;
        for b in 0..blocks {
            let stride = if b == 0 { first_stride } else { 1 };
            let prefix = format!("stage{}.block{}", si + 1, b + 1);
            convs.push(conv(
                format!("{prefix}.reduce"),
                width,
                in_c,
                1,
                1,
                0,
                hw,
                false,
            ));
            aux.push(AuxSpec::BatchNorm { c: width });
            convs.push(conv(
                format!("{prefix}.conv3x3"),
                width,
                width,
                3,
                stride,
                1,
                hw,
                false,
            ));
            aux.push(AuxSpec::BatchNorm { c: width });
            let hw_out = conv_out_dim(hw, 3, stride, 1);
            convs.push(conv(
                format!("{prefix}.expand"),
                out_c,
                width,
                1,
                1,
                0,
                hw_out,
                false,
            ));
            aux.push(AuxSpec::BatchNorm { c: out_c });
            if b == 0 {
                let mut sc = conv(
                    format!("{prefix}.shortcut"),
                    out_c,
                    in_c,
                    1,
                    stride,
                    0,
                    hw,
                    false,
                );
                sc.shortcut = true;
                convs.push(sc);
                aux.push(AuxSpec::BatchNorm { c: out_c });
            }
            hw = hw_out;
            in_c = out_c;
        }
    }
    aux.push(AuxSpec::Fc {
        name: "fc".into(),
        in_f: 2048,
        out_f: dataset.classes(),
    });
    ModelSpec {
        name: "ResNet-50".into(),
        short_name: "RNT".into(),
        dataset,
        convs,
        aux,
    }
}

/// MobileNet-V2 (Sandler et al.) — inverted residual bottlenecks.
pub fn mobilenet_v2(dataset: DatasetKind) -> ModelSpec {
    let mut convs = Vec::new();
    let mut aux = Vec::new();
    let (mut hw, stem_stride) = match dataset {
        DatasetKind::ImageNet => (224, 2),
        DatasetKind::Cifar10 => (32, 1),
    };
    convs.push(conv("stem", 32, 3, 3, stem_stride, 1, hw, false));
    aux.push(AuxSpec::BatchNorm { c: 32 });
    hw = conv_out_dim(hw, 3, stem_stride, 1);
    let mut in_c = 32;
    // (expansion t, output channels c, repeats n, first stride s)
    let cfg: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for (bi, &(t, c, n, s)) in cfg.iter().enumerate() {
        for r in 0..n {
            let stride = if r == 0 {
                // CIFAR keeps resolution through the first two stages.
                if dataset == DatasetKind::Cifar10 && bi == 1 {
                    1
                } else {
                    s
                }
            } else {
                1
            };
            let prefix = format!("bneck{}.{}", bi + 1, r + 1);
            let exp_c = in_c * t;
            if t != 1 {
                convs.push(conv(
                    format!("{prefix}.expand"),
                    exp_c,
                    in_c,
                    1,
                    1,
                    0,
                    hw,
                    false,
                ));
                aux.push(AuxSpec::BatchNorm { c: exp_c });
            }
            let mut dw = conv(
                format!("{prefix}.dw"),
                exp_c,
                exp_c,
                3,
                stride,
                1,
                hw,
                false,
            );
            dw.depthwise = true;
            convs.push(dw);
            aux.push(AuxSpec::BatchNorm { c: exp_c });
            let hw_out = conv_out_dim(hw, 3, stride, 1);
            convs.push(conv(
                format!("{prefix}.project"),
                c,
                exp_c,
                1,
                1,
                0,
                hw_out,
                false,
            ));
            aux.push(AuxSpec::BatchNorm { c });
            hw = hw_out;
            in_c = c;
        }
    }
    convs.push(conv("head", 1280, in_c, 1, 1, 0, hw, false));
    aux.push(AuxSpec::BatchNorm { c: 1280 });
    aux.push(AuxSpec::Fc {
        name: "fc".into(),
        in_f: 1280,
        out_f: dataset.classes(),
    });
    ModelSpec {
        name: "MobileNet-V2".into(),
        short_name: "MBNT".into(),
        dataset,
        convs,
        aux,
    }
}

/// The paper's Table 6: VGG-16's nine unique CONV layers named L1-L9.
///
/// Returns `(name, spec, multiplicity)` in the paper's order.
pub fn vgg_unique_layers() -> Vec<(String, ConvSpec, usize)> {
    vgg16(DatasetKind::ImageNet)
        .unique_convs()
        .into_iter()
        .enumerate()
        .map(|(i, (spec, mult))| (format!("L{}", i + 1), spec, mult))
        .collect()
}

/// A small 2-conv CNN for fast tests and the quickstart example.
pub fn small_cnn(in_c: usize, hw: usize, classes: usize, rng: &mut Rng) -> Sequential {
    let mut net = Sequential::new("small_cnn");
    net.push(Conv2d::new("conv1", 16, in_c, 3, 1, 1, rng));
    net.push(Relu::new("relu1"));
    net.push(MaxPool2d::new("pool1", 2, 2, 0));
    net.push(Conv2d::new("conv2", 32, 16, 3, 1, 1, rng));
    net.push(Relu::new("relu2"));
    net.push(MaxPool2d::new("pool2", 2, 2, 0));
    net.push(Flatten::new("flatten"));
    net.push(Linear::new("fc", classes, 32 * (hw / 4) * (hw / 4), rng));
    net
}

/// A scaled-down VGG-style network (all 3×3 convs) for the accuracy
/// experiments on 32×32 synthetic data.
pub fn vgg_small(classes: usize, rng: &mut Rng) -> Sequential {
    let mut net = Sequential::new("vgg_small");
    let mut in_c = 3;
    for (si, &ch) in [16usize, 32, 64].iter().enumerate() {
        net.push(Conv2d::new(
            &format!("conv{}_1", si + 1),
            ch,
            in_c,
            3,
            1,
            1,
            rng,
        ));
        net.push(Relu::new(&format!("relu{}_1", si + 1)));
        net.push(Conv2d::new(
            &format!("conv{}_2", si + 1),
            ch,
            ch,
            3,
            1,
            1,
            rng,
        ));
        net.push(Relu::new(&format!("relu{}_2", si + 1)));
        net.push(MaxPool2d::new(&format!("pool{}", si + 1), 2, 2, 0));
        in_c = ch;
    }
    net.push(Flatten::new("flatten"));
    net.push(Linear::new("fc1", 64, 64 * 4 * 4, rng));
    net.push(Relu::new("relu_fc"));
    net.push(Linear::new("fc2", classes, 64, rng));
    net
}

/// A scaled-down residual network (3×3 convs in blocks) for the accuracy
/// experiments on 32×32 synthetic data.
pub fn resnet_small(classes: usize, rng: &mut Rng) -> Sequential {
    let mut net = Sequential::new("resnet_small");
    net.push(Conv2d::new("stem", 16, 3, 3, 1, 1, rng));
    net.push(BatchNorm2d::new("stem_bn", 16));
    net.push(Relu::new("stem_relu"));

    // Identity block at 16 channels.
    let mut main1 = Sequential::new("block1_main");
    main1.push(Conv2d::new("block1_conv1", 16, 16, 3, 1, 1, rng));
    main1.push(BatchNorm2d::new("block1_bn1", 16));
    main1.push(Relu::new("block1_relu"));
    main1.push(Conv2d::new("block1_conv2", 16, 16, 3, 1, 1, rng));
    main1.push(BatchNorm2d::new("block1_bn2", 16));
    net.push(Residual::identity("block1", main1));
    net.push(Relu::new("block1_out_relu"));

    // Projected block to 32 channels, stride 2.
    let mut main2 = Sequential::new("block2_main");
    main2.push(Conv2d::new("block2_conv1", 32, 16, 3, 2, 1, rng));
    main2.push(BatchNorm2d::new("block2_bn1", 32));
    main2.push(Relu::new("block2_relu"));
    main2.push(Conv2d::new("block2_conv2", 32, 32, 3, 1, 1, rng));
    main2.push(BatchNorm2d::new("block2_bn2", 32));
    let mut short2 = Sequential::new("block2_short");
    short2.push(Conv2d::new("block2_proj", 32, 16, 1, 2, 0, rng));
    short2.push(BatchNorm2d::new("block2_proj_bn", 32));
    net.push(Residual::projected("block2", main2, short2));
    net.push(Relu::new("block2_out_relu"));

    net.push(GlobalAvgPool::new("gap"));
    net.push(Flatten::new("flatten"));
    net.push(Linear::new("fc", classes, 32, rng));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Mode};
    use patdnn_tensor::Tensor;

    #[test]
    fn vgg16_imagenet_matches_known_counts() {
        let spec = vgg16(DatasetKind::ImageNet);
        assert_eq!(spec.conv_layer_count(), 13);
        assert_eq!(spec.layer_count(), 16);
        // Known VGG-16 parameter count: 138,357,544.
        assert_eq!(spec.param_count(), 138_357_544);
        // Table 5 reports 553.5 MB.
        assert!((spec.size_mb() - 553.43).abs() < 0.1, "{}", spec.size_mb());
    }

    #[test]
    fn vgg16_unique_layers_match_table6() {
        let uniq = vgg_unique_layers();
        assert_eq!(uniq.len(), 9);
        let shapes: Vec<String> = uniq.iter().map(|(_, c, _)| c.filter_shape()).collect();
        assert_eq!(
            shapes,
            vec![
                "[64, 3, 3, 3]",
                "[64, 64, 3, 3]",
                "[128, 64, 3, 3]",
                "[128, 128, 3, 3]",
                "[256, 128, 3, 3]",
                "[256, 256, 3, 3]",
                "[512, 256, 3, 3]",
                "[512, 512, 3, 3]",
                "[512, 512, 3, 3]",
            ]
        );
        // L8 is at 28x28, L9 at 14x14.
        assert_eq!(uniq[7].1.in_h, 28);
        assert_eq!(uniq[8].1.in_h, 14);
        // Multiplicities sum to 13.
        let total: usize = uniq.iter().map(|(_, _, m)| m).sum();
        assert_eq!(total, 13);
    }

    #[test]
    fn resnet50_imagenet_matches_known_counts() {
        let spec = resnet50(DatasetKind::ImageNet);
        // Main-path convs: 1 stem + 16 blocks * 3 = 49; layers = 50.
        assert_eq!(spec.conv_layer_count(), 49);
        assert_eq!(spec.layer_count(), 50);
        // Known ResNet-50 parameter count: 25,557,032.
        assert_eq!(spec.param_count(), 25_557_032);
        assert!((spec.size_mb() - 102.2).abs() < 0.3, "{}", spec.size_mb());
    }

    #[test]
    fn mobilenet_v2_imagenet_matches_known_counts() {
        let spec = mobilenet_v2(DatasetKind::ImageNet);
        // 1 stem + (1*2 + 16*3) block convs + 1 head = 52 convs, 53 layers.
        assert_eq!(spec.conv_layer_count(), 52);
        assert_eq!(spec.layer_count(), 53);
        // Known MobileNet-V2 parameter count: 3,504,872.
        assert_eq!(spec.param_count(), 3_504_872);
        assert!((spec.size_mb() - 14.0).abs() < 0.3, "{}", spec.size_mb());
    }

    #[test]
    fn cifar_specs_shrink_models() {
        let vgg = vgg16(DatasetKind::Cifar10);
        assert!((vgg.size_mb() - 60.0).abs() < 2.0, "{}", vgg.size_mb());
        let rnt = resnet50(DatasetKind::Cifar10);
        assert!((rnt.size_mb() - 94.0).abs() < 2.0, "{}", rnt.size_mb());
        let mbnt = mobilenet_v2(DatasetKind::Cifar10);
        assert!((mbnt.size_mb() - 9.0).abs() < 1.0, "{}", mbnt.size_mb());
    }

    #[test]
    fn resnet50_spatial_sizes_follow_stages() {
        let spec = resnet50(DatasetKind::ImageNet);
        let l4_first = spec
            .convs
            .iter()
            .find(|c| c.name == "stage4.block1.conv3x3")
            .expect("stage4 exists");
        assert_eq!(l4_first.in_h, 14);
        let last = spec.convs.iter().rfind(|c| !c.shortcut).unwrap();
        assert_eq!(
            conv_out_dim(last.in_h, last.kernel, last.stride, last.pad),
            7
        );
    }

    #[test]
    fn geometries_chain_consistently() {
        // Output of each main-path VGG conv must feed the next (modulo pools).
        let spec = vgg16(DatasetKind::ImageNet);
        for pair in spec.convs.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert!(
                a.out_c == b.in_c,
                "{} ({}) feeds {} ({})",
                a.name,
                a.out_c,
                b.name,
                b.in_c
            );
        }
    }

    #[test]
    fn small_models_run_forward_and_backward() {
        let mut rng = Rng::seed_from(8);
        let x = Tensor::randn(&[2, 3, 32, 32], &mut rng);
        for mut net in [vgg_small(10, &mut rng), resnet_small(10, &mut rng)] {
            let y = net.forward(&x, Mode::Train);
            assert_eq!(y.shape(), &[2, 10]);
            let g = net.backward(&Tensor::filled(&[2, 10], 1.0));
            assert_eq!(g.shape(), x.shape());
        }
    }

    #[test]
    fn visit_convs_reaches_nested_blocks() {
        let mut rng = Rng::seed_from(9);
        let mut net = resnet_small(10, &mut rng);
        let mut names = Vec::new();
        net.visit_convs(&mut |c| names.push(c.name().to_owned()));
        // stem + 2 in block1 + 2 in block2 + 1 projection.
        assert_eq!(names.len(), 6);
        assert!(names.contains(&"block2_proj".to_owned()));
    }

    #[test]
    fn conv_macs_are_large_for_vgg() {
        let spec = vgg16(DatasetKind::ImageNet);
        // VGG-16 is ~15.3 GMACs over conv layers.
        let gmacs = spec.conv_macs() as f64 / 1e9;
        assert!((gmacs - 15.3).abs() < 0.5, "{gmacs}");
    }
}
