//! Network composition: sequential chains and residual blocks.

use patdnn_tensor::Tensor;

use crate::layer::{Layer, Mode, Param};

/// A chain of layers executed in order.
///
/// `Sequential` is itself a [`Layer`], so chains nest (residual blocks hold
/// sequentials for their main path and shortcut).
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new(name: &str) -> Self {
        Sequential {
            name: name.to_owned(),
            layers: Vec::new(),
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Appends a boxed layer (for dynamically-built networks).
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of direct child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the chain has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates over the direct children.
    pub fn layers(&self) -> impl Iterator<Item = &dyn Layer> {
        self.layers.iter().map(|b| b.as_ref())
    }

    /// Mutable access to direct children (used by the pruning stage to
    /// reach convolution weights in place).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }
}

impl Layer for Sequential {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_convs(&mut self, f: &mut dyn FnMut(&mut crate::conv::Conv2d)) {
        for layer in &mut self.layers {
            layer.visit_convs(f);
        }
    }

    fn export_ops(&self, out: &mut Vec<crate::export::LayerExport>) {
        for layer in &self.layers {
            layer.export_ops(out);
        }
    }
}

/// A residual block: `y = main(x) + shortcut(x)` (identity shortcut when
/// `shortcut` is `None`), as used by ResNet bottlenecks and MobileNet-V2
/// inverted residuals.
pub struct Residual {
    name: String,
    main: Sequential,
    shortcut: Option<Sequential>,
}

impl Residual {
    /// Creates a residual block with an identity shortcut.
    pub fn identity(name: &str, main: Sequential) -> Self {
        Residual {
            name: name.to_owned(),
            main,
            shortcut: None,
        }
    }

    /// Creates a residual block with a projection shortcut.
    pub fn projected(name: &str, main: Sequential, shortcut: Sequential) -> Self {
        Residual {
            name: name.to_owned(),
            main,
            shortcut: Some(shortcut),
        }
    }
}

impl Layer for Residual {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let main_out = self.main.forward(input, mode);
        let short_out = match &mut self.shortcut {
            Some(s) => s.forward(input, mode),
            None => input.clone(),
        };
        main_out
            .zip_map(&short_out, |a, b| a + b)
            .expect("residual branches must agree in shape")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = self.main.backward(grad_out);
        let g_short = match &mut self.shortcut {
            Some(s) => s.backward(grad_out),
            None => grad_out.clone(),
        };
        g.axpy(1.0, &g_short);
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_params(f);
        }
    }

    fn visit_convs(&mut self, f: &mut dyn FnMut(&mut crate::conv::Conv2d)) {
        self.main.visit_convs(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_convs(f);
        }
    }

    fn export_ops(&self, out: &mut Vec<crate::export::LayerExport>) {
        let mut main = Vec::new();
        self.main.export_ops(&mut main);
        let shortcut = self.shortcut.as_ref().map(|s| {
            let mut ops = Vec::new();
            s.export_ops(&mut ops);
            ops
        });
        out.push(crate::export::LayerExport::Residual {
            name: self.name.clone(),
            main,
            shortcut,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::conv::Conv2d;
    use patdnn_tensor::rng::Rng;

    #[test]
    fn sequential_composes_shapes() {
        let mut rng = Rng::seed_from(1);
        let mut net = Sequential::new("net");
        net.push(Conv2d::new("c1", 4, 3, 3, 1, 1, &mut rng));
        net.push(Relu::new("r1"));
        net.push(Conv2d::new("c2", 2, 4, 3, 2, 1, &mut rng));
        let x = Tensor::randn(&[1, 3, 8, 8], &mut rng);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 2, 4, 4]);
        assert_eq!(net.param_count(), 4 * 3 * 9 + 4 + 2 * 4 * 9 + 2);
    }

    #[test]
    fn identity_residual_doubles_identity_input_path() {
        // main path = single conv with zero weights -> output == input.
        let mut rng = Rng::seed_from(2);
        let mut conv = Conv2d::new("c", 3, 3, 3, 1, 1, &mut rng);
        conv.weight.value.map_inplace(|_| 0.0);
        let mut main = Sequential::new("main");
        main.push(conv);
        let mut res = Residual::identity("res", main);
        let x = Tensor::randn(&[1, 3, 5, 5], &mut rng);
        let y = res.forward(&x, Mode::Eval);
        assert!(y.approx_eq(&x, 1e-6));
    }

    #[test]
    fn residual_backward_sums_branches() {
        // Identity shortcut, main path conv with zero weights: gradient of
        // input is grad_out (shortcut) + conv-backward(grad_out) (zero
        // weights -> zero) == grad_out.
        let mut rng = Rng::seed_from(3);
        let mut conv = Conv2d::new("c", 3, 3, 3, 1, 1, &mut rng);
        conv.weight.value.map_inplace(|_| 0.0);
        let mut main = Sequential::new("main");
        main.push(conv);
        let mut res = Residual::identity("res", main);
        let x = Tensor::randn(&[1, 3, 5, 5], &mut rng);
        res.forward(&x, Mode::Train);
        let g = Tensor::randn(&[1, 3, 5, 5], &mut rng);
        let dx = res.backward(&g);
        assert!(dx.approx_eq(&g, 1e-5));
    }

    #[test]
    fn sequential_backward_reverses_order() {
        // A chain of two ReLUs behaves like one: gradient masked by the
        // first forward's sign pattern.
        let mut net = Sequential::new("rr");
        net.push(Relu::new("a"));
        net.push(Relu::new("b"));
        let x = Tensor::from_vec(&[3], vec![-1.0, 2.0, -0.5]).unwrap();
        net.forward(&x, Mode::Train);
        let g = net.backward(&Tensor::filled(&[3], 1.0));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0]);
    }
}
