//! Pooling layers.

use patdnn_tensor::{conv_out_dim, Tensor};

use crate::layer::{Layer, Mode};

/// Max pooling over square windows.
pub struct MaxPool2d {
    name: String,
    kernel: usize,
    stride: usize,
    pad: usize,
    cached: Option<(Vec<usize>, Vec<usize>)>, // (input shape, argmax linear indices)
}

impl MaxPool2d {
    /// Creates a max-pool layer (`pad` is zero padding with `-inf` filling).
    pub fn new(name: &str, kernel: usize, stride: usize, pad: usize) -> Self {
        MaxPool2d {
            name: name.to_owned(),
            kernel,
            stride,
            pad,
            cached: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let s = input.shape4();
        let out_h = conv_out_dim(s.h, self.kernel, self.stride, self.pad);
        let out_w = conv_out_dim(s.w, self.kernel, self.stride, self.pad);
        let mut out = Tensor::zeros(&[s.n, s.c, out_h, out_w]);
        let mut argmax = vec![0usize; out.len()];
        let ind = input.data();
        let od = out.data_mut();
        let mut oi = 0;
        for n in 0..s.n {
            for c in 0..s.c {
                let ibase = (n * s.c + c) * s.h * s.w;
                for oh in 0..out_h {
                    for ow in 0..out_w {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for kh in 0..self.kernel {
                            let ih = (oh * self.stride + kh) as isize - self.pad as isize;
                            if ih < 0 || ih >= s.h as isize {
                                continue;
                            }
                            for kw in 0..self.kernel {
                                let iw = (ow * self.stride + kw) as isize - self.pad as isize;
                                if iw < 0 || iw >= s.w as isize {
                                    continue;
                                }
                                let idx = ibase + ih as usize * s.w + iw as usize;
                                if ind[idx] > best {
                                    best = ind[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        od[oi] = best;
                        argmax[oi] = best_idx;
                        oi += 1;
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.cached = Some((input.shape().to_vec(), argmax));
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (shape, argmax) = self
            .cached
            .take()
            .expect("maxpool backward without forward");
        let mut dinput = Tensor::zeros(&shape);
        let di = dinput.data_mut();
        for (g, &idx) in grad_out.data().iter().zip(&argmax) {
            di[idx] += g;
        }
        dinput
    }

    fn export_ops(&self, out: &mut Vec<crate::export::LayerExport>) {
        out.push(crate::export::LayerExport::MaxPool {
            name: self.name.clone(),
            kernel: self.kernel,
            stride: self.stride,
            pad: self.pad,
        });
    }
}

/// Average pooling over square windows (count excludes padding).
pub struct AvgPool2d {
    name: String,
    kernel: usize,
    stride: usize,
    cached_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool layer without padding.
    pub fn new(name: &str, kernel: usize, stride: usize) -> Self {
        AvgPool2d {
            name: name.to_owned(),
            kernel,
            stride,
            cached_shape: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let s = input.shape4();
        let out_h = conv_out_dim(s.h, self.kernel, self.stride, 0);
        let out_w = conv_out_dim(s.w, self.kernel, self.stride, 0);
        let mut out = Tensor::zeros(&[s.n, s.c, out_h, out_w]);
        let ind = input.data();
        let od = out.data_mut();
        let norm = 1.0 / (self.kernel * self.kernel) as f32;
        let mut oi = 0;
        for n in 0..s.n {
            for c in 0..s.c {
                let ibase = (n * s.c + c) * s.h * s.w;
                for oh in 0..out_h {
                    for ow in 0..out_w {
                        let mut acc = 0.0;
                        for kh in 0..self.kernel {
                            for kw in 0..self.kernel {
                                acc += ind
                                    [ibase + (oh * self.stride + kh) * s.w + ow * self.stride + kw];
                            }
                        }
                        od[oi] = acc * norm;
                        oi += 1;
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.cached_shape = Some(input.shape().to_vec());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .take()
            .expect("avgpool backward without forward");
        let s = patdnn_tensor::Shape4::new(shape[0], shape[1], shape[2], shape[3]);
        let go = grad_out.shape4();
        let mut dinput = Tensor::zeros(&shape);
        let di = dinput.data_mut();
        let norm = 1.0 / (self.kernel * self.kernel) as f32;
        let god = grad_out.data();
        let mut oi = 0;
        for n in 0..s.n {
            for c in 0..s.c {
                let ibase = (n * s.c + c) * s.h * s.w;
                for oh in 0..go.h {
                    for ow in 0..go.w {
                        let g = god[oi] * norm;
                        oi += 1;
                        for kh in 0..self.kernel {
                            for kw in 0..self.kernel {
                                di[ibase
                                    + (oh * self.stride + kh) * s.w
                                    + ow * self.stride
                                    + kw] += g;
                            }
                        }
                    }
                }
            }
        }
        dinput
    }
}

/// Global average pooling: reduces each channel's spatial map to one value.
pub struct GlobalAvgPool {
    name: String,
    cached_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pool.
    pub fn new(name: &str) -> Self {
        GlobalAvgPool {
            name: name.to_owned(),
            cached_shape: None,
        }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let s = input.shape4();
        let mut out = Tensor::zeros(&[s.n, s.c, 1, 1]);
        let hw = s.h * s.w;
        for n in 0..s.n {
            for c in 0..s.c {
                let base = (n * s.c + c) * hw;
                let mean = input.data()[base..base + hw].iter().sum::<f32>() / hw as f32;
                out.data_mut()[n * s.c + c] = mean;
            }
        }
        if mode == Mode::Train {
            self.cached_shape = Some(input.shape().to_vec());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .take()
            .expect("gap backward without forward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let mut dinput = Tensor::zeros(&shape);
        let hw = h * w;
        let norm = 1.0 / hw as f32;
        for ni in 0..n {
            for ci in 0..c {
                let g = grad_out.data()[ni * c + ci] * norm;
                let base = (ni * c + ci) * hw;
                for v in &mut dinput.data_mut()[base..base + hw] {
                    *v = g;
                }
            }
        }
        dinput
    }

    fn export_ops(&self, out: &mut Vec<crate::export::LayerExport>) {
        out.push(crate::export::LayerExport::GlobalAvgPool {
            name: self.name.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_hand_case() {
        let mut p = MaxPool2d::new("mp", 2, 2, 0);
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
        let g = p.backward(&Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap());
        // Gradient lands only on the argmax positions.
        assert_eq!(g.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(g.at(&[0, 0, 1, 3]), 2.0);
        assert_eq!(g.at(&[0, 0, 3, 1]), 3.0);
        assert_eq!(g.at(&[0, 0, 3, 3]), 4.0);
        assert_eq!(g.sum(), 10.0);
    }

    #[test]
    fn avgpool_averages_and_distributes() {
        let mut p = AvgPool2d::new("ap", 2, 2);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 3.0, 5.0, 7.0]).unwrap();
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[4.0]);
        let g = p.backward(&Tensor::filled(&[1, 1, 1, 1], 8.0));
        assert_eq!(g.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn global_avg_pool_shapes() {
        let mut p = GlobalAvgPool::new("gap");
        let x = Tensor::filled(&[2, 3, 4, 4], 2.0);
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 3, 1, 1]);
        assert!(y.data().iter().all(|&v| (v - 2.0).abs() < 1e-6));
        let g = p.backward(&Tensor::filled(&[2, 3, 1, 1], 16.0));
        assert!(g.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }
}
