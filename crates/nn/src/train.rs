//! Training loop and evaluation.

use patdnn_tensor::rng::Rng;

use crate::data::Dataset;
use crate::layer::{Layer, Mode};
use crate::loss::softmax_cross_entropy;
use crate::optim::Optimizer;

/// Configuration for [`train`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// If `true`, prints per-epoch progress to stdout.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 16,
            verbose: false,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Epoch index starting at zero.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Training top-1 accuracy over the epoch.
    pub accuracy: f32,
}

/// Top-1/top-5 accuracy plus mean loss, as reported by [`evaluate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Fraction of samples whose argmax prediction is correct.
    pub top1: f32,
    /// Fraction of samples whose label is in the five highest logits
    /// (trivially 1.0 when there are five or fewer classes).
    pub top5: f32,
    /// Mean cross-entropy loss.
    pub loss: f32,
}

/// Trains `net` on `data` for the configured number of epochs.
///
/// Returns per-epoch statistics. The loss is softmax cross-entropy; the
/// network must map a `[batch, c, h, w]` input to `[batch, classes]`
/// logits.
pub fn train(
    net: &mut dyn Layer,
    data: &Dataset,
    opt: &mut dyn Optimizer,
    cfg: &TrainConfig,
    rng: &mut Rng,
) -> Vec<EpochStats> {
    let mut stats = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let mut total_loss = 0.0f64;
        let mut correct = 0usize;
        let mut seen = 0usize;
        for batch_idx in data.epoch_batches(cfg.batch_size, rng) {
            let (x, y) = data.batch(&batch_idx);
            net.zero_grads();
            let logits = net.forward(&x, Mode::Train);
            let (loss, dlogits) = softmax_cross_entropy(&logits, &y);
            net.backward(&dlogits);
            opt.step(net);

            total_loss += loss as f64 * batch_idx.len() as f64;
            let classes = logits.shape()[1];
            for (b, &label) in y.iter().enumerate() {
                let row = &logits.data()[b * classes..(b + 1) * classes];
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty row");
                if pred == label {
                    correct += 1;
                }
            }
            seen += batch_idx.len();
        }
        let s = EpochStats {
            epoch,
            loss: (total_loss / seen as f64) as f32,
            accuracy: correct as f32 / seen as f32,
        };
        if cfg.verbose {
            println!(
                "epoch {:>3}: loss {:.4}, train acc {:.1}%",
                s.epoch,
                s.loss,
                s.accuracy * 100.0
            );
        }
        stats.push(s);
    }
    stats
}

/// Evaluates `net` on `data`, returning top-1/top-5 accuracy and loss.
pub fn evaluate(net: &mut dyn Layer, data: &Dataset) -> Accuracy {
    const EVAL_BATCH: usize = 32;
    let mut top1 = 0usize;
    let mut top5 = 0usize;
    let mut total_loss = 0.0f64;
    let indices: Vec<usize> = (0..data.len()).collect();
    for chunk in indices.chunks(EVAL_BATCH) {
        let (x, y) = data.batch(chunk);
        let logits = net.forward(&x, Mode::Eval);
        let (loss, _) = softmax_cross_entropy(&logits, &y);
        total_loss += loss as f64 * chunk.len() as f64;
        let classes = logits.shape()[1];
        let k = 5.min(classes);
        for (b, &label) in y.iter().enumerate() {
            let row = &logits.data()[b * classes..(b + 1) * classes];
            let mut order: Vec<usize> = (0..classes).collect();
            order.sort_by(|&i, &j| row[j].partial_cmp(&row[i]).expect("finite logits"));
            if order[0] == label {
                top1 += 1;
            }
            if order[..k].contains(&label) {
                top5 += 1;
            }
        }
    }
    let n = data.len() as f32;
    Accuracy {
        top1: top1 as f32 / n,
        top5: top5 as f32 / n,
        loss: (total_loss / n as f64) as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::conv::Conv2d;
    use crate::linear::{Flatten, Linear};
    use crate::network::Sequential;
    use crate::optim::Adam;
    use crate::pool::MaxPool2d;

    fn small_net(classes: usize, rng: &mut Rng) -> Sequential {
        let mut net = Sequential::new("small");
        net.push(Conv2d::new("c1", 8, 1, 3, 1, 1, rng));
        net.push(Relu::new("r1"));
        net.push(MaxPool2d::new("p1", 2, 2, 0));
        net.push(Flatten::new("fl"));
        net.push(Linear::new("fc", classes, 8 * 4 * 4, rng));
        net
    }

    #[test]
    fn training_learns_synthetic_task() {
        let mut rng = Rng::seed_from(99);
        let ds = Dataset::synthetic(3, 30, 1, 8, 8, 0.4, &mut rng);
        let (train_ds, test_ds) = ds.split(0.8);
        let mut net = small_net(3, &mut rng);
        let before = evaluate(&mut net, &test_ds);
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 8,
            verbose: false,
        };
        let stats = train(&mut net, &train_ds, &mut opt, &cfg, &mut rng);
        let after = evaluate(&mut net, &test_ds);
        assert!(stats.last().expect("epochs ran").loss < stats[0].loss);
        assert!(
            after.top1 > before.top1.max(0.5),
            "before {:?}, after {:?}",
            before,
            after
        );
    }

    #[test]
    fn top5_at_least_top1() {
        let mut rng = Rng::seed_from(100);
        let ds = Dataset::synthetic(8, 5, 1, 8, 8, 1.0, &mut rng);
        let mut net = small_net(8, &mut rng);
        let acc = evaluate(&mut net, &ds);
        assert!(acc.top5 >= acc.top1);
        assert!(acc.top5 <= 1.0 && acc.top1 >= 0.0);
    }

    #[test]
    fn top5_is_trivial_for_small_class_counts() {
        let mut rng = Rng::seed_from(101);
        let ds = Dataset::synthetic(3, 6, 1, 8, 8, 0.5, &mut rng);
        let mut net = small_net(3, &mut rng);
        let acc = evaluate(&mut net, &ds);
        // With 3 classes the top-3 set always contains the label.
        assert_eq!(acc.top5, 1.0);
    }
}
