//! 2-D batch normalization.

use patdnn_tensor::Tensor;

use crate::layer::{Layer, Mode, Param};

/// Batch normalization over the channel axis of NCHW activations.
///
/// Training mode normalizes with batch statistics and updates running
/// estimates; evaluation mode uses the running estimates. The paper notes
/// BN is "an essential operation to increase the stability of DNN
/// training" (§2.1) — and its folding into convolutions is one of the
/// graph optimizations of the compiler stage.
pub struct BatchNorm2d {
    name: String,
    channels: usize,
    eps: f32,
    momentum: f32,
    /// Scale, shape `[channels]`.
    pub gamma: Param,
    /// Shift, shape `[channels]`.
    pub beta: Param,
    /// Running mean used at inference.
    pub running_mean: Tensor,
    /// Running variance used at inference.
    pub running_var: Tensor,
    cache: Option<BnCache>,
}

struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a BN layer with unit scale and zero shift.
    pub fn new(name: &str, channels: usize) -> Self {
        BatchNorm2d {
            name: name.to_owned(),
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Param::new_no_decay(Tensor::filled(&[channels], 1.0)),
            beta: Param::new_no_decay(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::filled(&[channels], 1.0),
            cache: None,
        }
    }

    /// Returns `(scale, shift)` per channel for folding into a preceding
    /// convolution: `y = scale * x + shift` with the running statistics.
    pub fn fold_params(&self) -> (Vec<f32>, Vec<f32>) {
        let mut scale = Vec::with_capacity(self.channels);
        let mut shift = Vec::with_capacity(self.channels);
        for c in 0..self.channels {
            let g = self.gamma.value.data()[c];
            let b = self.beta.value.data()[c];
            let m = self.running_mean.data()[c];
            let v = self.running_var.data()[c];
            let s = g / (v + self.eps).sqrt();
            scale.push(s);
            shift.push(b - s * m);
        }
        (scale, shift)
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let s = input.shape4();
        assert_eq!(s.c, self.channels, "bn {}: channel mismatch", self.name);
        let hw = s.h * s.w;
        let m = (s.n * hw) as f32;
        let mut out = Tensor::zeros(input.shape());

        match mode {
            Mode::Train => {
                let mut xhat = Tensor::zeros(input.shape());
                let mut inv_stds = vec![0.0f32; s.c];
                for c in 0..s.c {
                    // Batch mean and (biased) variance for this channel.
                    let mut mean = 0.0f64;
                    for n in 0..s.n {
                        let base = (n * s.c + c) * hw;
                        mean += input.data()[base..base + hw]
                            .iter()
                            .map(|&x| x as f64)
                            .sum::<f64>();
                    }
                    let mean = (mean / m as f64) as f32;
                    let mut var = 0.0f64;
                    for n in 0..s.n {
                        let base = (n * s.c + c) * hw;
                        var += input.data()[base..base + hw]
                            .iter()
                            .map(|&x| ((x - mean) as f64).powi(2))
                            .sum::<f64>();
                    }
                    let var = (var / m as f64) as f32;
                    let inv_std = 1.0 / (var + self.eps).sqrt();
                    inv_stds[c] = inv_std;
                    let g = self.gamma.value.data()[c];
                    let b = self.beta.value.data()[c];
                    for n in 0..s.n {
                        let base = (n * s.c + c) * hw;
                        for i in 0..hw {
                            let xh = (input.data()[base + i] - mean) * inv_std;
                            xhat.data_mut()[base + i] = xh;
                            out.data_mut()[base + i] = g * xh + b;
                        }
                    }
                    // Update running stats.
                    let rm = &mut self.running_mean.data_mut()[c];
                    *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
                    let rv = &mut self.running_var.data_mut()[c];
                    *rv = (1.0 - self.momentum) * *rv + self.momentum * var;
                }
                self.cache = Some(BnCache {
                    xhat,
                    inv_std: inv_stds,
                });
            }
            Mode::Eval => {
                for c in 0..s.c {
                    let mean = self.running_mean.data()[c];
                    let inv_std = 1.0 / (self.running_var.data()[c] + self.eps).sqrt();
                    let g = self.gamma.value.data()[c];
                    let b = self.beta.value.data()[c];
                    for n in 0..s.n {
                        let base = (n * s.c + c) * hw;
                        for i in 0..hw {
                            out.data_mut()[base + i] =
                                g * (input.data()[base + i] - mean) * inv_std + b;
                        }
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("bn backward without train forward");
        let s = grad_out.shape4();
        let hw = s.h * s.w;
        let m = (s.n * hw) as f32;
        let mut dinput = Tensor::zeros(grad_out.shape());

        for c in 0..s.c {
            let g = self.gamma.value.data()[c];
            let inv_std = cache.inv_std[c];
            // Channel-wise sums.
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for n in 0..s.n {
                let base = (n * s.c + c) * hw;
                for i in 0..hw {
                    let dy = grad_out.data()[base + i] as f64;
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.xhat.data()[base + i] as f64;
                }
            }
            self.gamma.grad_mut().data_mut()[c] += sum_dy_xhat as f32;
            self.beta.grad_mut().data_mut()[c] += sum_dy as f32;

            let sum_dy = sum_dy as f32;
            let sum_dy_xhat = sum_dy_xhat as f32;
            for n in 0..s.n {
                let base = (n * s.c + c) * hw;
                for i in 0..hw {
                    let dy = grad_out.data()[base + i];
                    let xh = cache.xhat.data()[base + i];
                    dinput.data_mut()[base + i] =
                        g * inv_std / m * (m * dy - sum_dy - xh * sum_dy_xhat);
                }
            }
        }
        dinput
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn export_ops(&self, out: &mut Vec<crate::export::LayerExport>) {
        let (scale, shift) = self.fold_params();
        out.push(crate::export::LayerExport::BatchNorm {
            name: self.name.clone(),
            scale,
            shift,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patdnn_tensor::rng::Rng;

    #[test]
    fn train_output_is_normalized() {
        let mut rng = Rng::seed_from(4);
        let mut bn = BatchNorm2d::new("bn", 3);
        let x = Tensor::randn_std(&[4, 3, 5, 5], 3.0, &mut rng).map(|v| v + 10.0);
        let y = bn.forward(&x, Mode::Train);
        // Per-channel mean ~ 0, var ~ 1 after normalization with unit gamma.
        let s = y.shape4();
        let hw = s.h * s.w;
        for c in 0..3 {
            let mut vals = Vec::new();
            for n in 0..s.n {
                let base = (n * s.c + c) * hw;
                vals.extend_from_slice(&y.data()[base..base + hw]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-3, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new("bn", 1);
        bn.running_mean = Tensor::from_vec(&[1], vec![2.0]).unwrap();
        bn.running_var = Tensor::from_vec(&[1], vec![4.0]).unwrap();
        let x = Tensor::filled(&[1, 1, 1, 2], 4.0);
        let y = bn.forward(&x, Mode::Eval);
        // (4 - 2) / 2 = 1.
        assert!((y.data()[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(5);
        let mut bn = BatchNorm2d::new("bn", 2);
        bn.gamma.value = Tensor::from_vec(&[2], vec![1.5, 0.5]).unwrap();
        bn.beta.value = Tensor::from_vec(&[2], vec![0.1, -0.2]).unwrap();
        let x = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        // Use a weighted sum as loss so gradients are non-trivial.
        let w = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let out = bn.forward(&x, Mode::Train);
        let _ = out;
        let dx = bn.backward(&w);

        let loss = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            // Re-run in train mode on fresh running stats to get batch statistics,
            // then discard the cache.
            let y = bn.forward(x, Mode::Train);
            bn.cache = None;
            y.dot(&w)
        };
        let eps = 1e-3;
        for &ii in &[0usize, 7, 20, 35] {
            let mut x2 = x.clone();
            x2.data_mut()[ii] += eps;
            let lp = loss(&mut bn, &x2);
            x2.data_mut()[ii] -= 2.0 * eps;
            let lm = loss(&mut bn, &x2);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.data()[ii];
            assert!(
                (numeric - analytic).abs() < 3e-2 * (1.0 + numeric.abs()),
                "input {ii}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn fold_params_linearize_eval() {
        let mut bn = BatchNorm2d::new("bn", 2);
        bn.running_mean = Tensor::from_vec(&[2], vec![1.0, -1.0]).unwrap();
        bn.running_var = Tensor::from_vec(&[2], vec![4.0, 0.25]).unwrap();
        bn.gamma.value = Tensor::from_vec(&[2], vec![2.0, 3.0]).unwrap();
        bn.beta.value = Tensor::from_vec(&[2], vec![0.5, -0.5]).unwrap();
        let (scale, shift) = bn.fold_params();
        let x = Tensor::from_vec(&[1, 2, 1, 1], vec![3.0, 2.0]).unwrap();
        let y = bn.forward(&x, Mode::Eval);
        for c in 0..2 {
            let expect = scale[c] * x.data()[c] + shift[c];
            assert!((y.data()[c] - expect).abs() < 1e-4);
        }
    }
}
