//! # patdnn-nn
//!
//! Trainable DNN substrate for the PatDNN reproduction.
//!
//! The paper trains VGG-16, ResNet-50, and MobileNet-V2 in PyTorch; this
//! crate is the from-scratch equivalent: layers with full backpropagation
//! ([`layer`], [`conv`], [`linear`], [`pool`], [`batchnorm`],
//! [`activation`]), sequential/residual composition ([`network`]),
//! SGD/Adam optimizers ([`optim`]), softmax cross-entropy ([`loss`]),
//! synthetic datasets ([`data`]), a training loop ([`train`]), and exact
//! layer-inventory *specs* of the paper's three models ([`models`]) used by
//! the reproduction harness for Tables 5-6 and all per-layer workloads.
//!
//! # Examples
//!
//! ```
//! use patdnn_nn::prelude::*;
//! use patdnn_tensor::rng::Rng;
//!
//! let mut rng = Rng::seed_from(0);
//! let mut net = Sequential::new("tiny");
//! net.push(Conv2d::new("conv", 4, 3, 3, 1, 1, &mut rng));
//! net.push(Relu::new("relu"));
//! let x = patdnn_tensor::Tensor::randn(&[2, 3, 8, 8], &mut rng);
//! let y = net.forward(&x, Mode::Eval);
//! assert_eq!(y.shape(), &[2, 4, 8, 8]);
//! ```

pub mod activation;
pub mod batchnorm;
pub mod calibrate;
pub mod conv;
pub mod data;
pub mod export;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod models;
pub mod network;
pub mod optim;
pub mod pool;
pub mod train;

/// Convenient glob import for building and training networks.
pub mod prelude {
    pub use crate::activation::{Relu, Relu6};
    pub use crate::batchnorm::BatchNorm2d;
    pub use crate::conv::{Conv2d, DepthwiseConv2d};
    pub use crate::data::Dataset;
    pub use crate::layer::{Layer, Mode, Param};
    pub use crate::linear::{Flatten, Linear};
    pub use crate::loss::softmax_cross_entropy;
    pub use crate::network::{Residual, Sequential};
    pub use crate::optim::{Adam, Optimizer, Sgd};
    pub use crate::pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
    pub use crate::train::{evaluate, train, Accuracy, TrainConfig};
}
