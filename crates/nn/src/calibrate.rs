//! Activation-range calibration export for quantized deployment.
//!
//! Post-training INT8 quantization needs one fact training never
//! records: how large each layer's activations actually get. This
//! module exports that fact — run a small sample batch through the
//! exported network and record, per layer, the largest absolute input
//! and output values observed. The serving compiler turns those ranges
//! into symmetric activation scales (the compiler crate's `quant`
//! module).
//!
//! Calibration interprets the [`LayerExport`] records rather than the
//! live [`crate::layer::Layer`] objects so that residual blocks profile branch by
//! branch (both branches read the block input; a flat layer walk would
//! misattribute the shortcut's range). Because the serving compiler's
//! graph passes (BN folding, ReLU fusion) are value-preserving, a
//! layer's *input* range here equals its input range in the optimized
//! plan — exactly the number the quantizer needs.

use std::fmt;

use patdnn_tensor::rng::Rng;
use patdnn_tensor::{Conv2dGeometry, Tensor};

use crate::export::{export_network, LayerExport};
use crate::layer::{Layer, Mode};
use crate::network::Sequential;
use crate::pool::{GlobalAvgPool, MaxPool2d};

/// Errors produced while calibrating.
#[derive(Debug)]
pub enum CalibrationError {
    /// A layer kind the calibration interpreter cannot execute.
    Unsupported {
        /// Layer name.
        name: String,
        /// Layer kind label.
        kind: String,
    },
    /// The sample batch does not fit the network (shape error mid-walk).
    BadBatch(String),
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationError::Unsupported { name, kind } => {
                write!(f, "layer {name:?} of kind {kind:?} cannot be calibrated")
            }
            CalibrationError::BadBatch(msg) => write!(f, "calibration batch: {msg}"),
        }
    }
}

impl std::error::Error for CalibrationError {}

/// One layer's observed activation ranges on the calibration batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationRecord {
    /// Layer name (unique within a model by convention).
    pub name: String,
    /// Largest absolute value flowing *into* the layer.
    pub in_max_abs: f32,
    /// Largest absolute value flowing *out of* the layer.
    pub out_max_abs: f32,
}

/// The calibration export: per-layer activation ranges in execution
/// order (residual branches flattened depth-first), plus the network
/// input's own range.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ActivationProfile {
    /// Largest absolute value of the calibration batch itself.
    pub input_max_abs: f32,
    /// Per-layer records.
    pub records: Vec<ActivationRecord>,
}

impl ActivationProfile {
    /// The observed input range of the named layer.
    pub fn input_of(&self, name: &str) -> Option<f32> {
        self.records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.in_max_abs)
    }

    /// The observed output range of the named layer.
    pub fn output_of(&self, name: &str) -> Option<f32> {
        self.records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.out_max_abs)
    }
}

/// A deterministic standard-normal sample batch of `n` items with the
/// given per-item shape, for calibration runs without a real dataset.
pub fn calibration_batch(item: [usize; 3], n: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::randn(&[n, item[0], item[1], item[2]], &mut rng)
}

/// Calibrates a network: exports it and profiles the exported records
/// over the sample batch.
pub fn calibrate_network(
    net: &Sequential,
    batch: &Tensor,
) -> Result<ActivationProfile, CalibrationError> {
    calibrate_exports(&export_network(net), batch)
}

/// Profiles exported layer records over a sample batch.
pub fn calibrate_exports(
    layers: &[LayerExport],
    batch: &Tensor,
) -> Result<ActivationProfile, CalibrationError> {
    let mut profile = ActivationProfile {
        input_max_abs: max_abs(batch),
        records: Vec::new(),
    };
    run_layers(layers, batch.clone(), &mut profile)?;
    Ok(profile)
}

fn max_abs(t: &Tensor) -> f32 {
    t.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

fn run_layers(
    layers: &[LayerExport],
    mut x: Tensor,
    profile: &mut ActivationProfile,
) -> Result<Tensor, CalibrationError> {
    for layer in layers {
        let in_max = max_abs(&x);
        let out = run_layer(layer, &x, profile)?;
        profile.records.push(ActivationRecord {
            name: layer.name().to_owned(),
            in_max_abs: in_max,
            out_max_abs: max_abs(&out),
        });
        x = out;
    }
    Ok(x)
}

/// Executes one exported record (inference semantics only).
fn run_layer(
    layer: &LayerExport,
    x: &Tensor,
    profile: &mut ActivationProfile,
) -> Result<Tensor, CalibrationError> {
    let bad = |msg: String| CalibrationError::BadBatch(msg);
    let spatial = |x: &Tensor, name: &str| -> Result<(usize, usize, usize), CalibrationError> {
        match x.shape() {
            [_, c, h, w] => Ok((*c, *h, *w)),
            other => Err(bad(format!("{name}: needs NCHW input, got {other:?}"))),
        }
    };
    Ok(match layer {
        LayerExport::Conv {
            name,
            out_c,
            in_c,
            kernel,
            stride,
            pad,
            weights,
            bias,
        } => {
            let (c, h, w) = spatial(x, name)?;
            if c != *in_c {
                return Err(bad(format!("{name}: expects {in_c} channels, got {c}")));
            }
            let geo = Conv2dGeometry::new(*out_c, *in_c, *kernel, *kernel, h, w, *stride, *pad);
            patdnn_tensor::conv2d_ref(x, weights, Some(bias), &geo)
        }
        LayerExport::BatchNorm { name, scale, shift } => {
            let (c, h, w) = spatial(x, name)?;
            if c != scale.len() {
                return Err(bad(format!("{name}: channel arity")));
            }
            let mut out = x.clone();
            let hw = h * w;
            for (i, v) in out.data_mut().iter_mut().enumerate() {
                let ch = (i / hw) % c;
                *v = scale[ch] * *v + shift[ch];
            }
            out
        }
        LayerExport::Relu { .. } => x.map(|v| v.max(0.0)),
        LayerExport::Relu6 { .. } => x.map(|v| v.clamp(0.0, 6.0)),
        // Pooling reuses the live nn layers (they are stateless in Eval
        // mode), so calibration cannot drift from real execution.
        LayerExport::MaxPool {
            name,
            kernel,
            stride,
            pad,
        } => {
            spatial(x, name)?;
            MaxPool2d::new(name, *kernel, *stride, *pad).forward(x, Mode::Eval)
        }
        LayerExport::GlobalAvgPool { name } => {
            spatial(x, name)?;
            GlobalAvgPool::new(name).forward(x, Mode::Eval)
        }
        LayerExport::Flatten { name } => {
            let n = x.shape()[0];
            let rest: usize = x.shape()[1..].iter().product();
            x.clone()
                .reshape(&[n, rest])
                .map_err(|e| bad(format!("{name}: {e:?}")))?
        }
        LayerExport::Linear {
            name,
            weights,
            bias,
        } => {
            let n = x.shape()[0];
            let feats: usize = x.shape()[1..].iter().product();
            let (out_f, in_f) = (weights.shape()[0], weights.shape()[1]);
            if feats != in_f {
                return Err(bad(format!("{name}: expects {in_f} features, got {feats}")));
            }
            let mut out = Tensor::zeros(&[n, out_f]);
            patdnn_tensor::gemm::gemm_bt(n, out_f, in_f, x.data(), weights.data(), out.data_mut());
            for b in 0..n {
                for (o, &bv) in bias.iter().enumerate() {
                    out.data_mut()[b * out_f + o] += bv;
                }
            }
            out
        }
        LayerExport::Residual {
            main,
            shortcut,
            name,
        } => {
            let main_out = run_layers(main, x.clone(), profile)?;
            let short_out = match shortcut {
                Some(s) => run_layers(s, x.clone(), profile)?,
                None => x.clone(),
            };
            main_out
                .zip_map(&short_out, |a, b| a + b)
                .map_err(|e| bad(format!("{name}: branch shapes disagree: {e:?}")))?
        }
        LayerExport::Opaque { name } => {
            return Err(CalibrationError::Unsupported {
                name: name.clone(),
                kind: layer.kind().into(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Mode};
    use crate::models::{resnet_small, small_cnn};

    #[test]
    fn calibration_batch_is_deterministic() {
        let a = calibration_batch([3, 8, 8], 4, 7);
        let b = calibration_batch([3, 8, 8], 4, 7);
        assert_eq!(a, b);
        assert_eq!(a.shape(), &[4, 3, 8, 8]);
    }

    #[test]
    fn profile_matches_the_live_forward_pass() {
        let mut rng = Rng::seed_from(1);
        let mut net = small_cnn(3, 8, 4, &mut rng);
        let batch = calibration_batch([3, 8, 8], 3, 2);
        let profile = calibrate_network(&net, &batch).expect("calibrates");
        // The interpreter's final output range equals the live network's.
        let want = net.forward(&batch, Mode::Eval);
        let last = profile.records.last().expect("records");
        assert!(
            (last.out_max_abs - max_abs(&want)).abs() <= 1e-4 * (1.0 + max_abs(&want)),
            "interpreted output range diverges from live forward: {} vs {}",
            last.out_max_abs,
            max_abs(&want)
        );
    }

    #[test]
    fn every_layer_gets_a_record_with_chained_ranges() {
        let mut rng = Rng::seed_from(3);
        let net = small_cnn(3, 8, 4, &mut rng);
        let batch = calibration_batch([3, 8, 8], 2, 4);
        let profile = calibrate_network(&net, &batch).expect("calibrates");
        let names: Vec<&str> = profile.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names.len(), 8, "one record per exported layer");
        // Chain models: each layer's input range is its predecessor's
        // output range.
        assert_eq!(profile.records[0].in_max_abs, profile.input_max_abs);
        for pair in profile.records.windows(2) {
            assert_eq!(pair[1].in_max_abs, pair[0].out_max_abs);
        }
        assert!(profile.input_of(names[0]).is_some());
        assert!(profile.output_of("no-such-layer").is_none());
    }

    #[test]
    fn residual_branches_profile_against_the_block_input() {
        let mut rng = Rng::seed_from(5);
        let mut net = resnet_small(10, &mut rng);
        let batch = calibration_batch([3, 32, 32], 2, 6);
        let profile = calibrate_network(&net, &batch).expect("calibrates");
        // The interpreter agrees with the live network end to end (this
        // exercises both identity and projection shortcuts).
        let want = net.forward(&batch, Mode::Eval);
        let last = profile.records.last().expect("records");
        assert!(
            (last.out_max_abs - max_abs(&want)).abs() <= 1e-3 * (1.0 + max_abs(&want)),
            "residual interpretation diverges: {} vs {}",
            last.out_max_abs,
            max_abs(&want)
        );
        // Residual blocks contribute nested records plus their own: the
        // projected block's shortcut conv must be profiled against the
        // block input, not the main branch's intermediate value.
        assert!(profile.records.iter().any(|r| r.name == "block2"));
        let block2_in = profile.input_of("block2").expect("block record");
        let proj_in = profile.input_of("block2_proj").expect("shortcut record");
        assert_eq!(
            proj_in, block2_in,
            "projection shortcut reads the block input"
        );
    }

    #[test]
    fn opaque_layers_are_a_typed_error() {
        let layers = vec![LayerExport::Opaque {
            name: "mystery".into(),
        }];
        let batch = calibration_batch([3, 8, 8], 1, 1);
        assert!(matches!(
            calibrate_exports(&layers, &batch),
            Err(CalibrationError::Unsupported { .. })
        ));
    }
}
