//! Synthetic image datasets.
//!
//! The paper evaluates on ImageNet ILSVRC-2012 and CIFAR-10. Neither is
//! available offline, so the reproduction substitutes deterministic
//! synthetic datasets with the same tensor shapes: each class is defined
//! by a smooth random prototype image and samples are noisy copies. A
//! small CNN can learn the task, which is what the accuracy-trend
//! experiments (Tables 3, 4, 7) need — see DESIGN.md §2 for the
//! substitution rationale.

use patdnn_tensor::rng::Rng;
use patdnn_tensor::Tensor;

/// An in-memory labelled image dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Vec<Tensor>,
    labels: Vec<usize>,
    num_classes: usize,
    channels: usize,
    height: usize,
    width: usize,
}

/// Smooths a CHW tensor with a 3×3 box filter, `rounds` times.
fn box_blur(t: &Tensor, rounds: usize) -> Tensor {
    let s = t.shape();
    let (c, h, w) = (s[0], s[1], s[2]);
    let mut cur = t.clone();
    for _ in 0..rounds {
        let mut next = Tensor::zeros(&[c, h, w]);
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let mut acc = 0.0;
                    let mut cnt = 0.0;
                    for dy in -1i32..=1 {
                        for dx in -1i32..=1 {
                            let yy = y as i32 + dy;
                            let xx = x as i32 + dx;
                            if yy >= 0 && yy < h as i32 && xx >= 0 && xx < w as i32 {
                                acc += cur.at(&[ci, yy as usize, xx as usize]);
                                cnt += 1.0;
                            }
                        }
                    }
                    next.set(&[ci, y, x], acc / cnt);
                }
            }
        }
        cur = next;
    }
    cur
}

impl Dataset {
    /// Generates a synthetic dataset of `per_class` noisy samples of each
    /// of `num_classes` smooth prototypes.
    ///
    /// `noise` controls task difficulty: 0.0 is trivially separable,
    /// values around 0.5-1.0 make a small CNN work for its accuracy.
    pub fn synthetic(
        num_classes: usize,
        per_class: usize,
        channels: usize,
        height: usize,
        width: usize,
        noise: f32,
        rng: &mut Rng,
    ) -> Self {
        let mut prototypes = Vec::with_capacity(num_classes);
        for _ in 0..num_classes {
            let raw = Tensor::randn(&[channels, height, width], rng);
            let mut smooth = box_blur(&raw, 2);
            // Normalize prototype energy so classes are equally hard.
            let norm = smooth.l2_norm().max(1e-6);
            smooth.scale((channels * height * width) as f32 / (norm * norm.sqrt()));
            prototypes.push(smooth);
        }
        let mut images = Vec::with_capacity(num_classes * per_class);
        let mut labels = Vec::with_capacity(num_classes * per_class);
        for (label, proto) in prototypes.iter().enumerate() {
            for _ in 0..per_class {
                let mut img = proto.clone();
                for v in img.data_mut() {
                    *v += noise * rng.normal();
                }
                images.push(img);
                labels.push(label);
            }
        }
        // Shuffle sample order so mini-batches mix classes.
        let mut order: Vec<usize> = (0..images.len()).collect();
        rng.shuffle(&mut order);
        let images = order.iter().map(|&i| images[i].clone()).collect();
        let labels = order.iter().map(|&i| labels[i]).collect();
        Dataset {
            images,
            labels,
            num_classes,
            channels,
            height,
            width,
        }
    }

    /// CIFAR-10-shaped synthetic data: 10 classes of 3×32×32 images.
    pub fn cifar_like(per_class: usize, noise: f32, rng: &mut Rng) -> Self {
        Dataset::synthetic(10, per_class, 3, 32, 32, noise, rng)
    }

    /// Down-scaled ImageNet-like synthetic data (3×64×64, 10 classes) —
    /// large enough to exercise multi-stage networks, small enough to
    /// train on a laptop.
    pub fn imagenet_like(per_class: usize, noise: f32, rng: &mut Rng) -> Self {
        Dataset::synthetic(10, per_class, 3, 64, 64, noise, rng)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Returns `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image shape as `(channels, height, width)`.
    pub fn image_shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// The label of sample `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// The image of sample `i`.
    pub fn image(&self, i: usize) -> &Tensor {
        &self.images[i]
    }

    /// Splits into `(train, test)` with `train_fraction` of samples in the
    /// training half.
    pub fn split(self, train_fraction: f64) -> (Dataset, Dataset) {
        let n_train = ((self.len() as f64) * train_fraction).round() as usize;
        let (train_imgs, test_imgs) = {
            let mut imgs = self.images;
            let test = imgs.split_off(n_train.min(imgs.len()));
            (imgs, test)
        };
        let (train_labels, test_labels) = {
            let mut labels = self.labels;
            let test = labels.split_off(n_train.min(labels.len()));
            (labels, test)
        };
        let make = |images: Vec<Tensor>, labels: Vec<usize>| Dataset {
            images,
            labels,
            num_classes: self.num_classes,
            channels: self.channels,
            height: self.height,
            width: self.width,
        };
        (make(train_imgs, train_labels), make(test_imgs, test_labels))
    }

    /// Assembles samples `indices` into a `[batch, c, h, w]` tensor plus
    /// labels.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let img_len = self.channels * self.height * self.width;
        let mut data = Vec::with_capacity(indices.len() * img_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.images[i].data());
            labels.push(self.labels[i]);
        }
        let t = Tensor::from_vec(
            &[indices.len(), self.channels, self.height, self.width],
            data,
        )
        .expect("batch assembly length");
        (t, labels)
    }

    /// Returns shuffled mini-batch index lists covering the whole dataset.
    pub fn epoch_batches(&self, batch_size: usize, rng: &mut Rng) -> Vec<Vec<usize>> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut order);
        order.chunks(batch_size).map(|c| c.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_has_balanced_labels() {
        let mut rng = Rng::seed_from(1);
        let ds = Dataset::synthetic(4, 25, 3, 8, 8, 0.3, &mut rng);
        assert_eq!(ds.len(), 100);
        let mut counts = [0usize; 4];
        for i in 0..ds.len() {
            counts[ds.label(i)] += 1;
        }
        assert_eq!(counts, [25, 25, 25, 25]);
    }

    #[test]
    fn batch_shapes_and_labels() {
        let mut rng = Rng::seed_from(2);
        let ds = Dataset::synthetic(3, 5, 2, 4, 4, 0.1, &mut rng);
        let (x, y) = ds.batch(&[0, 3, 7]);
        assert_eq!(x.shape(), &[3, 2, 4, 4]);
        assert_eq!(y, vec![ds.label(0), ds.label(3), ds.label(7)]);
        // First image copied verbatim.
        assert_eq!(&x.data()[..32], ds.image(0).data());
    }

    #[test]
    fn split_partitions_without_loss() {
        let mut rng = Rng::seed_from(3);
        let ds = Dataset::synthetic(2, 10, 1, 4, 4, 0.2, &mut rng);
        let total = ds.len();
        let (train, test) = ds.split(0.8);
        assert_eq!(train.len() + test.len(), total);
        assert_eq!(train.len(), 16);
    }

    #[test]
    fn epoch_batches_cover_every_sample_once() {
        let mut rng = Rng::seed_from(4);
        let ds = Dataset::synthetic(2, 9, 1, 2, 2, 0.1, &mut rng);
        let batches = ds.epoch_batches(4, &mut rng);
        let mut seen: Vec<usize> = batches.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..18).collect::<Vec<_>>());
    }

    #[test]
    fn classes_are_distinguishable() {
        // Prototype separation: same-class samples should be closer to their
        // own prototype-mean than to another class's.
        let mut rng = Rng::seed_from(5);
        let ds = Dataset::synthetic(2, 20, 1, 8, 8, 0.3, &mut rng);
        let mut means = vec![Tensor::zeros(&[1, 8, 8]); 2];
        let mut counts = [0f32; 2];
        for i in 0..ds.len() {
            means[ds.label(i)].axpy(1.0, ds.image(i));
            counts[ds.label(i)] += 1.0;
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            m.scale(1.0 / c);
        }
        let mut correct = 0;
        for i in 0..ds.len() {
            let d0 = ds
                .image(i)
                .zip_map(&means[0], |a, b| a - b)
                .unwrap()
                .l2_norm();
            let d1 = ds
                .image(i)
                .zip_map(&means[1], |a, b| a - b)
                .unwrap()
                .l2_norm();
            let pred = usize::from(d1 < d0);
            if pred == ds.label(i) {
                correct += 1;
            }
        }
        assert!(
            correct as f32 / ds.len() as f32 > 0.9,
            "correct {correct}/40"
        );
    }
}
