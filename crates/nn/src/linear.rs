//! Fully-connected layer and the flatten adaptor.

use patdnn_tensor::gemm::{gemm_at, gemm_bt, gemm_ref};
use patdnn_tensor::rng::Rng;
use patdnn_tensor::Tensor;

use crate::layer::{Layer, Mode, Param};

/// Fully-connected (dense) layer: `y = x Wᵀ + b`.
///
/// Inputs are `[batch, in_features]`; weights are `[out_features,
/// in_features]` so each row is one output neuron, mirroring the OIHW
/// convention of the conv layers.
pub struct Linear {
    name: String,
    in_features: usize,
    out_features: usize,
    /// Weights, shape `[out_features, in_features]`.
    pub weight: Param,
    /// Bias, shape `[out_features]`.
    pub bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Kaiming-normal weights and zero bias.
    pub fn new(name: &str, out_features: usize, in_features: usize, rng: &mut Rng) -> Self {
        let std = (2.0 / in_features as f32).sqrt();
        Linear {
            name: name.to_owned(),
            in_features,
            out_features,
            weight: Param::new(Tensor::randn_std(&[out_features, in_features], std, rng)),
            bias: Param::new_no_decay(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(
            input.shape().len(),
            2,
            "linear {} expects 2-d input",
            self.name
        );
        let batch = input.shape()[0];
        assert_eq!(
            input.shape()[1],
            self.in_features,
            "linear {} feature mismatch",
            self.name
        );
        let mut out = Tensor::zeros(&[batch, self.out_features]);
        // out (B x O) = input (B x I) * Wᵀ (I x O); W stored O x I.
        gemm_bt(
            batch,
            self.out_features,
            self.in_features,
            input.data(),
            self.weight.value.data(),
            out.data_mut(),
        );
        for b in 0..batch {
            for (o, &bias) in self.bias.value.data().iter().enumerate() {
                out.data_mut()[b * self.out_features + o] += bias;
            }
        }
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("linear backward without train-mode forward");
        let batch = input.shape()[0];
        // dW (O x I) += gOutᵀ (O x B) * input (B x I)
        gemm_at(
            self.out_features,
            self.in_features,
            batch,
            grad_out.data(),
            input.data(),
            self.weight.grad_mut().data_mut(),
        );
        {
            let db = self.bias.grad_mut().data_mut();
            for b in 0..batch {
                for o in 0..self.out_features {
                    db[o] += grad_out.data()[b * self.out_features + o];
                }
            }
        }
        // dX (B x I) = gOut (B x O) * W (O x I)
        let mut dinput = Tensor::zeros(input.shape());
        gemm_ref(
            batch,
            self.in_features,
            self.out_features,
            grad_out.data(),
            self.weight.value.data(),
            dinput.data_mut(),
        );
        dinput
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn export_ops(&self, out: &mut Vec<crate::export::LayerExport>) {
        out.push(crate::export::LayerExport::Linear {
            name: self.name.clone(),
            weights: self.weight.value.clone(),
            bias: self.bias.value.data().to_vec(),
        });
    }
}

/// Flattens `[batch, c, h, w]` activations to `[batch, c*h*w]`.
pub struct Flatten {
    name: String,
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten adaptor.
    pub fn new(name: &str) -> Self {
        Flatten {
            name: name.to_owned(),
            cached_shape: None,
        }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let batch = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        if mode == Mode::Train {
            self.cached_shape = Some(input.shape().to_vec());
        }
        input
            .clone()
            .reshape(&[batch, rest])
            .expect("flatten preserves length")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .take()
            .expect("flatten backward without forward");
        grad_out
            .clone()
            .reshape(&shape)
            .expect("unflatten preserves length")
    }

    fn export_ops(&self, out: &mut Vec<crate::export::LayerExport>) {
        out.push(crate::export::LayerExport::Flatten {
            name: self.name.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_forward_hand_case() {
        let mut rng = Rng::seed_from(1);
        let mut lin = Linear::new("fc", 2, 3, &mut rng);
        lin.weight.value = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0]).unwrap();
        lin.bias.value = Tensor::from_vec(&[2], vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec(&[1, 3], vec![2.0, 3.0, 4.0]).unwrap();
        let y = lin.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[2.5, 6.5]);
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(2);
        let mut lin = Linear::new("fc", 3, 4, &mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let out = lin.forward(&x, Mode::Train);
        let dx = lin.backward(&Tensor::filled(out.shape(), 1.0));
        let eps = 1e-3;
        for &wi in &[0usize, 5, 11] {
            let orig = lin.weight.value.data()[wi];
            lin.weight.value.data_mut()[wi] = orig + eps;
            let lp = lin.forward(&x, Mode::Eval).sum();
            lin.weight.value.data_mut()[wi] = orig - eps;
            let lm = lin.forward(&x, Mode::Eval).sum();
            lin.weight.value.data_mut()[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = lin.weight.grad().unwrap().data()[wi];
            assert!((numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs()));
        }
        for &ii in &[0usize, 3, 7] {
            let mut x2 = x.clone();
            let orig = x2.data()[ii];
            x2.data_mut()[ii] = orig + eps;
            let lp = lin.forward(&x2, Mode::Eval).sum();
            x2.data_mut()[ii] = orig - eps;
            let lm = lin.forward(&x2, Mode::Eval).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - dx.data()[ii]).abs() < 1e-2 * (1.0 + numeric.abs()));
        }
    }

    #[test]
    fn flatten_round_trips() {
        let mut fl = Flatten::new("fl");
        let x = Tensor::randn(&[2, 3, 4, 5], &mut Rng::seed_from(3));
        let y = fl.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 60]);
        let g = fl.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.data(), x.data());
    }
}
