//! `ModelRegistry` hot-replace under load: swapping an engine while
//! worker threads are mid-inference must be tear-free — every in-flight
//! request finishes on the `Arc` it resolved, producing exactly that
//! engine version's output, never a mix of two versions' weights.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use patdnn_core::prune::pattern_project_network;
use patdnn_nn::models::small_cnn;
use patdnn_serve::compile::compile_network;
use patdnn_serve::engine::{Engine, EngineOptions};
use patdnn_serve::registry::ModelRegistry;
use patdnn_tensor::rng::Rng;
use patdnn_tensor::Tensor;

/// Builds one engine version from a differently-seeded pruned network.
fn engine_version(seed: u64) -> Engine {
    let mut rng = Rng::seed_from(seed);
    let mut net = small_cnn(3, 8, 4, &mut rng);
    pattern_project_network(&mut net, 8, 2.5);
    let artifact = compile_network("hot", &net, [3, 8, 8]).expect("compiles");
    Engine::new(artifact, EngineOptions::default()).expect("engine")
}

#[test]
fn hot_replace_under_load_is_tear_free() {
    const VERSIONS: usize = 3;
    const WORKERS: usize = 4;
    const SWAPS: usize = 60;

    let registry = Arc::new(ModelRegistry::new());
    let mut rng = Rng::seed_from(99);
    let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);

    // Every version's engine and its expected output for `x`. Engines
    // are deterministic, so any tear (a request observing two versions'
    // state) would produce bytes matching none of these.
    let versions: Vec<Arc<Engine>> = (0..VERSIONS as u64)
        .map(|v| Arc::new(engine_version(1000 + v)))
        .collect();
    let expected: Vec<Vec<u32>> = versions
        .iter()
        .map(|e| {
            e.infer(&x)
                .expect("reference infer")
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    // Distinct versions must be distinguishable for the check to mean
    // anything.
    assert!(
        expected.windows(2).all(|w| w[0] != w[1]),
        "engine versions must produce distinct outputs"
    );

    // Seed the registry with version 0. `register` takes the Engine by
    // value, so clone-by-artifact: rebuild an identical engine instead.
    registry.register("hot", engine_version(1000));
    let first = registry.get("hot").expect("registered");

    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let completed = Arc::clone(&completed);
            let versions = &versions;
            let expected = &expected;
            let x = &x;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // Resolve, then infer on the resolved Arc: the swap
                    // may happen between (and during) these two steps.
                    let engine = registry.get("hot").expect("model stays registered");
                    let out = engine.infer(x).expect("infer");
                    let bits: Vec<u32> = out.data().iter().map(|v| v.to_bits()).collect();
                    // The output must match exactly one version: the
                    // one this request resolved. Identify it by output
                    // (registered engines are rebuilt, so Arc identity
                    // differs while outputs are bitwise reproducible).
                    assert!(
                        versions.iter().zip(expected).any(|(_, want)| bits == *want),
                        "in-flight request observed torn engine state"
                    );
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Swap the live model across versions while the workers hammer.
        for swap in 1..=SWAPS {
            registry.register("hot", engine_version(1000 + (swap % VERSIONS) as u64));
            std::thread::yield_now();
        }
        // Let requests drain against the final version, then stop.
        while completed.load(Ordering::Relaxed) < SWAPS {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        completed.load(Ordering::Relaxed) >= SWAPS,
        "workers must have completed requests concurrently with swaps"
    );

    // The Arc resolved before all the swapping still serves its own
    // version's exact output: replacement never invalidates in-flight
    // handles.
    let bits: Vec<u32> = first
        .infer(&x)
        .expect("old Arc still serves")
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(bits, expected[0], "old Arc drifted after replacement");
    // And nothing but the final registration keeps the name alive.
    assert_eq!(registry.len(), 1);
}
