//! Integration tests of the serving subsystem: artifact round trips,
//! engine-vs-layerwise equivalence, and dynamic batching correctness.

use std::sync::Arc;
use std::time::Duration;

use patdnn_compiler::tune::space::TuningConfig;
use patdnn_core::prune::pattern_project_network;
use patdnn_nn::layer::{Layer, Mode};
use patdnn_nn::models::{small_cnn, vgg_small};
use patdnn_nn::network::Sequential;
use patdnn_runtime::executor::ConvExecutor;
use patdnn_runtime::pattern_exec::{OptLevel, PatternConv};
use patdnn_serve::batching::BatchPolicy;
use patdnn_serve::compile::compile_network;
use patdnn_serve::engine::{Engine, EngineOptions};
use patdnn_serve::registry::ModelRegistry;
use patdnn_serve::server::{Server, ServerConfig};
use patdnn_serve::{LayerPlan, ModelArtifact, ServeError};
use patdnn_tensor::rng::Rng;
use patdnn_tensor::{Conv2dGeometry, Tensor};

/// Builds a pattern-pruned small CNN (both convs prunable).
fn pruned_cnn(seed: u64) -> Sequential {
    let mut rng = Rng::seed_from(seed);
    let mut net = small_cnn(3, 8, 4, &mut rng);
    pattern_project_network(&mut net, 8, 2.5);
    net
}

/// Artifact codec: save → load → bitwise-equal weights and structure.
#[test]
fn artifact_round_trip_is_bitwise_lossless() {
    let net = pruned_cnn(1);
    let artifact = compile_network("rt", &net, [3, 8, 8]).expect("compiles");
    assert!(
        artifact.steps.iter().any(|s| s.op.kind() == "pattern-conv"),
        "round trip must cover FKW layers"
    );

    let dir = std::env::temp_dir().join("patdnn_serve_roundtrip_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("model.patdnn");
    artifact.save(&path).expect("save");
    let reloaded = ModelArtifact::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    assert_eq!(artifact, reloaded, "decoded artifact is structurally equal");
    // Bitwise weight equality, FKW layer by FKW layer.
    for (a, b) in artifact.steps.iter().zip(&reloaded.steps) {
        if let (LayerPlan::PatternConv { fkw: fa, .. }, LayerPlan::PatternConv { fkw: fb, .. }) =
            (&a.op, &b.op)
        {
            let bits_a: Vec<u32> = fa.weights.iter().map(|w| w.to_bits()).collect();
            let bits_b: Vec<u32> = fb.weights.iter().map(|w| w.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "FKW weights bitwise equal");
        }
    }
    // And the re-encoded bytes are identical.
    assert_eq!(artifact.encode(), reloaded.encode());
}

/// Engine vs layerwise reference: the compiled plan must match running
/// each ConvExecutor (and the nn forward pass) by hand.
#[test]
fn engine_matches_layerwise_execution() {
    let mut net = pruned_cnn(2);
    let artifact = compile_network("eq", &net, [3, 8, 8]).expect("compiles");
    let engine = Engine::new(artifact.clone(), EngineOptions::default()).expect("engine");

    let mut rng = Rng::seed_from(3);
    let x = Tensor::randn(&[1, 3, 8, 8], &mut rng);

    // Hand-rolled layerwise execution of the same plan (a chain, so the
    // steps execute in slot-feeding order).
    assert!(artifact.is_chain(), "small_cnn compiles to a chain plan");
    let mut cur = x.clone();
    let mut shape = [3usize, 8, 8];
    for step in &artifact.steps {
        cur = match &step.op {
            LayerPlan::PatternConv {
                stride,
                pad,
                fkw,
                bias,
                relu,
                ..
            } => {
                let geo = Conv2dGeometry::new(
                    fkw.out_c, fkw.in_c, fkw.kernel, fkw.kernel, shape[1], shape[2], *stride, *pad,
                );
                let exec = PatternConv::new(
                    geo,
                    fkw.clone(),
                    bias.clone(),
                    OptLevel::Full,
                    TuningConfig::tuned_default(),
                );
                shape = [geo.out_channels, geo.out_h, geo.out_w];
                let mut out = exec.run(&cur);
                if *relu {
                    out.map_inplace(|v| v.max(0.0));
                }
                out
            }
            LayerPlan::MaxPool {
                kernel,
                stride,
                pad,
            } => {
                let mut pool = patdnn_nn::pool::MaxPool2d::new("p", *kernel, *stride, *pad);
                let out = pool.forward(&cur, Mode::Eval);
                shape = [out.shape()[1], out.shape()[2], out.shape()[3]];
                out
            }
            LayerPlan::Flatten => {
                let n = cur.shape()[0];
                let rest: usize = cur.shape()[1..].iter().product();
                cur.clone().reshape(&[n, rest]).expect("flatten")
            }
            LayerPlan::Fc { weights, bias, .. } => {
                let mut fc = patdnn_nn::linear::Linear::new(
                    "fc",
                    weights.shape()[0],
                    weights.shape()[1],
                    &mut Rng::seed_from(0),
                );
                fc.weight.value = weights.clone();
                fc.bias.value = Tensor::from_vec(&[bias.len()], bias.clone()).expect("bias");
                fc.forward(&cur, Mode::Eval)
            }
            other => panic!("unexpected plan step {}", other.kind()),
        };
    }

    let got = engine.infer(&x).expect("infer");
    assert!(
        cur.approx_eq(&got, 1e-4),
        "engine diverges from layerwise execution: {:?}",
        cur.max_abs_diff(&got)
    );

    // And against the original network's forward pass.
    let want = net.forward(&x, Mode::Eval);
    assert!(
        want.approx_eq(&got, 1e-4),
        "engine diverges from nn forward: {:?}",
        want.max_abs_diff(&got)
    );
}

/// A deeper pruned network (VGG-small) survives compile → save → load →
/// engine with outputs within tolerance of the nn forward pass.
#[test]
fn vgg_small_compiles_and_serves_from_reloaded_artifact() {
    let mut rng = Rng::seed_from(4);
    let mut net = vgg_small(10, &mut rng);
    pattern_project_network(&mut net, 8, 3.6);
    let artifact = compile_network("vgg_small", &net, [3, 32, 32]).expect("compiles");

    let pattern_layers = artifact
        .steps
        .iter()
        .filter(|s| s.op.kind() == "pattern-conv")
        .count();
    assert_eq!(pattern_layers, 6, "all six 3x3 convs compile to FKW");

    let bytes = artifact.encode();
    let reloaded = ModelArtifact::decode(&bytes).expect("decode");
    let engine = Engine::new(reloaded, EngineOptions::default()).expect("engine");

    let x = Tensor::randn(&[2, 3, 32, 32], &mut rng);
    let want = net.forward(&x, Mode::Eval);
    let got = engine.infer(&x).expect("infer");
    assert!(
        want.approx_eq(&got, 1e-4),
        "reloaded engine diverges: {:?}",
        want.max_abs_diff(&got)
    );
}

/// Backward compatibility: a chain model encoded in the legacy v1
/// layout decodes into the current plan representation and infers
/// bit-identically to the engine built from the current encoding.
#[test]
fn cross_version_v1_chain_artifact_infers_bit_identically() {
    let mut rng = Rng::seed_from(31);
    let mut net = vgg_small(10, &mut rng);
    pattern_project_network(&mut net, 8, 3.6);
    let artifact = compile_network("legacy", &net, [3, 32, 32]).expect("compiles");
    assert!(artifact.is_chain(), "vgg_small is a chain model");

    let v1_bytes = artifact.encode_v1().expect("chains encode as v1");
    let from_v1 = ModelArtifact::decode(&v1_bytes).expect("v1 decodes");
    assert_eq!(artifact, from_v1, "v1 decodes into the current chain plan");

    let engine_now = Engine::new(artifact, EngineOptions::default()).expect("current engine");
    let engine_v1 = Engine::new(from_v1, EngineOptions::default()).expect("v1 engine");
    for batch in [1usize, 4] {
        let x = Tensor::randn(&[batch, 3, 32, 32], &mut rng);
        let a = engine_now.infer(&x).expect("current infer");
        let b = engine_v1.infer(&x).expect("v1 infer");
        let bits_a: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits_a, bits_b,
            "batch {batch}: outputs must be bit-identical"
        );
    }
}

/// Backward compatibility: a DAG model encoded in the v2 layout (no
/// exec configs) decodes in the current build with default configs and
/// infers bit-identically to a freshly compiled default plan.
#[test]
fn cross_version_v2_artifact_infers_bit_identically() {
    let mut rng = Rng::seed_from(33);
    let mut net = patdnn_nn::models::resnet_small(10, &mut rng);
    pattern_project_network(&mut net, 8, 3.6);
    let artifact = compile_network("v2compat", &net, [3, 32, 32]).expect("compiles");
    assert!(!artifact.is_chain(), "resnet_small is a DAG model");

    let v2_bytes = artifact.encode_v2().expect("default plans encode as v2");
    let from_v2 = ModelArtifact::decode(&v2_bytes).expect("v2 decodes");
    assert_eq!(artifact, from_v2, "v2 decodes into the default-config plan");
    assert!(
        from_v2
            .steps
            .iter()
            .all(|s| s.exec == patdnn_serve::ExecConfig::default()),
        "v2 steps decode to the default exec config"
    );

    let engine_now = Engine::new(artifact, EngineOptions::default()).expect("current engine");
    let engine_v2 = Engine::new(from_v2, EngineOptions::default()).expect("v2 engine");
    for batch in [1usize, 3] {
        let x = Tensor::randn(&[batch, 3, 32, 32], &mut rng);
        let a = engine_now.infer(&x).expect("current infer");
        let b = engine_v2.infer(&x).expect("v2 infer");
        let bits_a: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits_a, bits_b,
            "batch {batch}: outputs must be bit-identical"
        );
    }
}

/// The tuned-plan pipeline end to end: `Estimate` compiles per-layer
/// exec configs, the v3 artifact round-trips them intact, and the
/// reloaded engine serves without retuning, numerically equivalent to
/// the default plan.
#[test]
fn tuned_artifact_serves_tuned_without_retuning() {
    use patdnn_serve::compile::{compile_network_with, CompileOptions};
    use patdnn_serve::TunePolicy;

    let mut rng = Rng::seed_from(35);
    let mut net = patdnn_nn::models::resnet_small(10, &mut rng);
    pattern_project_network(&mut net, 8, 3.6);
    let default_plan = compile_network("tuned", &net, [3, 32, 32]).expect("compiles");
    let tuned_plan = compile_network_with(
        "tuned",
        &net,
        [3, 32, 32],
        &CompileOptions {
            tune: TunePolicy::Estimate,
            ..CompileOptions::default()
        },
    )
    .expect("compiles tuned");

    // The estimator makes per-layer choices: the plan dump must not be
    // one uniform config across pattern-conv steps.
    let configs: Vec<_> = tuned_plan
        .steps
        .iter()
        .filter(|s| s.op.kind() == "pattern-conv")
        .map(|s| s.exec)
        .collect();
    assert!(configs.len() > 1, "resnet_small has several pattern convs");
    assert!(
        configs.iter().any(|c| *c != configs[0]),
        "estimated configs must be non-uniform across layers"
    );

    // v3 round trip preserves every step's config; the same compile is
    // reproducible (tuning is deterministic under Estimate).
    let reloaded = ModelArtifact::decode(&tuned_plan.encode()).expect("v3 round trip");
    assert_eq!(tuned_plan, reloaded, "per-step configs survive the codec");

    // Tuned and default plans agree numerically with the nn reference.
    let tuned_engine = Engine::new(reloaded, EngineOptions::default()).expect("tuned engine");
    let default_engine = Engine::new(default_plan, EngineOptions::default()).expect("engine");
    let x = Tensor::randn(&[2, 3, 32, 32], &mut rng);
    let want = net.forward(&x, Mode::Eval);
    let tuned_out = tuned_engine.infer(&x).expect("tuned infer");
    let default_out = default_engine.infer(&x).expect("default infer");
    assert!(
        want.approx_eq(&tuned_out, 1e-4),
        "tuned engine diverges from the nn reference: {:?}",
        want.max_abs_diff(&tuned_out)
    );
    assert!(default_out.approx_eq(&tuned_out, 1e-4));
}

/// Backward compatibility: a tuned plan encoded in the v3 layout (exec
/// configs but no precision tags) decodes in the current build with
/// every step at f32 precision and infers bit-identically to the v4
/// encoding of the same plan.
#[test]
fn cross_version_v3_artifact_infers_bit_identically() {
    use patdnn_serve::compile::{compile_network_with, CompileOptions};
    use patdnn_serve::{Precision, TunePolicy};

    let mut rng = Rng::seed_from(34);
    let mut net = patdnn_nn::models::resnet_small(10, &mut rng);
    pattern_project_network(&mut net, 8, 3.6);
    let mut artifact = compile_network_with(
        "v3compat",
        &net,
        [3, 32, 32],
        &CompileOptions {
            tune: TunePolicy::Estimate,
            ..CompileOptions::default()
        },
    )
    .expect("compiles tuned");
    // v3 predates per-step algorithm choice: the layout can only carry
    // direct plans (the encoder refuses anything else with a typed
    // error), so normalize the tuned plan before the round trip.
    for step in &mut artifact.steps {
        step.exec.algo = patdnn_compiler::tune::space::ConvAlgo::Direct;
    }

    let v3_bytes = artifact.encode_v3().expect("f32 plans encode as v3");
    let from_v3 = ModelArtifact::decode(&v3_bytes).expect("v3 decodes");
    assert_eq!(artifact, from_v3, "v3 decodes into the tuned plan");
    assert!(
        from_v3.steps.iter().all(|s| s.precision == Precision::F32),
        "v3 steps decode to f32 precision"
    );

    let engine_now = Engine::new(artifact, EngineOptions::default()).expect("current engine");
    let engine_v3 = Engine::new(from_v3, EngineOptions::default()).expect("v3 engine");
    for batch in [1usize, 3] {
        let x = Tensor::randn(&[batch, 3, 32, 32], &mut rng);
        let a = engine_now.infer(&x).expect("current infer");
        let b = engine_v3.infer(&x).expect("v3 infer");
        let bits_a: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits_a, bits_b,
            "batch {batch}: outputs must be bit-identical"
        );
    }
}

/// The INT8 path across the version boundary: a quantized v4 artifact
/// round-trips bit-identically, and every legacy encoder refuses it
/// with a typed error instead of silently dropping precision.
#[test]
fn cross_version_quantized_v4_round_trips_and_legacy_encoders_refuse() {
    use patdnn_serve::quant::compile_network_int8;
    use patdnn_serve::{ArtifactError, CompileOptions, Precision};

    let mut rng = Rng::seed_from(36);
    let mut net = patdnn_nn::models::resnet_small(10, &mut rng);
    pattern_project_network(&mut net, 8, 3.6);
    let calib = patdnn_nn::calibrate::calibration_batch([3, 32, 32], 4, 37);
    let artifact =
        compile_network_int8("qv4", &net, [3, 32, 32], &CompileOptions::default(), &calib)
            .expect("quantized compile");
    assert!(
        artifact
            .steps
            .iter()
            .any(|s| s.precision == Precision::Int8),
        "plan carries int8 steps"
    );

    // v4 round trip: structurally equal, bit-identical inference.
    let reloaded = ModelArtifact::decode(&artifact.encode()).expect("v4 decodes");
    assert_eq!(artifact, reloaded);
    let engine_a = Engine::new(artifact.clone(), EngineOptions::default()).expect("engine");
    let engine_b = Engine::new(reloaded, EngineOptions::default()).expect("engine");
    let out_a = engine_a.infer(&calib).expect("infer");
    let out_b = engine_b.infer(&calib).expect("infer");
    let bits_a: Vec<u32> = out_a.data().iter().map(|v| v.to_bits()).collect();
    let bits_b: Vec<u32> = out_b.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits_a, bits_b, "reloaded quantized plan infers identically");

    // Legacy encoders refuse with the typed precision error.
    for (version, result) in [
        ("v3", artifact.encode_v3()),
        ("v2", artifact.encode_v2()),
        ("v1", artifact.encode_v1()),
    ] {
        let err = result.expect_err("legacy encoders must refuse int8 plans");
        assert!(
            matches!(&err, ArtifactError::Malformed(msg) if msg.contains("int8")),
            "{version}: got {err}"
        );
    }
}

/// A quantized model served through the dynamic-batching server:
/// batched results equal per-request engine results, and the outputs
/// track the f32 plan within the calibration tolerance.
#[test]
fn quantized_model_serves_through_dynamic_batching() {
    use patdnn_serve::quant::compile_network_int8;
    use patdnn_serve::CompileOptions;

    let mut rng = Rng::seed_from(38);
    let mut net = vgg_small(10, &mut rng);
    pattern_project_network(&mut net, 8, 3.6);
    let calib = patdnn_nn::calibrate::calibration_batch([3, 32, 32], 4, 39);
    let f32_plan = compile_network("q", &net, [3, 32, 32]).expect("compiles");
    let int8_plan =
        compile_network_int8("q", &net, [3, 32, 32], &CompileOptions::default(), &calib)
            .expect("quantized compile");
    let f32_engine = Engine::new(f32_plan, EngineOptions::default()).expect("engine");

    let registry = Arc::new(ModelRegistry::new());
    let engine = registry.register(
        "q",
        Engine::new(int8_plan, EngineOptions::default()).unwrap(),
    );
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 2,
            batch: BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(5),
                ..BatchPolicy::default()
            },
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    // Serve the calibration items themselves: scales were fit on them,
    // so the deviation bound is the calibrated one.
    let item_len = 3 * 32 * 32;
    let inputs: Vec<Tensor> = (0..4)
        .map(|i| {
            let slice = calib.data()[i * item_len..(i + 1) * item_len].to_vec();
            Tensor::from_vec(&[1, 3, 32, 32], slice).expect("calib item")
        })
        .collect();
    let handles: Vec<_> = inputs
        .iter()
        .map(|x| {
            client
                .request("q")
                .input(x.clone())
                .submit()
                .expect("submit")
        })
        .collect();
    for (x, handle) in inputs.iter().zip(handles) {
        let resp = handle.wait().into_result().expect("served");
        let direct = engine.infer(x).expect("direct");
        assert!(
            direct.approx_eq(&resp.output, 1e-5),
            "batched quantized result diverges from per-request result"
        );
        let reference = f32_engine.infer(x).expect("f32 reference");
        let dev = reference.max_abs_diff(&resp.output).expect("same shape");
        assert!(dev <= 1e-2, "served int8 deviates {dev} from f32");
    }
    server.shutdown();
}

/// A pruned residual model served through the dynamic-batching server:
/// batched results equal per-request engine results.
#[test]
fn residual_model_serves_through_dynamic_batching() {
    let mut rng = Rng::seed_from(32);
    let mut net = patdnn_nn::models::resnet_small(10, &mut rng);
    pattern_project_network(&mut net, 8, 3.6);
    let artifact = compile_network("res", &net, [3, 32, 32]).expect("compiles");
    let registry = Arc::new(ModelRegistry::new());
    let engine = registry.register(
        "res",
        Engine::new(artifact, EngineOptions::default()).unwrap(),
    );
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 2,
            batch: BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(5),
                ..BatchPolicy::default()
            },
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let inputs: Vec<Tensor> = (0..8)
        .map(|_| Tensor::randn(&[1, 3, 32, 32], &mut rng))
        .collect();
    let handles: Vec<_> = inputs
        .iter()
        .map(|x| {
            client
                .request("res")
                .input(x.clone())
                .submit()
                .expect("submit")
        })
        .collect();
    for (x, handle) in inputs.iter().zip(handles) {
        let resp = handle.wait().into_result().expect("served");
        let direct = engine.infer(x).expect("direct");
        assert!(
            direct.approx_eq(&resp.output, 1e-5),
            "batched residual result diverges from per-request result"
        );
    }
    server.shutdown();
}

/// Dynamic batching: results served through the batching queue equal
/// per-request engine results, request by request.
#[test]
fn batched_serving_matches_per_request_inference() {
    let net = pruned_cnn(5);
    let artifact = compile_network("batch", &net, [3, 8, 8]).expect("compiles");
    let registry = Arc::new(ModelRegistry::new());
    let engine = registry.register(
        "batch",
        Engine::new(artifact, EngineOptions::default()).unwrap(),
    );

    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 2,
            batch: BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(5),
                ..BatchPolicy::default()
            },
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    );

    // Submit 12 concurrent requests, then compare each against a direct
    // (batch-1) engine run of the same input.
    let mut rng = Rng::seed_from(6);
    let inputs: Vec<Tensor> = (0..12)
        .map(|_| Tensor::randn(&[1, 3, 8, 8], &mut rng))
        .collect();
    let client = server.client();
    let handles: Vec<_> = inputs
        .iter()
        .map(|x| {
            client
                .request("batch")
                .input(x.clone())
                .submit()
                .expect("submit")
        })
        .collect();
    let mut saw_multi_request_batch = false;
    for (x, handle) in inputs.iter().zip(handles) {
        let resp = handle.wait().into_result().expect("served");
        let direct = engine.infer(x).expect("direct");
        assert!(
            direct.approx_eq(&resp.output, 1e-5),
            "batched result diverges from per-request result"
        );
        saw_multi_request_batch |= resp.batch_size > 1;
    }
    assert!(
        saw_multi_request_batch,
        "12 concurrent requests should form at least one multi-request batch"
    );

    let snap = server.metrics().snapshot();
    assert_eq!(snap.requests, 12);
    assert!(snap.batches < 12, "batching amortized executions");
    assert!(snap.p50_ms <= snap.p99_ms);
    server.shutdown();
}

/// Backpressure: a full queue rejects with QueueFull rather than
/// blocking or growing unboundedly — the lifecycle builder surfaces
/// the same typed `QueueFull` (not `Shed`) the legacy shim did.
#[test]
fn queue_backpressure_rejects_overload() {
    let net = pruned_cnn(7);
    let artifact = compile_network("bp", &net, [3, 8, 8]).expect("compiles");
    let registry = Arc::new(ModelRegistry::new());
    registry.register(
        "bp",
        Engine::new(artifact, EngineOptions::default()).unwrap(),
    );

    // One worker held busy by a huge max_wait is enough to fill a tiny
    // queue synchronously.
    let server = Server::start(
        registry,
        ServerConfig {
            workers: 1,
            batch: BatchPolicy {
                max_batch: 64,
                max_wait: Duration::from_secs(3600),
                ..BatchPolicy::default()
            },
            queue_capacity: 2,
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let x = || Tensor::zeros(&[1, 3, 8, 8]);
    // The worker may grab the first request into its forming batch; the
    // queue holds 2 more; beyond that pushes must fail.
    let mut rejected = false;
    let mut pending = Vec::new();
    for _ in 0..8 {
        match client.request("bp").input(x()).submit() {
            Ok(handle) => pending.push(handle),
            Err(ServeError::QueueFull) => {
                rejected = true;
                break;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(rejected, "bounded queue must reject overload");
    assert!(server.metrics().snapshot().rejected >= 1);
}
