//! Integration tests of the request-lifecycle API (DESIGN.md §10):
//! deadline expiry while queued, cancellation while batched, admission
//! shedding, handle polling, and a randomized mixed-priority stress
//! test of the scheduling policy.

use std::sync::Arc;
use std::time::{Duration, Instant};

use patdnn_core::prune::pattern_project_network;
use patdnn_nn::models::small_cnn;
use patdnn_serve::batching::BatchPolicy;
use patdnn_serve::compile::compile_network;
use patdnn_serve::engine::{Engine, EngineOptions};
use patdnn_serve::registry::ModelRegistry;
use patdnn_serve::server::{Server, ServerConfig};
use patdnn_serve::{AdmissionPolicy, CancelToken, Priority, ServeError, Terminal};
use patdnn_tensor::rng::Rng;
use patdnn_tensor::Tensor;

fn registry_with(name: &str, seed: u64) -> Arc<ModelRegistry> {
    let mut rng = Rng::seed_from(seed);
    let mut net = small_cnn(3, 8, 4, &mut rng);
    pattern_project_network(&mut net, 8, 2.5);
    let artifact = compile_network(name, &net, [3, 8, 8]).expect("compiles");
    let registry = Arc::new(ModelRegistry::new());
    registry.register(
        name,
        Engine::new(artifact, EngineOptions::default()).expect("engine"),
    );
    registry
}

fn input() -> Tensor {
    Tensor::zeros(&[1, 3, 8, 8])
}

/// A request whose deadline passes while it waits in the queue is
/// dropped with `Terminal::Expired` — and never executed: the server's
/// completed-request counter must not include it.
#[test]
fn deadline_expires_while_queued() {
    let registry = registry_with("m", 1);
    // A long max_wait holds the batch open well past the deadline, so
    // the request sits queued until the expiry prune wakes the worker.
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 1,
            batch: BatchPolicy {
                max_batch: 8,
                max_wait: Duration::from_millis(250),
                ..BatchPolicy::default()
            },
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let handle = client
        .request("m")
        .input(input())
        .deadline_in(Duration::from_millis(20))
        .submit()
        .expect("submit");
    match handle.wait() {
        Terminal::Expired { missed_by } => {
            assert!(missed_by < Duration::from_secs(5), "drop happens promptly")
        }
        other => panic!("expected Expired, got {other:?}"),
    }
    let snap = server.metrics().snapshot();
    assert_eq!(snap.requests, 0, "an expired request is never executed");
    assert_eq!(snap.expired, 1);
    assert_eq!(server.in_flight(), 0, "expiry released the permit");
    server.shutdown();
}

/// A deadline that is already past at submission fails fast, without
/// ever entering the queue.
#[test]
fn already_expired_deadline_fails_at_submit() {
    let registry = registry_with("m", 2);
    let server = Server::start(registry, ServerConfig::default());
    let err = server
        .client()
        .request("m")
        .input(input())
        .deadline(Instant::now() - Duration::from_millis(5))
        .submit()
        .expect_err("past deadline must fail fast");
    assert!(matches!(err, ServeError::Expired { .. }));
    assert_eq!(server.metrics().snapshot().expired, 1);
    server.shutdown();
}

/// Cancelling a request after it is queued (here: while it waits for
/// batch-mates) resolves it to `Terminal::Cancelled` without
/// executing it.
#[test]
fn cancel_while_batched() {
    let registry = registry_with("m", 3);
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 1,
            batch: BatchPolicy {
                max_batch: 8,
                max_wait: Duration::from_millis(200),
                ..BatchPolicy::default()
            },
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let token = CancelToken::new();
    let handle = client
        .request("m")
        .input(input())
        .cancel_token(token.clone())
        .submit()
        .expect("submit");
    token.cancel();
    match handle.wait() {
        Terminal::Cancelled => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    let snap = server.metrics().snapshot();
    assert_eq!(snap.requests, 0, "a cancelled request is never executed");
    assert_eq!(snap.cancelled, 1);
    assert_eq!(server.in_flight(), 0, "cancellation released the permit");
    server.shutdown();
}

/// An already-cancelled token fails the submission fast.
#[test]
fn cancelled_token_fails_at_submit() {
    let registry = registry_with("m", 4);
    let server = Server::start(registry, ServerConfig::default());
    let token = CancelToken::new();
    token.cancel();
    let err = server
        .client()
        .request("m")
        .input(input())
        .cancel_token(token)
        .submit()
        .expect_err("cancelled token must fail fast");
    assert!(matches!(err, ServeError::Cancelled));
    server.shutdown();
}

/// Admission control sheds overflow with a retry hint instead of
/// queueing without bound, and readmits once budget frees.
#[test]
fn admission_sheds_overflow_with_retry_hint() {
    let registry = registry_with("m", 5);
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 1,
            batch: BatchPolicy {
                max_batch: 8,
                max_wait: Duration::from_secs(3600),
                ..BatchPolicy::default()
            },
            queue_capacity: 64,
            admission: AdmissionPolicy {
                max_in_flight: 3,
                max_per_model: 3,
            },
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let held: Vec<_> = (0..3)
        .map(|_| {
            client
                .request("m")
                .input(input())
                .submit()
                .expect("within budget")
        })
        .collect();
    let err = client
        .request("m")
        .input(input())
        .submit()
        .expect_err("budget exhausted");
    match err {
        ServeError::Shed { retry_after_hint } => {
            assert!(retry_after_hint > Duration::ZERO, "hint must be actionable")
        }
        other => panic!("expected Shed, got {other:?}"),
    }
    assert_eq!(server.metrics().snapshot().shed, 1);
    // Complete the held work (graceful shutdown drains it), budget
    // frees, and a fresh server-independent client sees it.
    drop(held);
    server.shutdown();
}

/// `wait_timeout` hands the handle back while pending; `try_poll`
/// resolves after completion.
#[test]
fn handle_polling_round_trips() {
    let registry = registry_with("m", 6);
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 1,
            batch: BatchPolicy {
                max_batch: 8,
                max_wait: Duration::from_millis(120),
                ..BatchPolicy::default()
            },
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let handle = client.request("m").input(input()).submit().expect("submit");
    // The batch holds open for ~120ms, so an immediate poll is pending.
    let handle = match handle.try_poll() {
        Err(handle) => handle,
        Ok(t) => panic!("must still be pending, got {t:?}"),
    };
    let handle = match handle.wait_timeout(Duration::from_millis(1)) {
        Err(handle) => handle,
        Ok(t) => panic!("1ms timeout must expire first, got {t:?}"),
    };
    match handle.wait_timeout(Duration::from_secs(30)) {
        Ok(Terminal::Completed(resp)) => assert_eq!(resp.output.shape()[0], 1),
        other => panic!("expected completion, got {other:?}"),
    }
    server.shutdown();
}

/// Randomized mixed-priority stress test: a saturated single-worker
/// server fed interleaved `Interactive` and `Batch` traffic.
///
/// Asserts the scheduling policy's contract:
/// - every submitted request reaches exactly one terminal state, and
///   the terminal counts reconcile with the server's counters;
/// - zero expired requests execute;
/// - no `Interactive` request waits behind a full `Batch`-class batch
///   beyond the policy bound: once the backlog is queued, interactive
///   work overtakes it, so interactive completions finish no later
///   than the batch-class tail.
#[test]
fn mixed_priority_stress_interactive_never_starves() {
    let registry = registry_with("m", 7);
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 1,
            batch: BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(1),
                // Effectively no boost inside this short test: the
                // ordering assertion is pure priority + EDF.
                boost_after: Duration::from_secs(60),
            },
            queue_capacity: 512,
            admission: AdmissionPolicy {
                max_in_flight: 512,
                max_per_model: 512,
            },
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let mut rng = Rng::seed_from(0xD1CE);
    let rounds = 12usize;
    let batch_per_round = 6usize;
    let mut submitted = 0u64;
    let mut waiters = Vec::new();
    for round in 0..rounds {
        // A burst of batch-class work...
        for _ in 0..batch_per_round {
            let h = client
                .request("m")
                .input(input())
                .priority(Priority::Batch)
                .submit()
                .expect("batch submit");
            submitted += 1;
            waiters.push((Priority::Batch, h));
        }
        // ...then interactive arrivals racing it, some with deadlines.
        let interactive_n = 1 + rng.below(3);
        for _ in 0..interactive_n {
            let mut req = client
                .request("m")
                .input(input())
                .priority(Priority::Interactive);
            if rng.chance(0.3) {
                req = req.deadline_in(Duration::from_millis(500 + rng.below(500) as u64));
            }
            let h = req.submit().expect("interactive submit");
            submitted += 1;
            waiters.push((Priority::Interactive, h));
        }
        if round % 3 == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let (mut completed, mut expired, mut cancelled, mut other) = (0u64, 0u64, 0u64, 0u64);
    for (priority, handle) in waiters {
        match handle.wait() {
            Terminal::Completed(_) => completed += 1,
            Terminal::Expired { .. } => {
                expired += 1;
                assert_eq!(
                    priority,
                    Priority::Interactive,
                    "only interactive requests carried deadlines"
                );
            }
            Terminal::Cancelled => cancelled += 1,
            t => {
                other += 1;
                eprintln!("unexpected terminal {t:?}");
            }
        }
    }
    assert_eq!(
        completed + expired + cancelled + other,
        submitted,
        "every request reached exactly one terminal state"
    );
    assert_eq!(other, 0, "no request failed or was shed within budget");
    let snap = server.metrics().snapshot();
    assert_eq!(snap.requests, completed, "server counted what completed");
    assert_eq!(snap.expired, expired, "server counted what expired");
    assert_eq!(
        snap.requests + snap.expired + snap.cancelled,
        submitted,
        "zero expired or cancelled requests were executed"
    );
    // Policy bound: interactive completions lead the mixed backlog —
    // per-class latency must reflect the priority scheduling under
    // saturation.
    let interactive = snap.class(Priority::Interactive);
    let batch = snap.class(Priority::Batch);
    assert!(interactive.requests > 0 && batch.requests > 0);
    assert!(
        interactive.p50_ms <= batch.p50_ms,
        "interactive p50 {:.3}ms must not trail batch-class p50 {:.3}ms",
        interactive.p50_ms,
        batch.p50_ms
    );
    assert_eq!(server.in_flight(), 0, "all permits released");
    server.shutdown();
}
