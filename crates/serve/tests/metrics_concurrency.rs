//! Concurrent metrics recording: many threads hammer `record_batch`,
//! the lifecycle counters, and `snapshot` simultaneously; every
//! snapshot — mid-flight and final — must be internally consistent
//! (no torn counts, class totals never exceeding the global request
//! counter, ordered percentiles).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use patdnn_serve::{Priority, ServerMetrics};

const WRITERS: usize = 8;
const ROUNDS: usize = 200;

/// Each writer round records one batch with one request per priority
/// class, so per-class and global totals are exactly predictable.
fn writer_round(m: &ServerMetrics, round: usize) {
    let d = Duration::from_micros(100 + (round % 50) as u64 * 10);
    m.record_batch(&[
        (Priority::Interactive, d),
        (Priority::Standard, d * 2),
        (Priority::Batch, d * 3),
    ]);
    m.record_batch_exec(d);
    m.record_shed();
    m.record_rejected();
    m.record_expired(1);
    m.record_cancelled(1);
}

/// Invariants that must hold for *any* snapshot, torn or not.
fn assert_consistent(s: &patdnn_serve::MetricsSnapshot) {
    let class_total: u64 = s.classes.iter().map(|c| c.requests).sum();
    // Retained samples can lag the request counter (the counter bumps
    // before the rings fill) but must never exceed it.
    assert!(
        class_total <= s.requests,
        "class totals {class_total} exceed global requests {}",
        s.requests
    );
    assert!(
        s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms,
        "percentiles out of order: p50={} p95={} p99={}",
        s.p50_ms,
        s.p95_ms,
        s.p99_ms
    );
    for c in &s.classes {
        assert!(
            c.p50_ms <= c.p99_ms,
            "{}: class percentiles out of order",
            c.priority.label()
        );
    }
    assert!(s.qps >= 0.0 && s.lifetime_qps >= 0.0);
}

#[test]
fn snapshots_stay_consistent_under_concurrent_recording() {
    let metrics = Arc::new(ServerMetrics::new());
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let metrics = Arc::clone(&metrics);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    writer_round(&metrics, w * ROUNDS + round);
                }
            });
        }
        // Two readers snapshot continuously while the writers run.
        for _ in 0..2 {
            let metrics = Arc::clone(&metrics);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut taken = 0u32;
                while !done.load(Ordering::Relaxed) {
                    assert_consistent(&metrics.snapshot());
                    taken += 1;
                }
                assert!(taken > 0, "readers must observe mid-flight state");
            });
        }
        // Writers are the scope's other threads; signal the readers
        // once a final settled snapshot is reachable. (Joining happens
        // at scope exit; flip the flag after writers finish by doing
        // the wait in another thread.)
        let metrics = Arc::clone(&metrics);
        let done_flag = Arc::clone(&done);
        scope.spawn(move || {
            let total = (WRITERS * ROUNDS * 3) as u64;
            // Spin until every writer's records are visible.
            while metrics.snapshot().requests < total {
                std::thread::yield_now();
            }
            done_flag.store(true, Ordering::Relaxed);
        });
    });

    // Final snapshot: every count exact, nothing torn or lost.
    let s = metrics.snapshot();
    let rounds_total = (WRITERS * ROUNDS) as u64;
    assert_eq!(s.requests, rounds_total * 3, "3 requests per round");
    assert_eq!(s.batches, rounds_total);
    assert_eq!(s.shed, rounds_total);
    assert_eq!(s.rejected, rounds_total);
    assert_eq!(s.expired, rounds_total);
    assert_eq!(s.cancelled, rounds_total);
    // Volume stayed under the per-class ring capacity, so the class
    // totals must sum exactly to the global counter.
    let class_total: u64 = s.classes.iter().map(|c| c.requests).sum();
    assert_eq!(class_total, s.requests, "class totals sum to global");
    for c in &s.classes {
        assert_eq!(
            c.requests,
            rounds_total,
            "{}: exact per-class count",
            c.priority.label()
        );
        assert!(c.p50_ms > 0.0);
    }
    assert_consistent(&s);
    // The interactive class recorded strictly faster latencies than
    // batch (d vs 3d): aggregation must keep the classes segregated.
    assert!(
        s.class(Priority::Interactive).mean_ms < s.class(Priority::Batch).mean_ms,
        "per-class streams must not bleed into each other"
    );
}
