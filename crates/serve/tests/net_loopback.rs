//! Loopback tests of the networked front-end and the shard router:
//! the wire protocol must surface exactly the typed terminals the
//! in-process lifecycle API produces (frozen v1 codes), and the router
//! must retry sheds, survive dead replicas, and expose its counters.

use std::sync::Arc;
use std::time::Duration;

use patdnn_core::prune::pattern_project_network;
use patdnn_nn::models::small_cnn;
use patdnn_serve::batching::BatchPolicy;
use patdnn_serve::compile::compile_network;
use patdnn_serve::engine::{Engine, EngineOptions};
use patdnn_serve::net::{http_get, NetClient, NetServer, NetServerConfig};
use patdnn_serve::registry::ModelRegistry;
use patdnn_serve::request::{AdmissionPolicy, Priority, RETRY_HINT_CEIL, RETRY_HINT_FLOOR};
use patdnn_serve::router::{Router, RouterConfig, RouterServer};
use patdnn_serve::server::{Server, ServerConfig};
use patdnn_serve::{ServeError, WireOutcome};
use patdnn_tensor::rng::Rng;
use patdnn_tensor::Tensor;

fn registry_with(name: &str, seed: u64) -> Arc<ModelRegistry> {
    let mut rng = Rng::seed_from(seed);
    let mut net = small_cnn(3, 8, 4, &mut rng);
    pattern_project_network(&mut net, 8, 2.5);
    let artifact = compile_network(name, &net, [3, 8, 8]).expect("compiles");
    let registry = Arc::new(ModelRegistry::new());
    registry.register(
        name,
        Engine::new(artifact, EngineOptions::default()).expect("engine"),
    );
    registry
}

fn input(seed: u64) -> Tensor {
    Tensor::randn(&[1, 3, 8, 8], &mut Rng::seed_from(seed))
}

/// Server whose requests linger in the queue long enough for deadline
/// and cancel races to be deterministic.
fn slow_server(registry: Arc<ModelRegistry>, max_in_flight: usize) -> Server {
    Server::start(
        registry,
        ServerConfig {
            workers: 1,
            batch: BatchPolicy {
                max_batch: 8,
                max_wait: Duration::from_millis(200),
                ..BatchPolicy::default()
            },
            queue_capacity: 64,
            admission: AdmissionPolicy {
                max_in_flight,
                max_per_model: max_in_flight,
            },
            ..ServerConfig::default()
        },
    )
}

/// A remote inference round-trips bit-identically to a direct engine
/// run, over a real TCP socket.
#[test]
fn loopback_inference_matches_direct_engine_run() {
    let registry = registry_with("m", 1);
    let server = Server::start(Arc::clone(&registry), ServerConfig::default());
    let handle = NetServer::bind(server, "127.0.0.1:0", NetServerConfig::default())
        .expect("bind")
        .spawn();

    let x = input(2);
    let want = registry.get("m").expect("model").infer(&x).expect("infer");
    let mut client = NetClient::connect(&handle.addr().to_string()).expect("connect");
    match client
        .infer("m", &x, Priority::Standard, None)
        .expect("wire infer")
    {
        WireOutcome::Completed {
            output,
            latency,
            batch_size,
        } => {
            let bits_want: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
            let bits_got: Vec<u32> = output.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_want, bits_got, "wire output must be bit-identical");
            assert!(latency > Duration::ZERO);
            assert!(batch_size >= 1);
        }
        other => panic!("expected completion, got {other:?}"),
    }
    // Unknown models fail typed over the wire, with the frozen code.
    match client
        .infer("nope", &x, Priority::Standard, None)
        .expect("wire infer")
    {
        WireOutcome::Rejected(e) => {
            assert!(matches!(e, ServeError::UnknownModel(_)), "got {e:?}");
            assert_eq!(e.code(), ServeError::UnknownModel(String::new()).code());
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    handle.shutdown(true).expect("clean shutdown");
}

/// The satellite parity contract: deadline expiry and cancellation
/// produce the same typed terminals (same v1 codes) over the wire as
/// in-process.
#[test]
fn deadline_and_cancel_terminals_match_in_process() {
    // In-process reference: an aggressive deadline on a slow queue
    // expires before execution; a cancelled token resolves Cancelled.
    let in_process = slow_server(registry_with("m", 3), 64);
    let client = in_process.client();
    let expired_terminal = client
        .request("m")
        .input(input(4))
        .deadline_in(Duration::from_millis(5))
        .submit()
        .expect("submit")
        .wait();
    assert_eq!(expired_terminal.code(), 1, "in-process expiry code");
    let cancel_handle = client
        .request("m")
        .input(input(5))
        .submit()
        .expect("submit");
    cancel_handle.cancel();
    let cancelled_terminal = cancel_handle.wait();
    assert_eq!(cancelled_terminal.code(), 2, "in-process cancel code");
    in_process.shutdown();

    // Same scenarios over the wire.
    let server = slow_server(registry_with("m", 3), 64);
    let handle = NetServer::bind(server, "127.0.0.1:0", NetServerConfig::default())
        .expect("bind")
        .spawn();
    let mut client = NetClient::connect(&handle.addr().to_string()).expect("connect");

    let wire_expired = client
        .infer(
            "m",
            &input(4),
            Priority::Standard,
            Some(Duration::from_millis(5)),
        )
        .expect("wire infer");
    assert_eq!(
        wire_expired.terminal_code(),
        expired_terminal.code(),
        "deadline expiry must carry the same terminal over the wire: {wire_expired:?}"
    );
    match &wire_expired {
        WireOutcome::Rejected(ServeError::Expired { .. }) => {}
        other => panic!("expected typed expiry, got {other:?}"),
    }

    let id = client
        .submit("m", &input(5), Priority::Standard, None)
        .expect("submit");
    client.cancel(id).expect("cancel frame");
    let (got_id, wire_cancelled) = client.recv().expect("response");
    assert_eq!(got_id, id);
    assert_eq!(
        wire_cancelled.terminal_code(),
        cancelled_terminal.code(),
        "cancellation must carry the same terminal over the wire: {wire_cancelled:?}"
    );
    match &wire_cancelled {
        WireOutcome::Rejected(ServeError::Cancelled) => {}
        other => panic!("expected typed cancellation, got {other:?}"),
    }
    handle.shutdown(true).expect("clean shutdown");
}

/// Shed responses cross the wire typed, with a clamped nonzero retry
/// hint (the satellite contract that keeps router retry loops from
/// spinning).
#[test]
fn shed_over_the_wire_carries_clamped_retry_hint() {
    let server = slow_server(registry_with("m", 6), 1);
    let handle = NetServer::bind(server, "127.0.0.1:0", NetServerConfig::default())
        .expect("bind")
        .spawn();
    let mut client = NetClient::connect(&handle.addr().to_string()).expect("connect");

    // First request takes the single in-flight slot and lingers in the
    // 200ms batch window; the second is shed at admission.
    let first = client
        .submit("m", &input(7), Priority::Standard, None)
        .expect("submit");
    let second = client
        .submit("m", &input(8), Priority::Standard, None)
        .expect("submit");
    let (id, outcome) = client.recv().expect("response");
    assert_eq!(id, second, "the shed rejection must come back first");
    match outcome {
        WireOutcome::Rejected(ServeError::Shed { retry_after_hint }) => {
            assert!(
                retry_after_hint >= RETRY_HINT_FLOOR && retry_after_hint <= RETRY_HINT_CEIL,
                "hint {retry_after_hint:?} escaped the clamp band"
            );
        }
        other => panic!("expected typed shed, got {other:?}"),
    }
    let (id, outcome) = client.recv().expect("response");
    assert_eq!(id, first);
    assert!(
        outcome.is_completed(),
        "first request completes: {outcome:?}"
    );
    handle.shutdown(true).expect("clean shutdown");
}

/// The HTTP shim on the wire port: `/healthz` and `/metrics` answer,
/// unknown paths 404, and the metrics reflect served traffic.
#[test]
fn http_shim_serves_metrics_and_healthz() {
    let registry = registry_with("m", 9);
    let server = Server::start(registry, ServerConfig::default());
    let handle = NetServer::bind(server, "127.0.0.1:0", NetServerConfig::default())
        .expect("bind")
        .spawn();
    let addr = handle.addr().to_string();

    let mut client = NetClient::connect(&addr).expect("connect");
    let outcome = client
        .infer("m", &input(10), Priority::Interactive, None)
        .expect("wire infer");
    assert!(outcome.is_completed());

    let health = http_get(&addr, "/healthz").expect("healthz");
    assert!(health.contains("ok models=1"), "got {health:?}");
    let metrics = http_get(&addr, "/metrics").expect("metrics");
    assert!(
        metrics.contains("patdnn_requests_total 1"),
        "served traffic must show up: {metrics:?}"
    );
    assert!(metrics.contains("patdnn_class_requests{class=\"interactive\"} 1"));
    let missing = http_get(&addr, "/nope").expect("request");
    assert!(missing.contains("not found"));
    handle.shutdown(true).expect("clean shutdown");
}

/// Router end-to-end over loopback: a replica at capacity sheds, the
/// router retries on the next replica, and both requests complete.
#[test]
fn router_retries_shed_requests_on_the_next_replica() {
    // Two single-slot replicas over the same model.
    let replica_a = NetServer::bind(
        slow_server(registry_with("m", 11), 1),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .expect("bind a")
    .spawn();
    let replica_b = NetServer::bind(
        slow_server(registry_with("m", 11), 1),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .expect("bind b")
    .spawn();

    let router = Arc::new(Router::new(RouterConfig {
        replicas: vec![replica_a.addr().to_string(), replica_b.addr().to_string()],
        ..RouterConfig::default()
    }));
    // Both requests target one model, so both prefer the same replica;
    // the second must be shed there and retried on the other.
    let results: Vec<WireOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let router = Arc::clone(&router);
                scope.spawn(move || {
                    router.route("m", &input(12 + i), Priority::Standard, None, None)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("route"))
            .collect()
    });
    for outcome in &results {
        assert!(outcome.is_completed(), "got {outcome:?}");
    }
    let snap = router.metrics_snapshot();
    assert_eq!(snap.completed, 2);
    assert!(
        snap.shed_retries >= 1,
        "the saturated replica must have caused a retry: {snap:?}"
    );
    assert!(
        snap.replicas.iter().all(|r| r.1 >= 1),
        "both replicas must have served work: {snap:?}"
    );
    replica_a.shutdown(true).expect("drain a");
    replica_b.shutdown(true).expect("drain b");
}

/// A dead replica is retried around, ejected after the configured
/// failures, and the fleet keeps serving; the router front-end port
/// exposes the counters over HTTP.
#[test]
fn router_ejects_dead_replicas_and_keeps_serving() {
    let live = NetServer::bind(
        Server::start(registry_with("m", 13), ServerConfig::default()),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .expect("bind")
    .spawn();

    // Port 1 is never listening: connects fail fast.
    let router_server = RouterServer::bind(
        Router::new(RouterConfig {
            replicas: vec!["127.0.0.1:1".into(), live.addr().to_string()],
            eject_after: 1,
            cooldown: Duration::from_secs(30),
            connect_timeout: Duration::from_millis(200),
            ..RouterConfig::default()
        }),
        "127.0.0.1:0",
    )
    .expect("bind router");
    let router = router_server.router();
    let handle = router_server.spawn();

    // Route through the router's own wire port, several models so at
    // least one prefers the dead replica first.
    let mut client = NetClient::connect(&handle.addr().to_string()).expect("connect");
    for i in 0..8u64 {
        let outcome = client
            .infer("m", &input(20 + i), Priority::Standard, None)
            .expect("wire infer");
        assert!(outcome.is_completed(), "request {i} got {outcome:?}");
    }
    let snap = router.metrics_snapshot();
    assert_eq!(snap.completed, 8, "{snap:?}");
    // The dead replica is first on the ring for the model or not; in
    // either case no request may fail. If it was preferred, it must now
    // be ejected after one transport failure.
    if snap.transport_retries > 0 {
        assert_eq!(snap.ejections, 1, "{snap:?}");
        assert!(snap.replicas[0].3, "dead replica marked ejected: {snap:?}");
    }

    let metrics = http_get(&handle.addr().to_string(), "/metrics").expect("metrics");
    assert!(
        metrics.contains("patdnn_router_completed_total 8"),
        "got {metrics:?}"
    );
    let health = http_get(&handle.addr().to_string(), "/healthz").expect("healthz");
    assert!(health.contains("ok replicas=2"), "got {health:?}");

    handle.shutdown().expect("router shutdown");
    live.shutdown(true).expect("drain");
}
