//! Integration tests of end-to-end request tracing (DESIGN.md §11):
//! under `TelemetryPolicy::Full` a served request leaves a complete
//! span tree whose stage durations tile its measured end-to-end
//! latency; `Off` records nothing; `Sampled` traces one in N.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use patdnn_core::prune::pattern_project_network;
use patdnn_nn::models::small_cnn;
use patdnn_serve::batching::BatchPolicy;
use patdnn_serve::compile::compile_network;
use patdnn_serve::engine::{Engine, EngineOptions};
use patdnn_serve::registry::ModelRegistry;
use patdnn_serve::server::{Server, ServerConfig};
use patdnn_serve::{SpanKind, Stage, TelemetryPolicy, TraceId};
use patdnn_tensor::rng::Rng;
use patdnn_tensor::Tensor;

fn registry_with(name: &str, seed: u64) -> Arc<ModelRegistry> {
    let mut rng = Rng::seed_from(seed);
    let mut net = small_cnn(3, 8, 4, &mut rng);
    pattern_project_network(&mut net, 8, 2.5);
    let artifact = compile_network(name, &net, [3, 8, 8]).expect("compiles");
    let registry = Arc::new(ModelRegistry::new());
    registry.register(
        name,
        Engine::new(artifact, EngineOptions::default()).expect("engine"),
    );
    registry
}

fn server_with_policy(policy: TelemetryPolicy) -> Server {
    Server::start(
        registry_with("m", 1),
        ServerConfig {
            workers: 1,
            // A short but non-zero batch window keeps the envelope in
            // the milliseconds, so µs span rounding is far inside the
            // 5% tiling tolerance asserted below.
            batch: BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(2),
                ..BatchPolicy::default()
            },
            telemetry: policy,
            ..ServerConfig::default()
        },
    )
}

fn input() -> Tensor {
    Tensor::zeros(&[1, 3, 8, 8])
}

/// The acceptance criterion for the telemetry subsystem: with the
/// `Full` policy, one served request produces a span tree with every
/// lifecycle stage exactly once, and the stage durations sum to the
/// request envelope within 5%.
#[test]
fn full_policy_leaves_a_complete_span_tree_tiling_the_latency() {
    let server = server_with_policy(TelemetryPolicy::Full);
    let client = server.client();
    let resp = client.infer("m", input()).expect("served");

    let events = server.telemetry().events();
    let request = events
        .iter()
        .find(|e| e.kind == SpanKind::Request)
        .expect("request envelope span");

    // Every lifecycle stage appears exactly once, under the same trace.
    let stages: Vec<_> = events
        .iter()
        .filter(|e| e.trace == request.trace)
        .filter_map(|e| match e.kind {
            SpanKind::Stage(s) => Some((s, e.start_us, e.dur_us)),
            _ => None,
        })
        .collect();
    let labels: BTreeSet<&str> = stages.iter().map(|(s, _, _)| s.label()).collect();
    assert_eq!(stages.len(), Stage::ALL.len(), "one span per stage");
    assert_eq!(
        labels,
        Stage::ALL.iter().map(|s| s.label()).collect(),
        "all six lifecycle stages present"
    );

    // The stages tile the envelope: they are recorded from shared
    // boundary instants, so their sum matches the request span (and
    // the independently measured response latency) to within 5%.
    let stage_sum: u64 = stages.iter().map(|(_, _, dur)| dur).sum();
    let envelope = request.dur_us;
    assert!(envelope > 0, "envelope must have measurable duration");
    let diff = stage_sum.abs_diff(envelope);
    assert!(
        diff as f64 <= envelope as f64 * 0.05,
        "stage sum {stage_sum}µs must tile envelope {envelope}µs within 5%"
    );
    let measured = resp.latency.as_micros() as u64;
    assert!(
        envelope.abs_diff(measured) as f64 <= measured as f64 * 0.05 + 200.0,
        "envelope {envelope}µs must track measured latency {measured}µs"
    );

    // Stages appear in lifecycle order and butt against each other.
    let mut ordered = stages.clone();
    ordered.sort_by_key(|(_, start, _)| *start);
    let order: Vec<_> = ordered.iter().map(|(s, _, _)| *s).collect();
    assert_eq!(order, Stage::ALL.to_vec(), "stages in lifecycle order");

    // Execution was profiled: at least one per-step span under the
    // same trace, and the layer profiles surface in the snapshot.
    let steps = events
        .iter()
        .filter(|e| e.trace == request.trace && matches!(e.kind, SpanKind::Step { .. }))
        .count();
    assert!(steps >= 1, "traced execution must emit step spans");
    let snap = server.snapshot();
    assert!(!snap.layers.is_empty(), "layer profiles in the snapshot");
    assert!(snap.layers.iter().all(|l| l.count >= 1 && l.mean_ms >= 0.0));

    // After the request completes, both gauges must have drained.
    assert_eq!(snap.queue_depth, 0, "queue gauge drains to zero");
    assert_eq!(snap.in_flight, 0, "in-flight gauge drains to zero");

    // The Chrome trace export carries the same spans.
    let json = server.telemetry().chrome_trace_json();
    assert!(json.contains("\"traceEvents\""));
    for stage in Stage::ALL {
        assert!(
            json.contains(&format!("\"name\":\"{}\"", stage.label())),
            "chrome trace must contain a {} span",
            stage.label()
        );
    }
    server.shutdown();
}

/// `Off` is genuinely off: serving requests records no spans, no stage
/// aggregates, and no layer profiles.
#[test]
fn off_policy_records_nothing_while_serving() {
    let server = server_with_policy(TelemetryPolicy::Off);
    let client = server.client();
    for _ in 0..3 {
        client.infer("m", input()).expect("served");
    }
    assert!(server.telemetry().events().is_empty(), "no spans");
    assert!(
        server
            .telemetry()
            .stage_breakdown()
            .iter()
            .all(|s| s.count == 0),
        "no stage aggregates"
    );
    let snap = server.snapshot();
    assert!(snap.layers.is_empty(), "no layer profiles");
    assert_eq!(snap.requests, 3, "serving itself still counted");
    server.shutdown();
}

/// `Sampled { every: 2 }` traces every other submission: 4 serial
/// requests leave exactly 2 distinct request envelopes.
#[test]
fn sampled_policy_traces_one_in_n_requests() {
    let server = server_with_policy(TelemetryPolicy::Sampled { every: 2 });
    let client = server.client();
    for _ in 0..4 {
        client.infer("m", input()).expect("served");
    }
    let events = server.telemetry().events();
    let traced: BTreeSet<TraceId> = events
        .iter()
        .filter(|e| e.kind == SpanKind::Request)
        .map(|e| e.trace)
        .collect();
    assert_eq!(traced.len(), 2, "2 of 4 submissions traced");
    server.shutdown();
}
