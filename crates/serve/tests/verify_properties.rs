//! Soundness property of the plan verifier: the compiler never emits a
//! plan the verifier rejects.
//!
//! `verify()` is the artifact pipeline's single semantic gatekeeper
//! (the engine refuses plans it condemns), so a false positive here
//! would brick a legitimately-compiled model. This sweep compiles
//! across topology (chain CNN and residual DAG), pruning rate, tuning
//! policy, and precision (f32, INT8 convs, fully-INT8), then asserts
//! for every combination that the fresh plan verifies clean, the
//! encode→decode round trip verifies clean (via the default
//! [`LoadPolicy::Verify`] path `decode_verified`), and the engine
//! accepts the plan.

use patdnn_core::prune::pattern_project_network;
use patdnn_nn::calibrate::{calibrate_network, calibration_batch};
use patdnn_nn::models::{resnet_small, small_cnn};
use patdnn_nn::network::Sequential;
use patdnn_serve::artifact::ModelArtifact;
use patdnn_serve::compile::{compile_network_with, CompileOptions};
use patdnn_serve::engine::{Engine, EngineOptions};
use patdnn_serve::quant::{quantize_artifact_with, QuantOptions};
use patdnn_serve::tune::TunePolicy;
use patdnn_serve::verify;
use patdnn_tensor::rng::Rng;

struct Case {
    label: &'static str,
    input: [usize; 3],
    build: fn(&mut Rng) -> Sequential,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            label: "small_cnn",
            input: [3, 12, 12],
            build: |rng| small_cnn(3, 12, 4, rng),
        },
        Case {
            label: "resnet_small",
            input: [3, 32, 32],
            build: |rng| resnet_small(10, rng),
        },
    ]
}

/// Asserts the full acceptance chain for one artifact.
fn assert_accepted(label: &str, artifact: &ModelArtifact) {
    let report = verify::verify(artifact);
    assert!(report.is_ok(), "{label}: fresh plan rejected:\n{report}");
    let reloaded = ModelArtifact::decode_verified(&artifact.encode())
        .unwrap_or_else(|e| panic!("{label}: round trip rejected: {e}"));
    assert_eq!(artifact, &reloaded, "{label}: lossy round trip");
    Engine::new(reloaded, EngineOptions::default())
        .unwrap_or_else(|e| panic!("{label}: engine refused a verified plan: {e}"));
}

#[test]
fn compiler_output_always_verifies() {
    for case in cases() {
        for (rate_label, conn_rate) in [("r2.4", 2.4f32), ("r3.6", 3.6f32)] {
            for (tune_label, tune) in [("off", TunePolicy::Off), ("estimate", TunePolicy::Estimate)]
            {
                let mut rng = Rng::seed_from(0xC0FFEE ^ conn_rate.to_bits() as u64);
                let mut net = (case.build)(&mut rng);
                pattern_project_network(&mut net, 8, conn_rate);
                let opts = CompileOptions {
                    tune,
                    threads: 2,
                    ..CompileOptions::default()
                };
                let label = format!("{} {} {}", case.label, rate_label, tune_label);
                let artifact = compile_network_with(&label, &net, case.input, &opts)
                    .unwrap_or_else(|e| panic!("{label}: compile failed: {e}"));
                assert_accepted(&format!("{label} f32"), &artifact);

                // Both quantization policies over the same plan.
                let calib = calibration_batch(case.input, 2, 99);
                let profile = calibrate_network(&net, &calib)
                    .unwrap_or_else(|e| panic!("{label}: calibration failed: {e}"));
                for (q_label, fc) in [("int8", false), ("int8+fc", true)] {
                    let quantized =
                        quantize_artifact_with(&artifact, &profile, &QuantOptions { fc })
                            .unwrap_or_else(|e| panic!("{label}: quantize failed: {e}"));
                    assert_accepted(&format!("{label} {q_label}"), &quantized);
                }
            }
        }
    }
}
