//! Warm-engine allocation budget: the slot-based plan must execute the
//! pattern-conv path out of pooled buffers, allocating nothing for
//! intermediate activations once warm.
//!
//! A counting global allocator (this test binary's only job — the
//! allocator is process-global) measures allocations across warm
//! `infer` calls. The budget is the response envelope only: cloning the
//! output slot into the returned tensor (data + shape vectors). Every
//! plan-internal buffer — conv outputs, pool outputs, residual-join
//! operands — must come from the reused slot set, so the count is flat
//! in plan depth and identical call over call.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed counter bump;
// every layout/pointer contract is `System`'s own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

use patdnn_compiler::tune::space::ConvAlgo;
use patdnn_core::prune::pattern_project_network;
use patdnn_nn::models::{resnet_small, vgg_small};
use patdnn_nn::network::Sequential;
use patdnn_serve::algo_exec::{fkw_density, WINOGRAD_DENSITY_THRESHOLD};
use patdnn_serve::compile::compile_network;
use patdnn_serve::engine::{Engine, EngineOptions};
use patdnn_serve::{LayerPlan, Precision};
use patdnn_tensor::rng::Rng;
use patdnn_tensor::Tensor;

/// The response envelope: the output tensor clone (data vec + shape
/// vec) plus a small slack for platform-dependent `Vec` behaviour.
const WARM_CALL_BUDGET: usize = 8;

/// Allocations of one warm `infer` call, asserted steady call over call.
fn count_warm(engine: &Engine, name: &str) -> usize {
    let mut rng = Rng::seed_from(77);
    let x = Tensor::randn(&[1, 3, 32, 32], &mut rng);

    // Warm up: first call allocates the slot buffers, second settles any
    // lazy internals.
    engine.infer(&x).expect("warmup 1");
    engine.infer(&x).expect("warmup 2");

    let before = allocations();
    engine.infer(&x).expect("warm call");
    let per_call = allocations() - before;

    // The count must also be stable call over call, not just small.
    let again = allocations();
    engine.infer(&x).expect("warm call 2");
    assert_eq!(
        allocations() - again,
        per_call,
        "{name}: warm allocation count must be steady"
    );
    per_call
}

fn warm_allocation_count(mut net: Sequential, name: &str, precision: Precision) -> usize {
    pattern_project_network(&mut net, 8, 3.6);
    let artifact = match precision {
        Precision::F32 => compile_network(name, &net, [3, 32, 32]).expect("compiles"),
        Precision::Int8 => {
            let calib = patdnn_nn::calibrate::calibration_batch([3, 32, 32], 4, 7);
            patdnn_serve::quant::compile_network_int8(
                name,
                &net,
                [3, 32, 32],
                &patdnn_serve::CompileOptions::default(),
                &calib,
            )
            .expect("quantized compile")
        }
    };
    assert!(
        artifact.steps.iter().all(|s| s.op.kind() != "dense-conv"),
        "{name}: budget only holds on the pattern-conv path"
    );
    let engine = Engine::new(artifact, EngineOptions::default()).expect("engine");
    // Weight pre-packing happens at load: the FC (and any quantized FC)
    // weights are already in micro-kernel panel layout, so the warm path
    // never packs weights.
    assert!(
        engine.packed_weight_bytes() > 0,
        "{name}: weights must pre-pack at engine build"
    );
    count_warm(&engine, name)
}

/// Allocations of a warm engine whose pattern convs run the *densified*
/// micro-kernel lowerings: the executors pack weights at build and pool
/// their patch/panel/tile scratch, so the warm path stays inside the
/// same envelope. Pruned lightly (1.5x) so the layers clear the
/// Winograd density gate; eligible steps alternate between the two
/// densified executors so both pooled paths are measured.
fn warm_allocation_count_densified(mut net: Sequential, name: &str) -> usize {
    pattern_project_network(&mut net, 8, 1.5);
    let mut artifact = compile_network(name, &net, [3, 32, 32]).expect("compiles");
    let (mut wino, mut im2col) = (0, 0);
    for step in &mut artifact.steps {
        if let LayerPlan::PatternConv { stride, fkw, .. } = &step.op {
            let eligible =
                *stride == 1 && fkw.kernel == 3 && fkw_density(fkw) >= WINOGRAD_DENSITY_THRESHOLD;
            step.exec.algo = if eligible && (wino + im2col) % 2 == 0 {
                wino += 1;
                ConvAlgo::Winograd
            } else {
                im2col += 1;
                ConvAlgo::Im2col
            };
        }
    }
    assert!(
        wino > 0 && im2col > 0,
        "{name}: scenario must exercise both densified executors (wino {wino}, im2col {im2col})"
    );
    let engine = Engine::new(artifact, EngineOptions::default()).expect("engine");
    assert!(
        engine.packed_weight_bytes() > 0,
        "{name}: densified weights must pre-pack at engine build"
    );
    count_warm(&engine, name)
}

/// One test fn for both models: the allocation counter is
/// process-global, so concurrent tests would perturb each other's
/// deltas.
#[test]
fn warm_engines_stay_within_the_response_envelope() {
    let mut rng = Rng::seed_from(51);
    let chain = warm_allocation_count(vgg_small(10, &mut rng), "vgg_small", Precision::F32);
    assert!(
        chain <= WARM_CALL_BUDGET,
        "warm chain infer made {chain} allocations (budget {WARM_CALL_BUDGET})"
    );
    let residual =
        warm_allocation_count(resnet_small(10, &mut rng), "resnet_small", Precision::F32);
    assert!(
        residual <= WARM_CALL_BUDGET,
        "warm residual infer made {residual} allocations (budget {WARM_CALL_BUDGET})"
    );
    // The INT8 path pools its quantized-input and accumulator scratch,
    // so a warm quantized engine is held to the same envelope.
    let quantized =
        warm_allocation_count(resnet_small(10, &mut rng), "resnet_int8", Precision::Int8);
    assert!(
        quantized <= WARM_CALL_BUDGET,
        "warm int8 infer made {quantized} allocations (budget {WARM_CALL_BUDGET})"
    );
    // Densified lowerings (im2col + Winograd) pool their scratch too.
    let dense = warm_allocation_count_densified(vgg_small(10, &mut rng), "vgg_densified");
    assert!(
        dense <= WARM_CALL_BUDGET,
        "warm densified infer made {dense} allocations (budget {WARM_CALL_BUDGET})"
    );
}
