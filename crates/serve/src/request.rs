//! The request-lifecycle API: clients, builders, handles, and admission.
//!
//! PatDNN's whole compiler stack exists to hit *real-time* latency
//! targets, so the serving front-end must let a caller express what
//! "real time" means for each request. This module replaces the old
//! fire-and-block `Server::submit`/`infer` pair with an explicit
//! lifecycle:
//!
//! ```text
//! client.request("resnet_small")
//!       .input(x)
//!       .deadline_in(Duration::from_millis(50))
//!       .priority(Priority::Interactive)
//!       .cancel_token(token)
//!       .submit()?              // -> ResponseHandle
//!       .wait()                 // -> Terminal
//! ```
//!
//! A submitted request ends in exactly one [`Terminal`] state:
//! `Completed`, `Expired` (deadline passed before execution — expired
//! requests are *never* executed), `Cancelled`, `Shed` (admission
//! control refused it under load, with a retry hint), or `Failed`
//! (model error, shutdown, internal fault).
//!
//! Admission control bounds the number of in-flight requests globally
//! and per model ([`AdmissionPolicy`]); beyond the budget, new work is
//! shed immediately with [`crate::ServeError::Shed`] instead of
//! queueing without bound. See DESIGN.md §10.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use patdnn_tensor::Tensor;

use crate::batching::PendingRequest;
use crate::metrics::ServerMetrics;
use crate::server::{InferResponse, RequestResult, ServerShared};
use crate::telemetry::{RequestTrace, Stage};
use crate::ServeError;

/// Scheduling class of a request. Within the batch queue, higher
/// priority classes are dispatched first; within one class, requests
/// run earliest-deadline-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive foreground work (dispatched first).
    Interactive,
    /// The default class.
    #[default]
    Standard,
    /// Throughput-oriented background work (dispatched last, but
    /// protected from starvation by a bounded priority boost — see
    /// [`crate::batching::BatchPolicy::boost_after`]).
    Batch,
}

impl Priority {
    /// All classes, highest priority first.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// Scheduling level: 0 is most urgent.
    pub(crate) fn level(self) -> u8 {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Batch => 2,
        }
    }

    /// Class index for metrics arrays (same order as [`Self::ALL`]).
    pub fn index(self) -> usize {
        self.level() as usize
    }

    /// Inverse of [`Self::index`], used by the wire protocol to decode
    /// the class byte. Unknown indices are a typed decode error, not a
    /// default class.
    pub fn from_index(index: usize) -> Option<Priority> {
        Priority::ALL.get(index).copied()
    }

    /// Human-readable class name.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }
}

/// A shareable cancellation flag. Cloning yields another handle to the
/// same flag; cancelling is sticky and best-effort: a request whose
/// token is cancelled before execution is dropped with
/// [`Terminal::Cancelled`], one already executing completes normally.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// The typed terminal state of a submitted request. Every submitted
/// request reaches exactly one of these.
///
/// Part of the frozen v1 request API: each state has a stable numeric
/// wire code ([`Terminal::code`]) the network protocol serializes, and
/// the enum is `#[non_exhaustive]` so codes can be appended without a
/// breaking release. See DESIGN.md §14 for the code table.
#[derive(Debug)]
#[non_exhaustive]
pub enum Terminal {
    /// The request executed; here is its output.
    Completed(InferResponse),
    /// The deadline passed while the request was queued or batched; it
    /// was dropped *without executing*.
    Expired {
        /// How far past the deadline the drop happened.
        missed_by: Duration,
    },
    /// The cancel token fired before execution.
    Cancelled,
    /// Admission control refused the request under load.
    Shed {
        /// Server's estimate of when capacity may free up.
        retry_after_hint: Duration,
    },
    /// Anything else: unknown model mid-flight, shutdown, engine fault.
    Failed(ServeError),
}

impl Terminal {
    /// `true` for [`Terminal::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, Terminal::Completed(_))
    }

    /// The state's stable v1 wire code (frozen; never renumbered).
    /// `Failed` carries the inner [`ServeError::code`] alongside this
    /// on the wire.
    pub fn code(&self) -> u16 {
        match self {
            Terminal::Completed(_) => 0,
            Terminal::Expired { .. } => 1,
            Terminal::Cancelled => 2,
            Terminal::Shed { .. } => 3,
            Terminal::Failed(_) => 4,
        }
    }

    /// Human-readable state label (stable, used in reports and the
    /// router's terminal accounting).
    pub fn label(&self) -> &'static str {
        match self {
            Terminal::Completed(_) => "completed",
            Terminal::Expired { .. } => "expired",
            Terminal::Cancelled => "cancelled",
            Terminal::Shed { .. } => "shed",
            Terminal::Failed(_) => "failed",
        }
    }

    /// Converts back into the flat `Result` the legacy API speaks.
    pub fn into_result(self) -> Result<InferResponse, ServeError> {
        match self {
            Terminal::Completed(resp) => Ok(resp),
            Terminal::Expired { missed_by } => Err(ServeError::Expired { missed_by }),
            Terminal::Cancelled => Err(ServeError::Cancelled),
            Terminal::Shed { retry_after_hint } => Err(ServeError::Shed { retry_after_hint }),
            Terminal::Failed(e) => Err(e),
        }
    }

    fn from_result(result: RequestResult) -> Terminal {
        match result {
            Ok(resp) => Terminal::Completed(resp),
            Err(ServeError::Expired { missed_by }) => Terminal::Expired { missed_by },
            Err(ServeError::Cancelled) => Terminal::Cancelled,
            Err(ServeError::Shed { retry_after_hint }) => Terminal::Shed { retry_after_hint },
            Err(e) => Terminal::Failed(e),
        }
    }
}

/// A live handle to one submitted request.
///
/// The waiting methods consume the handle on resolution (a request has
/// exactly one terminal state); `wait_timeout` and `try_poll` hand the
/// handle back when the request is still pending.
pub struct ResponseHandle {
    rx: Receiver<RequestResult>,
    cancel: CancelToken,
}

impl ResponseHandle {
    pub(crate) fn new(rx: Receiver<RequestResult>, cancel: CancelToken) -> Self {
        ResponseHandle { rx, cancel }
    }

    /// The request's cancel token (clone of the one passed at submit,
    /// or a fresh one the builder created).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Requests cancellation. Best-effort: if the request has not
    /// started executing it resolves to [`Terminal::Cancelled`];
    /// otherwise it completes normally.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks until the request resolves.
    pub fn wait(self) -> Terminal {
        match self.rx.recv() {
            Ok(result) => Terminal::from_result(result),
            Err(_) => Terminal::Failed(ServeError::Closed),
        }
    }

    /// Blocks up to `timeout`; `Err(self)` means still pending.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Terminal, ResponseHandle> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Ok(Terminal::from_result(result)),
            Err(RecvTimeoutError::Timeout) => Err(self),
            Err(RecvTimeoutError::Disconnected) => Ok(Terminal::Failed(ServeError::Closed)),
        }
    }

    /// Non-blocking poll; `Err(self)` means still pending.
    pub fn try_poll(self) -> Result<Terminal, ResponseHandle> {
        match self.rx.try_recv() {
            Ok(result) => Ok(Terminal::from_result(result)),
            Err(TryRecvError::Empty) => Err(self),
            Err(TryRecvError::Disconnected) => Ok(Terminal::Failed(ServeError::Closed)),
        }
    }
}

impl std::fmt::Debug for ResponseHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseHandle")
            .field("cancelled", &self.cancel.is_cancelled())
            .finish()
    }
}

/// In-flight budgets for admission control.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Requests in flight (admitted, not yet terminal) across all
    /// models before new work is shed.
    pub max_in_flight: usize,
    /// Per-model in-flight bound.
    pub max_per_model: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_in_flight: 512,
            max_per_model: 256,
        }
    }
}

struct AdmissionCounts {
    total: usize,
    per_model: HashMap<String, usize>,
}

/// Tracks in-flight requests against an [`AdmissionPolicy`].
pub(crate) struct AdmissionControl {
    policy: AdmissionPolicy,
    // lock: admission-counts
    counts: Mutex<AdmissionCounts>,
    /// When wired, the in-flight gauge is published here under the
    /// admission lock on every admit and permit release.
    metrics: Option<Arc<ServerMetrics>>,
}

impl AdmissionControl {
    /// Builds the admission tracker; when `metrics` is wired, the
    /// in-flight gauge is published there on every count change.
    pub(crate) fn new(policy: AdmissionPolicy, metrics: Option<Arc<ServerMetrics>>) -> Arc<Self> {
        assert!(policy.max_in_flight > 0, "global budget must be positive");
        assert!(
            policy.max_per_model > 0,
            "per-model budget must be positive"
        );
        Arc::new(AdmissionControl {
            policy,
            counts: Mutex::new(AdmissionCounts {
                total: 0,
                per_model: HashMap::new(),
            }),
            metrics,
        })
    }

    /// Admits `model` or refuses it when a budget is exhausted. The
    /// returned permit releases both counts on drop, so every terminal
    /// path (respond, expire, cancel, shed, shutdown-drain) frees the
    /// budget without bookkeeping at the call site.
    pub(crate) fn try_admit(self: &Arc<Self>, model: &str) -> Option<AdmissionPermit> {
        let mut counts = self.counts.lock().expect("admission lock");
        let per_model = counts.per_model.get(model).copied().unwrap_or(0);
        if counts.total >= self.policy.max_in_flight || per_model >= self.policy.max_per_model {
            return None;
        }
        counts.total += 1;
        // warm-path: allow(one short model-name copy per admit; map key must be owned)
        *counts.per_model.entry(model.to_owned()).or_insert(0) += 1;
        if let Some(m) = &self.metrics {
            m.set_in_flight(counts.total);
        }
        Some(AdmissionPermit {
            control: Arc::clone(self),
            // warm-path: allow(permit owns its model name so release needs no borrow)
            model: model.to_owned(),
        })
    }

    /// Requests currently in flight across all models.
    pub(crate) fn in_flight(&self) -> usize {
        self.counts.lock().expect("admission lock").total
    }
}

/// RAII guard for one admitted request; dropping it releases the
/// global and per-model budget.
pub struct AdmissionPermit {
    control: Arc<AdmissionControl>,
    model: String,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut counts = self.control.counts.lock().expect("admission lock");
        counts.total = counts.total.saturating_sub(1);
        if let Some(n) = counts.per_model.get_mut(&self.model) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                counts.per_model.remove(&self.model);
            }
        }
        if let Some(m) = &self.control.metrics {
            m.set_in_flight(counts.total);
        }
    }
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit")
            .field("model", &self.model)
            .finish()
    }
}

/// The request-submission front door, cheaply cloneable and detached
/// from the [`crate::server::Server`]'s lifetime (submissions after
/// shutdown fail with [`ServeError::ShuttingDown`]).
#[derive(Clone)]
pub struct Client {
    shared: Arc<ServerShared>,
}

impl Client {
    pub(crate) fn new(shared: Arc<ServerShared>) -> Self {
        Client { shared }
    }

    /// Starts building a request against `model`.
    pub fn request(&self, model: &str) -> RequestBuilder<'_> {
        RequestBuilder {
            client: self,
            model: model.to_owned(),
            input: None,
            deadline: None,
            priority: Priority::default(),
            cancel: None,
        }
    }

    /// Convenience: submit `input` with default options and block for
    /// the result (the lifecycle equivalent of the old `Server::infer`).
    pub fn infer(&self, model: &str, input: Tensor) -> Result<InferResponse, ServeError> {
        self.request(model)
            .input(input)
            .submit()?
            .wait()
            .into_result()
    }

    /// Live serving counters.
    pub fn metrics(&self) -> &crate::metrics::ServerMetrics {
        &self.shared.metrics
    }

    /// Names of the models this client can currently request, sorted.
    pub fn models(&self) -> Vec<String> {
        self.shared.registry.names()
    }

    /// Whether `model` is currently requestable.
    pub fn has_model(&self, model: &str) -> bool {
        self.shared.registry.contains(model)
    }

    fn submit_spec(&self, spec: RequestSpec) -> Result<ResponseHandle, ServeError> {
        // The traced request's envelope (and its enqueue stage) starts
        // at submission entry, before any validation work.
        let submit_start = Instant::now();
        let shared = &self.shared;
        let engine = shared.registry.get(&spec.model)?;
        let expected = engine.input_shape();
        let s = spec.input.shape();
        if s.len() != 4 || s[0] != 1 || s[1..] != expected[..] {
            return Err(ServeError::ShapeMismatch {
                expected: expected.to_vec(),
                got: s.to_vec(),
            });
        }
        let now = Instant::now();
        if let Some(deadline) = spec.deadline {
            if deadline <= now {
                shared.metrics.record_expired(1);
                return Err(ServeError::Expired {
                    missed_by: now.duration_since(deadline),
                });
            }
        }
        if spec.cancel.is_cancelled() {
            return Err(ServeError::Cancelled);
        }
        let trace = shared.telemetry.begin_trace();
        // Enqueue stage ends where the admission stage begins.
        let admission_start = Instant::now();
        let Some(permit) = shared.admission.try_admit(&spec.model) else {
            shared.metrics.record_shed();
            return Err(ServeError::Shed {
                retry_after_hint: self.retry_after_hint(),
            });
        };
        let (tx, rx) = sync_channel(1);
        // Capture the name before `spec.model` moves into the queue;
        // untraced requests skip the allocation.
        let model_name: Option<Arc<str>> = trace.map(|_| Arc::from(spec.model.as_str()));
        let queued_at = Instant::now();
        let push = shared.queue.push(PendingRequest {
            model: spec.model,
            input: spec.input,
            enqueued: now,
            deadline: spec.deadline,
            priority: spec.priority,
            cancel: spec.cancel.clone(),
            respond: tx,
            permit: Some(permit),
            trace: trace.map(|id| RequestTrace {
                id,
                started: submit_start,
                queued_at,
            }),
        });
        match push {
            Ok(()) => {
                // Spans are recorded only once the request is really
                // queued; a rejected push leaves no partial trace.
                if let (Some(id), Some(model)) = (trace, &model_name) {
                    let t = &shared.telemetry;
                    t.record_stage(id, model, Stage::Enqueue, submit_start, admission_start, 1);
                    t.record_stage(id, model, Stage::Admission, admission_start, queued_at, 1);
                }
                Ok(ResponseHandle::new(rx, spec.cancel))
            }
            Err(ServeError::QueueFull) => {
                shared.metrics.record_rejected();
                Err(ServeError::QueueFull)
            }
            Err(ServeError::QueueClosed) => Err(ServeError::ShuttingDown),
            Err(e) => Err(e),
        }
    }

    /// How long a shed caller should back off: roughly the time to
    /// drain the current queue at the recently observed batch rate,
    /// clamped to [`RETRY_HINT_FLOOR`]..[`RETRY_HINT_CEIL`].
    fn retry_after_hint(&self) -> Duration {
        let shared = &self.shared;
        retry_after_hint(
            shared.metrics.recent_batch_time(),
            shared.queue.len(),
            shared.batch.max_batch,
        )
    }
}

/// Lower clamp on shed retry hints. A zero or near-zero hint over the
/// wire would make a router's retry loop spin hot against an already
/// overloaded replica.
pub const RETRY_HINT_FLOOR: Duration = Duration::from_millis(1);

/// Upper clamp on shed retry hints. A stale batch-time reading times a
/// deep queue must not tell remote callers to go away for minutes.
pub const RETRY_HINT_CEIL: Duration = Duration::from_secs(2);

/// Computes a shed retry hint from the recently observed per-batch
/// execution time and the queue state.
///
/// The result is **clamped** to `[RETRY_HINT_FLOOR, RETRY_HINT_CEIL]`
/// (so it is always nonzero and bounded, safe to serialize into shed
/// frames) and **monotone** in queue depth for a fixed batch rate: a
/// deeper queue never yields a shorter hint, so remote retry loops
/// back off harder as overload grows.
pub(crate) fn retry_after_hint(
    recent_batch_time: Duration,
    queue_len: usize,
    max_batch: usize,
) -> Duration {
    // An idle or never-exercised server reports a zero batch time
    // (see `ServerMetrics::recent_batch_time`'s TTL); fall back to a
    // small default rather than quoting zero drain time.
    let per_batch = if recent_batch_time.is_zero() {
        Duration::from_millis(5)
    } else {
        recent_batch_time
    };
    let queued_batches = queue_len.div_ceil(max_batch.max(1)) + 1;
    per_batch
        .saturating_mul(queued_batches.min(u32::MAX as usize) as u32)
        .clamp(RETRY_HINT_FLOOR, RETRY_HINT_CEIL)
}

struct RequestSpec {
    model: String,
    input: Tensor,
    deadline: Option<Instant>,
    priority: Priority,
    cancel: CancelToken,
}

/// Fluent builder for one request; see the module docs for the shape.
pub struct RequestBuilder<'a> {
    client: &'a Client,
    model: String,
    input: Option<Tensor>,
    deadline: Option<Instant>,
    priority: Priority,
    cancel: Option<CancelToken>,
}

impl RequestBuilder<'_> {
    /// The single-item input, `[1, c, h, w]`.
    pub fn input(mut self, input: Tensor) -> Self {
        self.input = Some(input);
        self
    }

    /// Absolute deadline: past it, the request is dropped unexecuted
    /// with [`Terminal::Expired`].
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Relative deadline, measured from submission.
    pub fn deadline_in(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Scheduling class (default [`Priority::Standard`]).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Attaches an external cancel token; without one, the handle's
    /// own token is the only way to cancel.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Validates and enqueues the request.
    ///
    /// Fails fast (no handle) on unknown models, shape mismatches,
    /// missing input, already-passed deadlines, already-cancelled
    /// tokens, admission shed, queue backpressure, and shutdown.
    pub fn submit(self) -> Result<ResponseHandle, ServeError> {
        let input = self.input.ok_or(ServeError::MissingInput)?;
        self.client.submit_spec(RequestSpec {
            model: self.model,
            input,
            deadline: self.deadline,
            priority: self.priority,
            cancel: self.cancel.unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_levels_order_interactive_first() {
        assert!(Priority::Interactive.level() < Priority::Standard.level());
        assert!(Priority::Standard.level() < Priority::Batch.level());
        assert_eq!(Priority::default(), Priority::Standard);
        for (i, p) in Priority::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn cancel_token_is_sticky_and_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        clone.cancel();
        assert!(t.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn admission_budgets_bound_global_and_per_model() {
        let control = AdmissionControl::new(
            AdmissionPolicy {
                max_in_flight: 3,
                max_per_model: 2,
            },
            None,
        );
        let a1 = control.try_admit("a").expect("admit");
        let _a2 = control.try_admit("a").expect("admit");
        assert!(
            control.try_admit("a").is_none(),
            "per-model budget exhausted"
        );
        let _b1 = control.try_admit("b").expect("other model still admits");
        assert!(control.try_admit("b").is_none(), "global budget exhausted");
        assert_eq!(control.in_flight(), 3);
        drop(a1);
        assert_eq!(control.in_flight(), 2);
        let _a3 = control.try_admit("a").expect("released budget readmits");
    }

    /// Satellite regression: shed retry hints are always inside the
    /// clamp band — never zero (a zero hint over the wire makes router
    /// retry loops spin) and never unbounded (a stale rate times a
    /// deep queue must not quote minutes).
    #[test]
    fn retry_hint_is_clamped_nonzero_and_bounded() {
        // Zero batch time (idle TTL expired) still yields a hint at or
        // above the floor.
        let idle = retry_after_hint(Duration::ZERO, 0, 8);
        assert!(idle >= RETRY_HINT_FLOOR, "{idle:?}");
        // A sub-floor batch time over an empty queue clamps up.
        let tiny = retry_after_hint(Duration::from_nanos(10), 0, 8);
        assert!(tiny >= RETRY_HINT_FLOOR, "{tiny:?}");
        // A huge stale batch time times a deep queue clamps down.
        let huge = retry_after_hint(Duration::from_secs(30), 10_000, 1);
        assert_eq!(huge, RETRY_HINT_CEIL);
        // max_batch = 0 must not divide by zero.
        let degenerate = retry_after_hint(Duration::from_millis(2), 5, 0);
        assert!(degenerate >= RETRY_HINT_FLOOR && degenerate <= RETRY_HINT_CEIL);
    }

    /// The hint is monotone in queue depth for a fixed batch rate, so
    /// remote callers back off harder as overload grows.
    #[test]
    fn retry_hint_is_monotone_in_queue_depth() {
        let rate = Duration::from_millis(3);
        let mut last = Duration::ZERO;
        for queue_len in [0, 1, 7, 8, 9, 64, 1000, 100_000] {
            let hint = retry_after_hint(rate, queue_len, 8);
            assert!(
                hint >= last,
                "hint {hint:?} at depth {queue_len} dipped below {last:?}"
            );
            last = hint;
        }
    }

    /// Frozen v1 codes: every terminal state maps to its stable code.
    #[test]
    fn terminal_codes_are_stable() {
        assert_eq!(Terminal::Cancelled.code(), 2);
        assert_eq!(
            Terminal::Expired {
                missed_by: Duration::ZERO
            }
            .code(),
            1
        );
        assert_eq!(
            Terminal::Shed {
                retry_after_hint: Duration::ZERO
            }
            .code(),
            3
        );
        assert_eq!(Terminal::Failed(ServeError::Closed).code(), 4);
        assert_eq!(Terminal::Failed(ServeError::Closed).label(), "failed");
    }

    #[test]
    fn priority_index_round_trips() {
        for p in Priority::ALL {
            assert_eq!(Priority::from_index(p.index()), Some(p));
        }
        assert_eq!(Priority::from_index(3), None);
    }

    #[test]
    fn terminal_round_trips_through_results() {
        let t = Terminal::from_result(Err(ServeError::Expired {
            missed_by: Duration::from_millis(3),
        }));
        assert!(matches!(t, Terminal::Expired { .. }));
        assert!(matches!(
            t.into_result(),
            Err(ServeError::Expired { missed_by }) if missed_by == Duration::from_millis(3)
        ));
        let t = Terminal::from_result(Err(ServeError::Shed {
            retry_after_hint: Duration::from_millis(7),
        }));
        assert!(matches!(t, Terminal::Shed { .. }));
        assert!(!t.is_completed());
        let t = Terminal::from_result(Err(ServeError::Cancelled));
        assert!(matches!(t.into_result(), Err(ServeError::Cancelled)));
    }
}
