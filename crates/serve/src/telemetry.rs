//! End-to-end serving telemetry: request-scoped trace spans, per-layer
//! execution profiles, and exporters.
//!
//! PatDNN's headline claims are *per-layer* execution-time wins, but a
//! serving stack only observes end-to-end latency unless something
//! attributes time to each handoff. This module instruments the whole
//! request lifecycle (DESIGN.md §11):
//!
//! - **Trace spans.** Every traced request gets a [`TraceId`] at
//!   submission and records one span per lifecycle stage — enqueue,
//!   admission, queue wait, batch assembly, execution, delivery — plus
//!   a whole-request envelope span. Stage boundaries are shared
//!   instants, so the stage durations of a completed request tile its
//!   end-to-end latency exactly (the integration test holds the sum to
//!   within 5%).
//! - **Per-step profiles.** Traced batches run through the engine's
//!   profiled path, which times every plan step (pattern conv, int8
//!   conv, FC, `Add` joins, …) and reports precision and
//!   dense-equivalent GFLOP/s. Steps aggregate into per-model
//!   per-layer log₂ histograms cheap enough to leave on in production.
//! - **Bounded lock-light ring.** Span events land in a fixed-size
//!   ring: writers claim a slot with one atomic `fetch_add` and take
//!   only that slot's mutex, so concurrent workers never contend on a
//!   global lock and a long-running server's memory stays flat (old
//!   events are overwritten).
//! - **Sampling.** [`TelemetryPolicy`] picks how much to pay:
//!   `Off` keeps the hot path exactly as fast as before (the
//!   non-profiled engine path runs, nothing is recorded), `Sampled{n}`
//!   traces every n-th request, `Full` traces everything.
//!
//! Exporters: [`Telemetry::chrome_trace_json`] writes the Chrome trace
//! event format (load it in `chrome://tracing` or Perfetto; the
//! `patdnn-serve` binary's `--trace-out FILE` flag dumps it), and
//! [`Telemetry::layer_snapshots`] / [`Telemetry::stage_breakdown`]
//! feed the pull-based [`crate::MetricsSnapshot`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::artifact::Precision;
use crate::engine::StepTiming;

/// How much the telemetry layer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryPolicy {
    /// Record nothing; the serving hot path is untouched (the engine
    /// runs its non-profiled path and no span is allocated).
    #[default]
    Off,
    /// Trace every `every`-th submitted request (1 behaves like
    /// [`TelemetryPolicy::Full`]). Untraced requests pay one relaxed
    /// atomic increment at submission and nothing else.
    Sampled {
        /// Sampling period: 1 of every `every` requests is traced.
        every: u64,
    },
    /// Trace every request.
    Full,
}

impl TelemetryPolicy {
    /// Whether this policy ever records anything.
    pub fn enabled(self) -> bool {
        !matches!(self, TelemetryPolicy::Off)
    }
}

/// Identifier shared by all spans of one traced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// One lifecycle stage of a served request, in lifecycle order. The
/// six stages partition a completed request's end-to-end latency:
/// each stage's end instant is the next stage's start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Submission entry to admission entry: validation (model lookup,
    /// shape, deadline, cancel checks).
    Enqueue,
    /// Admission control plus the queue push.
    Admission,
    /// Queued, waiting for a worker to pop a batch containing this
    /// request.
    QueueWait,
    /// Popped, waiting while the worker re-checks lifecycles and
    /// stacks the batch inputs.
    BatchAssembly,
    /// The batched engine execution.
    Execution,
    /// Result scatter: engine output to the response channel.
    Delivery,
}

impl Stage {
    /// All stages, lifecycle order.
    pub const ALL: [Stage; 6] = [
        Stage::Enqueue,
        Stage::Admission,
        Stage::QueueWait,
        Stage::BatchAssembly,
        Stage::Execution,
        Stage::Delivery,
    ];

    /// Index into per-stage arrays (same order as [`Self::ALL`]).
    pub fn index(self) -> usize {
        match self {
            Stage::Enqueue => 0,
            Stage::Admission => 1,
            Stage::QueueWait => 2,
            Stage::BatchAssembly => 3,
            Stage::Execution => 4,
            Stage::Delivery => 5,
        }
    }

    /// Human-readable stage name (also the Chrome trace span name).
    pub fn label(self) -> &'static str {
        match self {
            Stage::Enqueue => "enqueue",
            Stage::Admission => "admission",
            Stage::QueueWait => "queue-wait",
            Stage::BatchAssembly => "batch-assembly",
            Stage::Execution => "execution",
            Stage::Delivery => "delivery",
        }
    }
}

/// Per-request trace context carried through the batch queue by a
/// [`crate::batching::PendingRequest`]. The two instants are the span
/// boundaries the submitting side already fixed; the worker supplies
/// the rest (pop, execution, delivery), so the stages of a completed
/// request tile its end-to-end latency with no gaps.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// The request's trace id.
    pub id: TraceId,
    /// Submission entry: the whole-request envelope starts here.
    pub started: Instant,
    /// When the request cleared admission and entered the queue:
    /// queue-wait starts here.
    pub queued_at: Instant,
}

/// What a [`SpanEvent`] describes.
#[derive(Debug, Clone, PartialEq)]
pub enum SpanKind {
    /// The whole-request envelope: submission entry to delivered
    /// response. Its duration is the request's end-to-end latency.
    Request,
    /// One lifecycle stage of a request.
    Stage(Stage),
    /// One executed plan step inside a traced batch execution.
    Step {
        /// Plan step index.
        index: usize,
        /// Step kind (`pattern-conv`, `quant-fc`, `add`, …).
        kind: &'static str,
        /// Numeric precision the step executed at.
        precision: Precision,
        /// Dense-equivalent GFLOP/s achieved by the step.
        dense_gflops: f64,
    },
}

impl SpanKind {
    /// The span name used by exporters.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Stage(s) => s.label(),
            SpanKind::Step { kind, .. } => kind,
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Global record order (ring overwrite keeps the highest `seq`s).
    pub seq: u64,
    /// The traced request (step spans carry the trace of the first
    /// traced request in their batch).
    pub trace: TraceId,
    /// Model the request targeted.
    pub model: Arc<str>,
    /// What this span covers.
    pub kind: SpanKind,
    /// Start, microseconds since the telemetry epoch (server start).
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Size of the executed batch (1 until the request joins one).
    pub batch: u32,
}

/// Default event-ring capacity: at ~7 lifecycle spans plus one span
/// per plan step per traced request, 32 Ki events retain on the order
/// of a thousand recent traced requests.
pub const DEFAULT_RING_CAPACITY: usize = 32 * 1024;

/// Fixed-capacity multi-producer span store. A writer claims a slot
/// index with one atomic `fetch_add` and locks only that slot, so
/// concurrent workers contend on nothing shared; the ring overwrites
/// oldest-first when full.
struct EventRing {
    // lock: telemetry-ring-slot
    slots: Vec<Mutex<Option<SpanEvent>>>,
    head: AtomicU64,
}

impl EventRing {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        EventRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    fn push(&self, mut event: SpanEvent) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        event.seq = seq;
        let slot = (seq % self.slots.len() as u64) as usize;
        let mut guard = self.slots[slot].lock().expect("ring slot");
        // A lapped writer may already have stored a newer event in this
        // slot (it claimed a higher seq and won the lock first).
        if guard.as_ref().is_none_or(|held| held.seq < seq) {
            *guard = Some(event);
        }
    }

    fn collect(&self) -> Vec<SpanEvent> {
        let mut events: Vec<SpanEvent> = self
            .slots
            .iter()
            // lock: telemetry-ring-slot
            .filter_map(|s| s.lock().expect("ring slot").clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }
}

/// Log₂ microsecond histogram buckets per (model, step). Bucket `i`
/// holds durations in `[2^i, 2^(i+1))` µs, which spans sub-µs steps
/// to half-hour outliers in 31 buckets.
const HIST_BUCKETS: usize = 32;

/// Running profile of one plan step of one model.
#[derive(Debug, Clone)]
struct LayerProfile {
    kind: &'static str,
    precision: Precision,
    count: u64,
    sum_us: u64,
    max_us: u64,
    hist: [u32; HIST_BUCKETS],
    /// Dense-equivalent FLOPs executed (batch included).
    sum_flops: f64,
    sum_secs: f64,
}

impl LayerProfile {
    fn new(kind: &'static str, precision: Precision) -> Self {
        LayerProfile {
            kind,
            precision,
            count: 0,
            sum_us: 0,
            max_us: 0,
            hist: [0; HIST_BUCKETS],
            sum_flops: 0.0,
            sum_secs: 0.0,
        }
    }

    fn record(&mut self, wall: Duration, flops: f64) {
        let us = wall.as_micros() as u64;
        self.count += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
        let bucket = (63 - us.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.hist[bucket] += 1;
        self.sum_flops += flops;
        self.sum_secs += wall.as_secs_f64();
    }

    /// Bucket-estimated quantile: the geometric midpoint of the bucket
    /// holding the q-th sample (coarse — within ~1.4× — by design; the
    /// histogram costs a handful of words per layer).
    fn quantile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.hist.iter().enumerate() {
            seen += n as u64;
            if seen > rank {
                let lo = (1u64 << i) as f64;
                return lo * std::f64::consts::SQRT_2;
            }
        }
        self.max_us as f64
    }
}

/// Point-in-time per-layer profile, exported through
/// [`crate::MetricsSnapshot::layers`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSnapshot {
    /// Model name.
    pub model: String,
    /// Plan step index within the model.
    pub step: usize,
    /// Step kind (`pattern-conv`, `quant-fc`, `add`, …).
    pub kind: &'static str,
    /// Numeric precision the step executes at.
    pub precision: Precision,
    /// Profiled executions.
    pub count: u64,
    /// Mean wall time per execution, milliseconds.
    pub mean_ms: f64,
    /// Median wall time (histogram-estimated), milliseconds.
    pub p50_ms: f64,
    /// 99th percentile wall time (histogram-estimated), milliseconds.
    pub p99_ms: f64,
    /// Total wall time across all profiled executions, milliseconds.
    pub total_ms: f64,
    /// Mean dense-equivalent GFLOP/s across profiled executions.
    pub gflops: f64,
}

/// Aggregate stats for one lifecycle stage across traced requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageStat {
    /// Which stage.
    pub stage: Stage,
    /// Spans recorded.
    pub count: u64,
    /// Total time spent in this stage, microseconds.
    pub total_us: u64,
}

impl StageStat {
    /// Mean stage duration, milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64 / 1e3
        }
    }
}

/// The serving telemetry hub: trace sampling, the span ring, stage
/// aggregates, and per-model per-layer profiles. One per server,
/// shared by every worker and client.
pub struct Telemetry {
    policy: TelemetryPolicy,
    /// Timestamp zero for every exported span.
    epoch: Instant,
    ring: EventRing,
    next_trace: AtomicU64,
    sample_tick: AtomicU64,
    stage_total_us: [AtomicU64; 6],
    stage_count: [AtomicU64; 6],
    /// `(model, step index)` → running profile. BTreeMap so snapshots
    /// list models and steps in a stable order.
    // lock: telemetry-layers
    layers: Mutex<BTreeMap<(Arc<str>, usize), LayerProfile>>,
}

impl Telemetry {
    /// Creates a hub with the default ring capacity.
    pub fn new(policy: TelemetryPolicy) -> Self {
        Telemetry::with_capacity(policy, DEFAULT_RING_CAPACITY)
    }

    /// Creates a hub retaining at most `ring_capacity` span events.
    pub fn with_capacity(policy: TelemetryPolicy, ring_capacity: usize) -> Self {
        Telemetry {
            policy,
            epoch: Instant::now(),
            ring: EventRing::new(ring_capacity),
            next_trace: AtomicU64::new(1),
            sample_tick: AtomicU64::new(0),
            stage_total_us: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_count: std::array::from_fn(|_| AtomicU64::new(0)),
            layers: Mutex::new(BTreeMap::new()),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> TelemetryPolicy {
        self.policy
    }

    /// Whether anything is ever recorded.
    pub fn enabled(&self) -> bool {
        self.policy.enabled()
    }

    /// Decides whether to trace a new request: `None` means record
    /// nothing for it. Called once per submission.
    pub fn begin_trace(&self) -> Option<TraceId> {
        match self.policy {
            TelemetryPolicy::Off => None,
            TelemetryPolicy::Full => Some(TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed))),
            TelemetryPolicy::Sampled { every } => {
                let tick = self.sample_tick.fetch_add(1, Ordering::Relaxed);
                if tick.is_multiple_of(every.max(1)) {
                    Some(TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed)))
                } else {
                    None
                }
            }
        }
    }

    fn us_since_epoch(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Records one lifecycle stage span `[start, end)` and feeds the
    /// stage aggregates.
    pub fn record_stage(
        &self,
        trace: TraceId,
        model: &Arc<str>,
        stage: Stage,
        start: Instant,
        end: Instant,
        batch: u32,
    ) {
        let dur_us = end.saturating_duration_since(start).as_micros() as u64;
        self.stage_total_us[stage.index()].fetch_add(dur_us, Ordering::Relaxed);
        self.stage_count[stage.index()].fetch_add(1, Ordering::Relaxed);
        self.ring.push(SpanEvent {
            seq: 0,
            trace,
            model: Arc::clone(model),
            kind: SpanKind::Stage(stage),
            start_us: self.us_since_epoch(start),
            dur_us,
            batch,
        });
    }

    /// Records the whole-request envelope span `[start, end)`.
    pub fn record_request(
        &self,
        trace: TraceId,
        model: &Arc<str>,
        start: Instant,
        end: Instant,
        batch: u32,
    ) {
        self.ring.push(SpanEvent {
            seq: 0,
            trace,
            model: Arc::clone(model),
            kind: SpanKind::Request,
            start_us: self.us_since_epoch(start),
            dur_us: end.saturating_duration_since(start).as_micros() as u64,
            batch,
        });
    }

    /// Ingests a profiled batch execution: every step timing joins the
    /// per-model per-layer histograms, and (under `trace`) becomes a
    /// step span in the ring.
    pub fn record_step_timings(
        &self,
        model: &Arc<str>,
        timings: &[StepTiming],
        batch: u32,
        trace: Option<TraceId>,
    ) {
        {
            let mut layers = self.layers.lock().expect("layer profiles");
            for t in timings {
                layers
                    .entry((Arc::clone(model), t.index))
                    .or_insert_with(|| LayerProfile::new(t.kind, t.precision))
                    .record(t.wall, t.flops);
            }
        }
        if let Some(trace) = trace {
            for t in timings {
                self.ring.push(SpanEvent {
                    seq: 0,
                    trace,
                    model: Arc::clone(model),
                    kind: SpanKind::Step {
                        index: t.index,
                        kind: t.kind,
                        precision: t.precision,
                        dense_gflops: t.dense_gflops(),
                    },
                    start_us: self.us_since_epoch(t.started),
                    dur_us: t.wall.as_micros() as u64,
                    batch,
                });
            }
        }
    }

    /// The retained span events, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.ring.collect()
    }

    /// Aggregate per-stage totals across every traced request.
    pub fn stage_breakdown(&self) -> [StageStat; 6] {
        std::array::from_fn(|i| StageStat {
            stage: Stage::ALL[i],
            count: self.stage_count[i].load(Ordering::Relaxed),
            total_us: self.stage_total_us[i].load(Ordering::Relaxed),
        })
    }

    /// Point-in-time per-model per-layer profiles, model order stable.
    pub fn layer_snapshots(&self) -> Vec<LayerSnapshot> {
        let layers = self.layers.lock().expect("layer profiles");
        layers
            .iter()
            .map(|((model, step), p)| LayerSnapshot {
                model: model.to_string(),
                step: *step,
                kind: p.kind,
                precision: p.precision,
                count: p.count,
                mean_ms: if p.count == 0 {
                    0.0
                } else {
                    p.sum_us as f64 / p.count as f64 / 1e3
                },
                p50_ms: p.quantile_us(0.50) / 1e3,
                p99_ms: p.quantile_us(0.99) / 1e3,
                total_ms: p.sum_us as f64 / 1e3,
                gflops: if p.sum_secs > 0.0 {
                    p.sum_flops / p.sum_secs / 1e9
                } else {
                    0.0
                },
            })
            .collect()
    }

    /// Serializes the retained spans as Chrome trace event format
    /// (`chrome://tracing` / Perfetto): one complete (`ph: "X"`) event
    /// per span, trace id as `tid` so each request renders as a row.
    pub fn chrome_trace_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 160 + 32);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            json_escape_into(&mut out, e.kind.name());
            out.push_str("\",\"cat\":\"");
            out.push_str(match e.kind {
                SpanKind::Request => "request",
                SpanKind::Stage(_) => "stage",
                SpanKind::Step { .. } => "step",
            });
            out.push_str("\",\"ph\":\"X\",\"pid\":1,\"tid\":");
            out.push_str(&e.trace.0.to_string());
            out.push_str(",\"ts\":");
            out.push_str(&e.start_us.to_string());
            out.push_str(",\"dur\":");
            out.push_str(&e.dur_us.to_string());
            out.push_str(",\"args\":{\"model\":\"");
            json_escape_into(&mut out, &e.model);
            out.push_str("\",\"batch\":");
            out.push_str(&e.batch.to_string());
            if let SpanKind::Step {
                index,
                precision,
                dense_gflops,
                ..
            } = &e.kind
            {
                out.push_str(",\"step\":");
                out.push_str(&index.to_string());
                out.push_str(",\"precision\":\"");
                out.push_str(precision.label());
                out.push_str("\",\"dense_gflops\":");
                out.push_str(&format!("{dense_gflops:.3}"));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Arc<str> {
        Arc::from("m")
    }

    fn timing(index: usize, wall_us: u64) -> StepTiming {
        StepTiming {
            index,
            kind: "pattern-conv",
            precision: Precision::F32,
            started: Instant::now(),
            wall: Duration::from_micros(wall_us),
            flops: 1e6,
        }
    }

    #[test]
    fn off_policy_traces_nothing() {
        let t = Telemetry::new(TelemetryPolicy::Off);
        assert!(!t.enabled());
        assert!(t.begin_trace().is_none());
        assert!(t.events().is_empty());
    }

    #[test]
    fn full_policy_traces_every_request_with_fresh_ids() {
        let t = Telemetry::new(TelemetryPolicy::Full);
        let a = t.begin_trace().expect("traced");
        let b = t.begin_trace().expect("traced");
        assert_ne!(a, b, "trace ids are unique");
    }

    #[test]
    fn sampled_policy_traces_one_in_n() {
        let t = Telemetry::new(TelemetryPolicy::Sampled { every: 3 });
        let traced = (0..9).filter(|_| t.begin_trace().is_some()).count();
        assert_eq!(traced, 3, "1 of every 3 requests is traced");
        // `every: 0` must not divide by zero; it degrades to full.
        let t = Telemetry::new(TelemetryPolicy::Sampled { every: 0 });
        assert!(t.begin_trace().is_some());
    }

    #[test]
    fn stage_spans_land_in_the_ring_and_aggregates() {
        let t = Telemetry::new(TelemetryPolicy::Full);
        let id = t.begin_trace().unwrap();
        let start = Instant::now();
        let end = start + Duration::from_micros(250);
        t.record_stage(id, &model(), Stage::QueueWait, start, end, 4);
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, SpanKind::Stage(Stage::QueueWait));
        assert_eq!(events[0].dur_us, 250);
        assert_eq!(events[0].batch, 4);
        let stats = t.stage_breakdown();
        let qw = stats[Stage::QueueWait.index()];
        assert_eq!(qw.count, 1);
        assert_eq!(qw.total_us, 250);
        assert_eq!(stats[Stage::Execution.index()].count, 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_seq_order() {
        let t = Telemetry::with_capacity(TelemetryPolicy::Full, 4);
        let id = t.begin_trace().unwrap();
        let start = Instant::now();
        for _ in 0..10 {
            t.record_request(id, &model(), start, start, 1);
        }
        let events = t.events();
        assert_eq!(events.len(), 4, "bounded at capacity");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "newest events survive, sorted");
    }

    #[test]
    fn step_timings_aggregate_into_layer_profiles() {
        let t = Telemetry::new(TelemetryPolicy::Full);
        let m = model();
        let id = t.begin_trace().unwrap();
        for _ in 0..8 {
            t.record_step_timings(&m, &[timing(0, 100), timing(1, 400)], 2, Some(id));
        }
        let layers = t.layer_snapshots();
        assert_eq!(layers.len(), 2, "one profile per (model, step)");
        assert_eq!(layers[0].step, 0);
        assert_eq!(layers[0].count, 8);
        assert!(
            (layers[0].mean_ms - 0.1).abs() < 0.01,
            "{}",
            layers[0].mean_ms
        );
        assert!(layers[1].mean_ms > layers[0].mean_ms);
        // p50 is histogram-estimated: within its bucket's 2x span.
        assert!(layers[0].p50_ms >= 0.064 && layers[0].p50_ms <= 0.128);
        assert!(layers[0].gflops > 0.0);
        // Step spans were also recorded for the traced batch.
        let steps = t
            .events()
            .iter()
            .filter(|e| matches!(e.kind, SpanKind::Step { .. }))
            .count();
        assert_eq!(steps, 16);
    }

    #[test]
    fn untraced_step_timings_profile_without_ring_events() {
        let t = Telemetry::new(TelemetryPolicy::Sampled { every: 1000 });
        t.record_step_timings(&model(), &[timing(0, 50)], 1, None);
        assert_eq!(t.layer_snapshots().len(), 1, "histogram still fed");
        assert!(t.events().is_empty(), "no span without a trace");
    }

    #[test]
    fn chrome_trace_is_valid_shape_and_escaped() {
        let t = Telemetry::new(TelemetryPolicy::Full);
        let id = t.begin_trace().unwrap();
        let tricky: Arc<str> = Arc::from("mo\"del\\x");
        let start = Instant::now();
        t.record_stage(id, &tricky, Stage::Execution, start, start, 2);
        t.record_step_timings(&tricky, &[timing(3, 75)], 2, Some(id));
        let json = t.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"execution\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("mo\\\"del\\\\x"), "model name escaped");
        assert!(json.contains("\"precision\":\"f32\""));
        // Brace/bracket balance as a cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_trace_still_parses() {
        let t = Telemetry::new(TelemetryPolicy::Full);
        assert_eq!(t.chrome_trace_json(), "{\"traceEvents\":[]}");
    }
}
