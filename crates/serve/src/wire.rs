//! The v1 wire protocol: the request API rendered as binary frames.
//!
//! `patdnn-serve --listen` and `patdnn-router` speak this protocol on
//! plain TCP. It is deliberately tiny and dependency-free — a
//! length-prefixed, versioned, little-endian frame format reusing the
//! artifact codec's bounds-checked read/write discipline
//! ([`crate::artifact`]): every read checks remaining bytes first,
//! every length field is capped before allocation, and a frame must be
//! consumed exactly (trailing bytes are a typed error, not ignored
//! slack).
//!
//! ```text
//! connection  = handshake, frame*
//! handshake   = "PDNW" magic | u16 wire version        (client → server)
//! frame       = u32 payload length | payload
//! payload     = u8 frame tag | body
//! ```
//!
//! Client → server frames: [`Frame::Infer`] (request id, model,
//! priority class, relative deadline budget, input tensor),
//! [`Frame::Cancel`], [`Frame::Ping`], [`Frame::Shutdown`].
//! Server → client frames: [`Frame::Completed`], [`Frame::Reject`]
//! (the typed non-completed terminals: the [`crate::ServeError`] wire
//! code plus its payload — `missed_by` for expired, the clamped
//! `retry_after_hint` for shed), [`Frame::Pong`], [`Frame::ShutdownAck`].
//!
//! Deadlines travel as **relative budgets** (microseconds from frame
//! construction), not wall-clock instants, so client/server clock skew
//! cannot expire a request in flight; the receiving side re-anchors
//! the budget on its own monotonic clock.
//!
//! Request ids are chosen by the client and are opaque to the server;
//! responses echo them, so one connection can carry many requests
//! concurrently (the router multiplexes its per-replica connections
//! this way).
//!
//! The typed codes on [`crate::ServeError`] and
//! [`crate::request::Terminal`] are the **frozen v1 surface**: this
//! module serializes those codes verbatim, and the round-trip tests in
//! this file plus the wire mutation corpus
//! (`patdnn_bench::wire_corpus`) pin them. See DESIGN.md §14 for the
//! frame layout and code tables.

use std::fmt;
use std::io::{Read, Write};
use std::time::Duration;

use patdnn_tensor::Tensor;

use crate::request::Priority;
use crate::ServeError;

/// Connection-handshake magic, sent once by the client before any
/// frame. Distinguishes binary peers from the HTTP shim on the same
/// port (HTTP requests start with an ASCII method).
pub const WIRE_MAGIC: &[u8; 4] = b"PDNW";

/// Current protocol version, sent in the handshake. Frame layouts and
/// numeric codes within a version are frozen.
pub const WIRE_VERSION: u16 = 1;

/// Upper bound on one frame's payload, checked *before* any
/// allocation. Caps tensors at ~16M f32 elements — far above any
/// supported model input — so a forged length field cannot become an
/// allocation bomb.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Upper bound on model-name bytes in a frame.
pub const MAX_NAME_LEN: usize = 256;

/// Upper bound on error-message bytes in a reject frame.
pub const MAX_MESSAGE_LEN: usize = 4096;

/// Most dimensions a wire tensor may carry.
pub const MAX_TENSOR_DIMS: usize = 8;

/// Errors produced while encoding, decoding, or transporting frames.
#[derive(Debug)]
pub enum WireError {
    /// The connection did not open with the `PDNW` magic.
    BadMagic,
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u16),
    /// The frame ended before its structure was complete.
    Truncated,
    /// A length field exceeds its cap ([`MAX_FRAME_LEN`],
    /// [`MAX_NAME_LEN`], [`MAX_MESSAGE_LEN`], or the tensor bounds).
    Oversize {
        /// What was oversized (e.g. `"frame"`, `"model name"`).
        what: &'static str,
        /// The length the peer claimed.
        len: u64,
    },
    /// An unknown frame tag (likely a newer peer).
    UnknownFrame(u8),
    /// A structural invariant failed while decoding.
    Malformed(String),
    /// The underlying transport failed.
    Io(std::io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "not a PatDNN wire connection (bad magic)"),
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported wire version {v} (max {WIRE_VERSION})")
            }
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Oversize { what, len } => {
                write!(f, "oversized {what}: {len} bytes exceeds the wire cap")
            }
            WireError::UnknownFrame(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            WireError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Frame tags (the first payload byte). Client-originated frames use
/// the low range, server-originated ones set the high bit.
mod tag {
    pub const INFER: u8 = 0x01;
    pub const CANCEL: u8 = 0x02;
    pub const PING: u8 = 0x03;
    pub const SHUTDOWN: u8 = 0x04;
    pub const COMPLETED: u8 = 0x81;
    pub const REJECT: u8 = 0x82;
    pub const PONG: u8 = 0x83;
    pub const SHUTDOWN_ACK: u8 = 0x84;
}

/// One protocol frame. See the module docs for the layout.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Frame {
    /// Submit one inference request.
    Infer {
        /// Client-chosen id, echoed in the response.
        id: u64,
        /// Registered model name.
        model: String,
        /// Scheduling class.
        priority: Priority,
        /// Relative deadline budget in microseconds; 0 = no deadline.
        /// The receiver re-anchors this on its own monotonic clock.
        deadline_us: u64,
        /// The input, `[1, c, h, w]`.
        input: Tensor,
    },
    /// Best-effort cancellation of a previously submitted request.
    Cancel {
        /// The id passed in the matching [`Frame::Infer`].
        id: u64,
    },
    /// Liveness / health probe.
    Ping {
        /// Echoed in the matching [`Frame::Pong`].
        token: u64,
    },
    /// Ask the server process to shut down (used by the orchestration
    /// smoke for clean drains; production deployments gate it).
    Shutdown {
        /// `true` drains queued work first; `false` fails it typed.
        drain: bool,
    },
    /// A completed request's output.
    Completed {
        /// The id from the matching [`Frame::Infer`].
        id: u64,
        /// End-to-end latency on the serving side, microseconds.
        latency_us: u64,
        /// Size of the executed batch this request rode in.
        batch_size: u32,
        /// The model output, `[1, ...]`.
        output: Tensor,
    },
    /// A request's typed non-completed terminal.
    Reject {
        /// The id from the matching [`Frame::Infer`] (0 for
        /// connection-level rejects with no request attached).
        id: u64,
        /// The [`ServeError::code`] naming the outcome.
        code: u16,
        /// Variant payload duration in microseconds: `missed_by` for
        /// expired, the clamped `retry_after_hint` for shed, else 0.
        aux_us: u64,
        /// Human-readable detail (unknown model name, internal error
        /// text); empty when the code says it all.
        message: String,
    },
    /// Liveness / health answer with live gauges.
    Pong {
        /// The token from the matching [`Frame::Ping`].
        token: u64,
        /// Requests waiting in the batch queue.
        queue_depth: u64,
        /// Requests holding an admission permit.
        in_flight: u64,
        /// Registered model count.
        models: u32,
    },
    /// Shutdown acknowledged; the server closes after sending this.
    ShutdownAck,
}

impl Frame {
    /// The frame's tag byte.
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Infer { .. } => tag::INFER,
            Frame::Cancel { .. } => tag::CANCEL,
            Frame::Ping { .. } => tag::PING,
            Frame::Shutdown { .. } => tag::SHUTDOWN,
            Frame::Completed { .. } => tag::COMPLETED,
            Frame::Reject { .. } => tag::REJECT,
            Frame::Pong { .. } => tag::PONG,
            Frame::ShutdownAck => tag::SHUTDOWN_ACK,
        }
    }

    /// Builds the reject frame for `err`, serializing its stable code
    /// plus the variant payload the code implies.
    pub fn reject(id: u64, err: &ServeError) -> Frame {
        let aux = match err {
            ServeError::Expired { missed_by } => duration_to_us(*missed_by),
            ServeError::Shed { retry_after_hint } => duration_to_us(*retry_after_hint),
            _ => 0,
        };
        let message = match err {
            ServeError::UnknownModel(name) => name.clone(),
            ServeError::ShapeMismatch { .. }
            | ServeError::Compile(_)
            | ServeError::Artifact(_)
            | ServeError::Quant(_)
            | ServeError::Internal(_) => err.to_string(),
            _ => String::new(),
        };
        Frame::Reject {
            id,
            code: err.code(),
            aux_us: aux,
            message: truncate_message(message),
        }
    }

    /// Encodes the frame payload (tag + body, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = FrameWriter::new();
        w.u8(self.tag());
        match self {
            Frame::Infer {
                id,
                model,
                priority,
                deadline_us,
                input,
            } => {
                w.u64(*id);
                w.str(model);
                w.u8(priority.index() as u8);
                w.u64(*deadline_us);
                w.tensor(input);
            }
            Frame::Cancel { id } => w.u64(*id),
            Frame::Ping { token } => w.u64(*token),
            Frame::Shutdown { drain } => w.u8(*drain as u8),
            Frame::Completed {
                id,
                latency_us,
                batch_size,
                output,
            } => {
                w.u64(*id);
                w.u64(*latency_us);
                w.u32(*batch_size);
                w.tensor(output);
            }
            Frame::Reject {
                id,
                code,
                aux_us,
                message,
            } => {
                w.u64(*id);
                w.u16(*code);
                w.u64(*aux_us);
                w.str(message);
            }
            Frame::Pong {
                token,
                queue_depth,
                in_flight,
                models,
            } => {
                w.u64(*token);
                w.u64(*queue_depth);
                w.u64(*in_flight);
                w.u32(*models);
            }
            Frame::ShutdownAck => {}
        }
        w.finish()
    }

    /// Decodes one frame payload. The payload must be consumed
    /// exactly; trailing bytes are a typed error.
    pub fn decode(payload: &[u8]) -> Result<Frame, WireError> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(WireError::Oversize {
                what: "frame",
                len: payload.len() as u64,
            });
        }
        let mut r = FrameReader::new(payload);
        let tag = r.u8()?;
        let frame = match tag {
            tag::INFER => {
                let id = r.u64()?;
                let model = r.str(MAX_NAME_LEN, "model name")?;
                let class = r.u8()?;
                let priority = Priority::from_index(class as usize).ok_or_else(|| {
                    WireError::Malformed(format!("unknown priority class {class}"))
                })?;
                let deadline_us = r.u64()?;
                let input = r.tensor()?;
                Frame::Infer {
                    id,
                    model,
                    priority,
                    deadline_us,
                    input,
                }
            }
            tag::CANCEL => Frame::Cancel { id: r.u64()? },
            tag::PING => Frame::Ping { token: r.u64()? },
            tag::SHUTDOWN => {
                let drain = match r.u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(WireError::Malformed(format!(
                            "drain flag must be 0 or 1, got {other}"
                        )))
                    }
                };
                Frame::Shutdown { drain }
            }
            tag::COMPLETED => {
                let id = r.u64()?;
                let latency_us = r.u64()?;
                let batch_size = r.u32()?;
                let output = r.tensor()?;
                Frame::Completed {
                    id,
                    latency_us,
                    batch_size,
                    output,
                }
            }
            tag::REJECT => {
                let id = r.u64()?;
                let code = r.u16()?;
                if ServeError::from_code(code).is_none() {
                    return Err(WireError::Malformed(format!("unknown error code {code}")));
                }
                let aux_us = r.u64()?;
                let message = r.str(MAX_MESSAGE_LEN, "message")?;
                Frame::Reject {
                    id,
                    code,
                    aux_us,
                    message,
                }
            }
            tag::PONG => Frame::Pong {
                token: r.u64()?,
                queue_depth: r.u64()?,
                in_flight: r.u64()?,
                models: r.u32()?,
            },
            tag::SHUTDOWN_ACK => Frame::ShutdownAck,
            other => return Err(WireError::UnknownFrame(other)),
        };
        if !r.is_empty() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after frame",
                r.remaining()
            )));
        }
        Ok(frame)
    }
}

/// Reconstructs the [`ServeError`] a reject frame carries: the stable
/// code names the variant, the aux duration and message refill its
/// payload.
pub fn reject_to_error(code: u16, aux_us: u64, message: &str) -> Result<ServeError, WireError> {
    let base = ServeError::from_code(code)
        .ok_or_else(|| WireError::Malformed(format!("unknown error code {code}")))?;
    Ok(match base {
        ServeError::Expired { .. } => ServeError::Expired {
            missed_by: Duration::from_micros(aux_us),
        },
        ServeError::Shed { .. } => ServeError::Shed {
            retry_after_hint: Duration::from_micros(aux_us),
        },
        ServeError::UnknownModel(_) => ServeError::UnknownModel(message.to_owned()),
        ServeError::Internal(_) => ServeError::Internal(message.to_owned()),
        // Variants whose payload does not survive the wire (shape
        // vectors, nested compile/artifact errors) come back with
        // default payloads; the *code* is what contracts key on, and
        // the frame's rendered message is for humans.
        other => other,
    })
}

/// Writes the client handshake (`PDNW` magic + wire version).
pub fn write_handshake(w: &mut impl Write) -> Result<(), WireError> {
    w.write_all(WIRE_MAGIC)?;
    w.write_all(&WIRE_VERSION.to_le_bytes())?;
    Ok(())
}

/// Validates a handshake whose 4 magic bytes were already consumed
/// (the net listener sniffs them to split binary peers from HTTP).
pub fn read_handshake_version(r: &mut impl Read) -> Result<u16, WireError> {
    let mut v = [0u8; 2];
    r.read_exact(&mut v)?;
    let version = u16::from_le_bytes(v);
    if version == 0 || version > WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    Ok(version)
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    let payload = frame.encode();
    debug_assert!(payload.len() <= MAX_FRAME_LEN, "encoder exceeded frame cap");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame, enforcing [`MAX_FRAME_LEN`]
/// before allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversize {
            what: "frame",
            len: len as u64,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Frame::decode(&payload)
}

/// Saturating duration → microseconds for wire fields.
pub(crate) fn duration_to_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn truncate_message(mut s: String) -> String {
    if s.len() > MAX_MESSAGE_LEN {
        // Truncate on a char boundary at or below the cap.
        let mut cut = MAX_MESSAGE_LEN;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        s.truncate(cut);
    }
    s
}

/// Little-endian frame sink (the artifact codec's writer discipline).
struct FrameWriter {
    buf: Vec<u8>,
}

impl FrameWriter {
    fn new() -> Self {
        FrameWriter { buf: Vec::new() }
    }

    fn finish(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    fn u16(&mut self, x: u16) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        assert!(bytes.len() <= u16::MAX as usize, "wire string too long");
        self.u16(bytes.len() as u16);
        self.buf.extend_from_slice(bytes);
    }

    fn tensor(&mut self, t: &Tensor) {
        let shape = t.shape();
        assert!(shape.len() <= MAX_TENSOR_DIMS, "too many tensor dims");
        self.u8(shape.len() as u8);
        for &d in shape {
            self.u32(u32::try_from(d).expect("dimension fits u32"));
        }
        for &v in t.data() {
            self.u32(v.to_bits());
        }
    }
}

/// Bounds-checked little-endian frame source.
struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        FrameReader { buf, pos: 0 }
    }

    fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.bytes(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self, cap: usize, what: &'static str) -> Result<String, WireError> {
        let n = self.u16()? as usize;
        if n > cap {
            return Err(WireError::Oversize {
                what,
                len: n as u64,
            });
        }
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed(format!("non-utf8 {what}")))
    }

    fn tensor(&mut self) -> Result<Tensor, WireError> {
        let ndim = self.u8()? as usize;
        if ndim == 0 || ndim > MAX_TENSOR_DIMS {
            return Err(WireError::Malformed(format!(
                "tensor rank {ndim} outside 1..={MAX_TENSOR_DIMS}"
            )));
        }
        let mut shape = Vec::with_capacity(ndim);
        let mut elems: usize = 1;
        for _ in 0..ndim {
            let d = self.u32()? as usize;
            if d == 0 {
                return Err(WireError::Malformed("zero tensor dimension".into()));
            }
            elems = elems
                .checked_mul(d)
                .filter(|&n| n <= MAX_FRAME_LEN / 4)
                .ok_or(WireError::Oversize {
                    what: "tensor",
                    len: u64::MAX,
                })?;
            shape.push(d);
        }
        // One remaining-length check before the element loop: the
        // whole data section must be present.
        if self.remaining() < elems * 4 {
            return Err(WireError::Truncated);
        }
        let mut data = Vec::with_capacity(elems);
        for _ in 0..elems {
            data.push(f32::from_bits(self.u32()?));
        }
        Tensor::from_vec(&shape, data)
            .map_err(|e| WireError::Malformed(format!("tensor header: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patdnn_tensor::rng::Rng;

    fn sample_frames() -> Vec<Frame> {
        let mut rng = Rng::seed_from(11);
        vec![
            Frame::Infer {
                id: 7,
                model: "vgg_small".into(),
                priority: Priority::Interactive,
                deadline_us: 50_000,
                input: Tensor::randn(&[1, 3, 8, 8], &mut rng),
            },
            Frame::Infer {
                id: u64::MAX,
                model: "m".into(),
                priority: Priority::Batch,
                deadline_us: 0,
                input: Tensor::from_vec(&[1, 2], vec![f32::NEG_INFINITY, -0.0]).unwrap(),
            },
            Frame::Cancel { id: 3 },
            Frame::Ping { token: 0xDEAD },
            Frame::Shutdown { drain: true },
            Frame::Shutdown { drain: false },
            Frame::Completed {
                id: 7,
                latency_us: 1234,
                batch_size: 4,
                output: Tensor::randn(&[1, 10], &mut rng),
            },
            Frame::Reject {
                id: 9,
                code: ServeError::Shed {
                    retry_after_hint: Duration::from_millis(5),
                }
                .code(),
                aux_us: 5_000,
                message: String::new(),
            },
            Frame::Reject {
                id: 10,
                code: ServeError::UnknownModel(String::new()).code(),
                aux_us: 0,
                message: "nope".into(),
            },
            Frame::Pong {
                token: 0xDEAD,
                queue_depth: 12,
                in_flight: 3,
                models: 2,
            },
            Frame::ShutdownAck,
        ]
    }

    #[test]
    fn every_frame_round_trips_bit_identically() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            let back = Frame::decode(&bytes).expect("decode");
            assert_eq!(frame, back);
            // Re-encode must be bit-identical: the codec has one
            // canonical representation per frame.
            assert_eq!(bytes, back.encode());
        }
    }

    #[test]
    fn length_prefixed_stream_round_trips() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).expect("write");
        }
        let mut cursor = &buf[..];
        for f in &frames {
            let back = read_frame(&mut cursor).expect("read");
            assert_eq!(*f, back);
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Frame::Cancel { id: 1 }.encode();
        bytes.push(0);
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = sample_frames()[0].encode();
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            match Frame::decode(&bytes[..cut]) {
                Err(_) => {}
                Ok(f) => panic!("truncated frame decoded as {f:?}"),
            }
        }
    }

    #[test]
    fn unknown_tags_priorities_and_codes_are_typed_errors() {
        assert!(matches!(
            Frame::decode(&[0x55]),
            Err(WireError::UnknownFrame(0x55))
        ));
        // Unknown priority class byte.
        let mut bytes = sample_frames()[0].encode();
        // tag(1) + id(8) + len(2) + "vgg_small"(9) → priority at 20.
        assert_eq!(bytes[20], Priority::Interactive.index() as u8);
        bytes[20] = 9;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::Malformed(_))
        ));
        // Unknown error code in a reject frame.
        let bytes = Frame::Reject {
            id: 1,
            code: 6,
            aux_us: 0,
            message: String::new(),
        }
        .encode();
        let mut forged = bytes.clone();
        forged[9] = 0xFF;
        forged[10] = 0xFF;
        assert!(matches!(
            Frame::decode(&forged),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn oversize_lengths_are_refused_before_allocation() {
        // A forged u32 length prefix beyond the cap.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Oversize { .. })
        ));
        // A forged tensor dimension product that would overflow.
        let mut w = FrameWriter::new();
        w.u8(tag::INFER);
        w.u64(1);
        w.str("m");
        w.u8(0);
        w.u64(0);
        w.u8(2); // rank 2
        w.u32(u32::MAX);
        w.u32(u32::MAX);
        assert!(matches!(
            Frame::decode(&w.finish()),
            Err(WireError::Oversize { .. }) | Err(WireError::Truncated)
        ));
    }

    #[test]
    fn handshake_round_trips_and_rejects_future_versions() {
        let mut buf = Vec::new();
        write_handshake(&mut buf).expect("handshake");
        assert_eq!(&buf[..4], WIRE_MAGIC);
        let mut cursor = &buf[4..];
        assert_eq!(read_handshake_version(&mut cursor).expect("version"), 1);
        let future = 99u16.to_le_bytes();
        assert!(matches!(
            read_handshake_version(&mut &future[..]),
            Err(WireError::UnsupportedVersion(99))
        ));
        let zero = 0u16.to_le_bytes();
        assert!(matches!(
            read_handshake_version(&mut &zero[..]),
            Err(WireError::UnsupportedVersion(0))
        ));
    }

    /// Frozen v1 code table: `ServeError::code` values never change,
    /// and `from_code` round-trips every one of them.
    #[test]
    fn serve_error_codes_are_frozen_and_round_trip() {
        let samples: Vec<(u16, ServeError)> = vec![
            (1, ServeError::UnknownModel("m".into())),
            (2, ServeError::QueueFull),
            (3, ServeError::QueueClosed),
            (4, ServeError::ShuttingDown),
            (
                5,
                ServeError::Expired {
                    missed_by: Duration::from_millis(1),
                },
            ),
            (6, ServeError::Cancelled),
            (
                7,
                ServeError::Shed {
                    retry_after_hint: Duration::from_millis(2),
                },
            ),
            (8, ServeError::MissingInput),
            (9, ServeError::Closed),
            (
                10,
                ServeError::ShapeMismatch {
                    expected: vec![3, 8, 8],
                    got: vec![3, 9, 9],
                },
            ),
            (14, ServeError::Internal("boom".into())),
        ];
        for (code, err) in &samples {
            assert_eq!(err.code(), *code, "{err:?}");
            let back = ServeError::from_code(*code).expect("known code");
            assert_eq!(back.code(), *code, "from_code must round-trip {code}");
        }
        assert!(ServeError::from_code(0).is_none());
        assert!(ServeError::from_code(15).is_none());
        assert!(ServeError::from_code(u16::MAX).is_none());
        // Codes 11-13 (compile/artifact/quant) round-trip too.
        for code in 11..=13u16 {
            assert_eq!(ServeError::from_code(code).expect("known").code(), code);
        }
    }

    /// Reject frames rebuild the typed error with its payload.
    #[test]
    fn reject_frames_rebuild_typed_errors_with_payloads() {
        let shed = ServeError::Shed {
            retry_after_hint: Duration::from_millis(7),
        };
        let Frame::Reject {
            code,
            aux_us,
            message,
            ..
        } = Frame::reject(1, &shed)
        else {
            panic!("reject() must build a Reject frame");
        };
        let back = reject_to_error(code, aux_us, &message).expect("decode");
        assert!(
            matches!(back, ServeError::Shed { retry_after_hint } if retry_after_hint == Duration::from_millis(7))
        );

        let expired = ServeError::Expired {
            missed_by: Duration::from_micros(321),
        };
        let Frame::Reject { code, aux_us, .. } = Frame::reject(2, &expired) else {
            panic!("reject() must build a Reject frame");
        };
        let back = reject_to_error(code, aux_us, "").expect("decode");
        assert!(
            matches!(back, ServeError::Expired { missed_by } if missed_by == Duration::from_micros(321))
        );

        let unknown = ServeError::UnknownModel("resnet".into());
        let Frame::Reject { code, message, .. } = Frame::reject(3, &unknown) else {
            panic!("reject() must build a Reject frame");
        };
        let back = reject_to_error(code, 0, &message).expect("decode");
        assert!(matches!(back, ServeError::UnknownModel(name) if name == "resnet"));
    }
}
