//! Dense algorithm executors for tuner-selected per-layer lowerings.
//!
//! The direct FKW executor ([`patdnn_runtime::pattern_exec`]) is the
//! default lowering for pruned layers; the per-layer tuner
//! ([`crate::tune`]) can instead select a *densified* lowering — either
//! im2col with register-tiled GEMM or Winograd `F(2×2, 3×3)` — when a
//! layer's stored-MAC count is close enough to dense for the packed SIMD
//! micro-kernels to win. These executors carry their weights in
//! kernel-native form, prepared once at engine build (packed GEMM
//! panels for im2col, the 4×4 Winograd domain for winograd), and pool
//! their per-call scratch so the warm serving path allocates nothing.

use std::fmt;
use std::sync::Mutex;

use patdnn_compiler::fkw::FkwLayer;
use patdnn_tensor::im2col::{col_cols, col_rows, im2col};
use patdnn_tensor::kernels;
use patdnn_tensor::winograd::{transform_input, transform_kernel, transform_output};
use patdnn_tensor::{Conv2dGeometry, Tensor};

/// Minimum stored-weight density (stored MACs over dense MACs) below
/// which the Winograd lowering is refused: a sparser layer's direct
/// executor does strictly less arithmetic than the densified transform.
pub const WINOGRAD_DENSITY_THRESHOLD: f32 = 0.25;

/// Why a layer cannot (or should not) lower through Winograd.
///
/// The shape conditions are hard requirements of `F(2×2, 3×3)`; the
/// density condition is the tuner's profitability guard, enforced at
/// engine build too so a hand-edited artifact cannot demand a lowering
/// the tuner would never pick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WinogradRejection {
    /// The layer is strided; `F(2×2, 3×3)` produces stride-1 tiles only.
    Strided {
        /// The layer's stride.
        stride: usize,
    },
    /// The kernel window is not 3×3.
    KernelShape {
        /// Kernel height.
        kernel_h: usize,
        /// Kernel width.
        kernel_w: usize,
    },
    /// The layer is pruned too far for densification to pay off.
    TooSparse {
        /// Stored-weight density of the layer.
        density: f32,
        /// The eligibility threshold it fell below.
        threshold: f32,
    },
}

impl fmt::Display for WinogradRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WinogradRejection::Strided { stride } => {
                write!(f, "winograd requires stride 1, layer has stride {stride}")
            }
            WinogradRejection::KernelShape { kernel_h, kernel_w } => {
                write!(
                    f,
                    "winograd requires a 3x3 kernel, layer has {kernel_h}x{kernel_w}"
                )
            }
            WinogradRejection::TooSparse { density, threshold } => {
                write!(
                    f,
                    "layer density {density:.3} is below the winograd threshold {threshold:.2}"
                )
            }
        }
    }
}

/// Stored-weight density of an FKW layer: stored MACs over dense MACs.
pub fn fkw_density(fkw: &FkwLayer) -> f32 {
    let dense = fkw.out_c * fkw.in_c * fkw.kernel * fkw.kernel;
    if dense == 0 {
        return 0.0;
    }
    (fkw.stored_kernels() * fkw.entries_per_kernel) as f32 / dense as f32
}

/// Checks whether a pruned layer may lower through Winograd
/// `F(2×2, 3×3)`: stride-1, 3×3 window, and dense enough
/// ([`WINOGRAD_DENSITY_THRESHOLD`]) for the transform to pay off.
pub fn winograd_eligible(geo: &Conv2dGeometry, fkw: &FkwLayer) -> Result<(), WinogradRejection> {
    if (geo.kernel_h, geo.kernel_w) != (3, 3) {
        return Err(WinogradRejection::KernelShape {
            kernel_h: geo.kernel_h,
            kernel_w: geo.kernel_w,
        });
    }
    if geo.stride != 1 {
        return Err(WinogradRejection::Strided { stride: geo.stride });
    }
    let density = fkw_density(fkw);
    if density < WINOGRAD_DENSITY_THRESHOLD {
        return Err(WinogradRejection::TooSparse {
            density,
            threshold: WINOGRAD_DENSITY_THRESHOLD,
        });
    }
    Ok(())
}

/// im2col + packed-GEMM convolution executor.
///
/// Weights are densified and packed into `MR`-row GEMM panels once at
/// construction; each call expands the input into the patch matrix,
/// packs it into `NR`-column panels, and reduces through the dispatched
/// micro-kernel. The patch and panel buffers are pooled, so the warm
/// path allocates nothing.
pub struct Im2colConv {
    geo: Conv2dGeometry,
    /// Reduction depth: `in_c * kernel_h * kernel_w`.
    k: usize,
    /// Dense weights in packed-A panel layout (`out_c` rows).
    packed_w: Vec<f32>,
    bias: Vec<f32>,
    /// Pool of `(cols, packed_b)` scratch pairs.
    // lock: algo-scratch
    scratch: Mutex<Vec<(Vec<f32>, Vec<f32>)>>,
}

impl Im2colConv {
    /// Builds the executor from a layer's dense OIHW weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` disagrees with `geo` or `bias` is neither
    /// empty nor `out_channels` long.
    pub fn new(geo: Conv2dGeometry, weights: &Tensor, bias: Vec<f32>) -> Self {
        assert_eq!(weights.shape4(), geo.weight_shape(), "weight shape");
        assert!(
            bias.is_empty() || bias.len() == geo.out_channels,
            "bias arity"
        );
        let k = col_rows(&geo);
        let mut packed_w = vec![0.0f32; kernels::packed_a_len(geo.out_channels, k)];
        kernels::pack_a_f32(geo.out_channels, k, weights.data(), k, &mut packed_w);
        Im2colConv {
            geo,
            k,
            packed_w,
            bias,
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Bytes held in kernel-native packed form.
    pub fn packed_bytes(&self) -> usize {
        self.packed_w.len() * std::mem::size_of::<f32>()
    }

    /// Runs the convolution on a batched NCHW input, overwriting `out`.
    pub fn run_into(&self, input: &Tensor, out: &mut Tensor) {
        let geo = &self.geo;
        let batch = input.shape()[0];
        let ncols = col_cols(geo);
        let in_img = geo.in_channels * geo.in_h * geo.in_w;
        let out_img = geo.out_channels * ncols;
        let (mut cols, mut bp) = self
            .scratch
            .lock()
            .expect("im2col scratch")
            .pop()
            .unwrap_or_default();
        cols.resize(self.k * ncols, 0.0);
        bp.resize(kernels::packed_b_len(self.k, ncols), 0.0);
        let kernel = kernels::active_kernel();
        for n in 0..batch {
            im2col(&input.data()[n * in_img..(n + 1) * in_img], geo, &mut cols);
            kernels::pack_b_f32(self.k, ncols, &cols, ncols, &mut bp);
            let out_slice = &mut out.data_mut()[n * out_img..(n + 1) * out_img];
            // Seed the accumulating GEMM with the bias.
            for oc in 0..geo.out_channels {
                let b = self.bias.get(oc).copied().unwrap_or(0.0);
                out_slice[oc * ncols..(oc + 1) * ncols].fill(b);
            }
            kernels::gemm_packed_f32(
                kernel,
                geo.out_channels,
                ncols,
                self.k,
                &self.packed_w,
                &bp,
                out_slice,
                ncols,
            );
        }
        self.scratch
            .lock()
            .expect("im2col scratch")
            .push((cols, bp));
    }
}

/// Winograd `F(2×2, 3×3)` convolution executor.
///
/// Kernels are densified and transformed into the 4×4 Winograd domain
/// once at construction (`U = G g Gᵀ` per `(oc, ic)` pair); each call
/// transforms input tiles, multiplies elementwise, and maps back.
/// The per-tile channel buffer is pooled, so the warm path allocates
/// nothing.
pub struct WinogradConv {
    geo: Conv2dGeometry,
    /// Transformed kernels: `out_c * in_c` 4×4 tiles.
    u: Vec<[f32; 16]>,
    bias: Vec<f32>,
    /// Pool of per-call `v_tiles` buffers (`in_c` transformed tiles).
    // lock: algo-scratch
    scratch: Mutex<Vec<Vec<[f32; 16]>>>,
}

impl WinogradConv {
    /// Builds the executor from a layer's dense OIHW weights.
    ///
    /// # Panics
    ///
    /// Panics if `geo` is not a stride-1 3×3 convolution, `weights`
    /// disagrees with `geo`, or `bias` is neither empty nor
    /// `out_channels` long.
    pub fn new(geo: Conv2dGeometry, weights: &Tensor, bias: Vec<f32>) -> Self {
        assert_eq!((geo.kernel_h, geo.kernel_w), (3, 3), "winograd is 3x3");
        assert_eq!(geo.stride, 1, "winograd is stride 1");
        assert_eq!(weights.shape4(), geo.weight_shape(), "weight shape");
        assert!(
            bias.is_empty() || bias.len() == geo.out_channels,
            "bias arity"
        );
        let wd = weights.data();
        let mut u = vec![[0.0f32; 16]; geo.out_channels * geo.in_channels];
        for oc in 0..geo.out_channels {
            for ic in 0..geo.in_channels {
                let base = (oc * geo.in_channels + ic) * 9;
                let mut g = [0.0f32; 9];
                g.copy_from_slice(&wd[base..base + 9]);
                u[oc * geo.in_channels + ic] = transform_kernel(&g);
            }
        }
        WinogradConv {
            geo,
            u,
            bias,
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Bytes held in kernel-native (Winograd-domain) form.
    pub fn packed_bytes(&self) -> usize {
        self.u.len() * 16 * std::mem::size_of::<f32>()
    }

    /// Runs the convolution on a batched NCHW input, overwriting `out`.
    pub fn run_into(&self, input: &Tensor, out: &mut Tensor) {
        let geo = &self.geo;
        let batch = input.shape()[0];
        let tiles_h = geo.out_h.div_ceil(2);
        let tiles_w = geo.out_w.div_ceil(2);
        let in_img = geo.in_channels * geo.in_h * geo.in_w;
        let out_img = geo.out_channels * geo.out_h * geo.out_w;
        let in_data = input.data();
        let out_data = out.data_mut();
        let mut v_tiles = self
            .scratch
            .lock()
            .expect("winograd scratch")
            .pop()
            .unwrap_or_default();
        v_tiles.resize(geo.in_channels, [0.0f32; 16]);

        for n in 0..batch {
            let ibase_n = n * in_img;
            let obase_n = n * out_img;
            for th in 0..tiles_h {
                for tw in 0..tiles_w {
                    for (ic, vt) in v_tiles.iter_mut().enumerate() {
                        let mut d = [0.0f32; 16];
                        for r in 0..4 {
                            let ih = (th * 2 + r) as isize - geo.pad as isize;
                            if ih < 0 || ih >= geo.in_h as isize {
                                continue; // zero-padded row
                            }
                            let rbase = ibase_n + ic * geo.in_h * geo.in_w + ih as usize * geo.in_w;
                            for c in 0..4 {
                                let iw = (tw * 2 + c) as isize - geo.pad as isize;
                                if iw >= 0 && iw < geo.in_w as isize {
                                    d[r * 4 + c] = in_data[rbase + iw as usize];
                                }
                            }
                        }
                        *vt = transform_input(&d);
                    }
                    for oc in 0..geo.out_channels {
                        let mut m = [0.0f32; 16];
                        for (ic, vt) in v_tiles.iter().enumerate() {
                            let uk = &self.u[oc * geo.in_channels + ic];
                            for i in 0..16 {
                                m[i] += uk[i] * vt[i];
                            }
                        }
                        let y = transform_output(&m);
                        let b = self.bias.get(oc).copied().unwrap_or(0.0);
                        let obase = obase_n + oc * geo.out_h * geo.out_w;
                        for r in 0..2 {
                            let oh = th * 2 + r;
                            if oh >= geo.out_h {
                                continue;
                            }
                            for c in 0..2 {
                                let ow = tw * 2 + c;
                                if ow >= geo.out_w {
                                    continue;
                                }
                                out_data[obase + oh * geo.out_w + ow] = y[r * 2 + c] + b;
                            }
                        }
                    }
                }
            }
        }
        self.scratch.lock().expect("winograd scratch").push(v_tiles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patdnn_compiler::fkr::filter_kernel_reorder;
    use patdnn_core::pattern_set::PatternSet;
    use patdnn_core::project::prune_layer;
    use patdnn_tensor::conv::conv2d_ref;
    use patdnn_tensor::rng::Rng;

    fn pruned_fkw(oc: usize, ic: usize, alpha: usize, seed: u64) -> FkwLayer {
        let mut rng = Rng::seed_from(seed);
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("t", &mut w, &set, alpha);
        let order = filter_kernel_reorder(&lp);
        FkwLayer::from_pruned(&w, &lp, &set, &order)
    }

    #[test]
    fn winograd_eligibility_rejects_with_typed_reasons() {
        // Dense-ish layer: 8*8 kernels kept out of 8*8 -> density 4/9.
        let dense_ish = pruned_fkw(8, 8, 64, 1);
        let geo_ok = Conv2dGeometry::new(8, 8, 3, 3, 8, 8, 1, 1);
        assert_eq!(winograd_eligible(&geo_ok, &dense_ish), Ok(()));

        let strided = Conv2dGeometry::new(8, 8, 3, 3, 8, 8, 2, 1);
        assert_eq!(
            winograd_eligible(&strided, &dense_ish),
            Err(WinogradRejection::Strided { stride: 2 })
        );

        let geo_5x5 = Conv2dGeometry::new(8, 8, 5, 5, 8, 8, 1, 2);
        assert_eq!(
            winograd_eligible(&geo_5x5, &dense_ish),
            Err(WinogradRejection::KernelShape {
                kernel_h: 5,
                kernel_w: 5
            })
        );

        // Heavily pruned: 16 of 64 kernels, 4 of 9 entries -> ~0.11.
        let sparse = pruned_fkw(8, 8, 16, 2);
        assert!(matches!(
            winograd_eligible(&geo_ok, &sparse),
            Err(WinogradRejection::TooSparse { density, .. }) if density < 0.25
        ));
    }

    #[test]
    fn im2col_executor_matches_reference_conv() {
        let mut rng = Rng::seed_from(3);
        for &(oc, ic, hw, stride, pad) in &[(4, 3, 8, 1, 1), (3, 5, 7, 2, 1), (2, 2, 5, 1, 0)] {
            let geo = Conv2dGeometry::new(oc, ic, 3, 3, hw, hw, stride, pad);
            let weights = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
            let bias: Vec<f32> = (0..oc).map(|_| rng.uniform(-0.5, 0.5)).collect();
            let input = Tensor::randn(&[2, ic, hw, hw], &mut rng);
            let want = conv2d_ref(&input, &weights, Some(&bias), &geo);
            let exec = Im2colConv::new(geo, &weights, bias);
            let mut out = Tensor::zeros(want.shape());
            exec.run_into(&input, &mut out);
            // Run again from the pooled scratch: results must not drift.
            exec.run_into(&input, &mut out);
            assert!(
                want.approx_eq(&out, 1e-4),
                "oc={oc} ic={ic} hw={hw}: {:?}",
                want.max_abs_diff(&out)
            );
            assert!(exec.packed_bytes() > 0);
        }
    }

    #[test]
    fn winograd_executor_matches_reference_conv() {
        let mut rng = Rng::seed_from(4);
        for &(oc, ic, hw, pad) in &[(4, 3, 8, 1), (2, 2, 7, 1), (3, 1, 5, 0)] {
            let geo = Conv2dGeometry::new(oc, ic, 3, 3, hw, hw, 1, pad);
            let weights = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
            let bias: Vec<f32> = (0..oc).map(|_| rng.uniform(-0.5, 0.5)).collect();
            let input = Tensor::randn(&[2, ic, hw, hw], &mut rng);
            let want = conv2d_ref(&input, &weights, Some(&bias), &geo);
            let exec = WinogradConv::new(geo, &weights, bias);
            let mut out = Tensor::zeros(want.shape());
            exec.run_into(&input, &mut out);
            exec.run_into(&input, &mut out);
            assert!(
                want.approx_eq(&out, 1e-3),
                "oc={oc} ic={ic} hw={hw}: {:?}",
                want.max_abs_diff(&out)
            );
        }
    }

    #[test]
    fn executors_match_direct_fkw_lowering() {
        // The executors consume `to_dense()` weights: outputs must match
        // the pattern-aware direct path on a genuinely pruned layer.
        let fkw = pruned_fkw(8, 8, 64, 5);
        let geo = Conv2dGeometry::new(8, 8, 3, 3, 8, 8, 1, 1);
        let mut rng = Rng::seed_from(6);
        let input = Tensor::randn(&[1, 8, 8, 8], &mut rng);
        let bias: Vec<f32> = (0..8).map(|_| rng.uniform(-0.5, 0.5)).collect();
        let dense = fkw.to_dense();
        let want = conv2d_ref(&input, &dense, Some(&bias), &geo);

        let im2col = Im2colConv::new(geo, &dense, bias.clone());
        let mut got = Tensor::zeros(want.shape());
        im2col.run_into(&input, &mut got);
        assert!(want.approx_eq(&got, 1e-4));

        assert_eq!(winograd_eligible(&geo, &fkw), Ok(()));
        let wino = WinogradConv::new(geo, &dense, bias);
        let mut got_w = Tensor::zeros(want.shape());
        wino.run_into(&input, &mut got_w);
        assert!(want.approx_eq(&got_w, 1e-3));
    }
}
