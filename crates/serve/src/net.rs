//! The std-only TCP front-end: `patdnn-serve --listen`.
//!
//! A [`NetServer`] binds one TCP port and speaks two protocols,
//! distinguished by sniffing the first bytes of each connection:
//!
//! - the binary wire protocol ([`crate::wire`], connections opening
//!   with the `PDNW` magic): inference requests with deadline,
//!   priority, and cancellation mapped straight onto the in-process
//!   [`Client`] lifecycle, so a remote caller sees exactly the typed
//!   terminals an in-process caller does — `Completed`, `Expired`,
//!   `Cancelled`, `Shed { retry_after_hint }` — as frames carrying the
//!   frozen v1 codes;
//! - a minimal HTTP/1.1 shim (connections opening with an ASCII
//!   method): `GET /metrics` returns the serving counters in a flat
//!   Prometheus-style text form, `GET /healthz` a liveness line.
//!
//! One connection can carry many requests concurrently: request ids
//! are client-chosen and echoed back, responses are written under a
//! per-connection writer lock as each request resolves (a dedicated
//! waiter thread per in-flight request blocks on its
//! [`crate::request::ResponseHandle`]). Deadlines arrive as relative
//! budgets and are re-anchored on the server's monotonic clock, so
//! client clock skew cannot expire requests in flight.
//!
//! [`NetClient`] is the matching blocking client — used by the router
//! to forward requests, by the loopback tests, and by anything else
//! that wants typed outcomes ([`WireOutcome`]) over TCP.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use patdnn_tensor::Tensor;

use crate::metrics::MetricsSnapshot;
use crate::request::{CancelToken, Client, Priority, Terminal};
use crate::server::Server;
use crate::wire::{self, duration_to_us, read_frame, write_frame, Frame, WireError, WIRE_MAGIC};
use crate::ServeError;

/// Network front-end knobs.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Honor [`Frame::Shutdown`] from peers. On for demo/smoke
    /// deployments (the orchestration harness drains fleets with it);
    /// turn off when the port is exposed beyond the orchestrator.
    pub allow_remote_shutdown: bool,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            allow_remote_shutdown: true,
        }
    }
}

/// Counts in-flight response-waiter threads so shutdown can wait for
/// every response to be written before the process exits. Shared with
/// the router front-end.
#[derive(Default)]
pub(crate) struct WaitGroup {
    // lock: waitgroup-count
    count: Mutex<usize>,
    zero: Condvar,
}

impl WaitGroup {
    pub(crate) fn add(&self) {
        *self.count.lock().expect("waitgroup lock") += 1;
    }

    pub(crate) fn done(&self) {
        let mut n = self.count.lock().expect("waitgroup lock");
        *n -= 1;
        if *n == 0 {
            self.zero.notify_all();
        }
    }

    pub(crate) fn wait(&self) {
        let mut n = self.count.lock().expect("waitgroup lock");
        while *n > 0 {
            n = self.zero.wait(n).expect("waitgroup lock");
        }
    }
}

/// State shared by every connection handler.
struct NetShared {
    client: Client,
    cfg: NetServerConfig,
    /// Set when a shutdown frame arrives; the accept loop exits on the
    /// next wake-up.
    stop: AtomicBool,
    /// Whether the stop should drain queued work (vs fail it typed).
    drain: AtomicBool,
    waiters: WaitGroup,
    local_addr: SocketAddr,
}

/// A TCP front-end wrapping a running [`Server`].
pub struct NetServer {
    server: Server,
    listener: TcpListener,
    shared: Arc<NetShared>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) over a running server.
    pub fn bind(server: Server, addr: &str, cfg: NetServerConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(NetShared {
            client: server.client(),
            cfg,
            stop: AtomicBool::new(false),
            drain: AtomicBool::new(true),
            waiters: WaitGroup::default(),
            local_addr,
        });
        Ok(NetServer {
            server,
            listener,
            shared,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Accepts connections until a shutdown frame arrives, then shuts
    /// the inner server down (draining queued work for
    /// `Shutdown { drain: true }`, failing it typed otherwise) and
    /// waits until every in-flight response has been written.
    pub fn serve(self) -> std::io::Result<()> {
        let NetServer {
            server,
            listener,
            shared,
        } = self;
        for stream in listener.incoming() {
            if shared.stop.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || handle_connection(stream, &shared));
        }
        if shared.drain.load(Ordering::Acquire) {
            server.shutdown();
        } else {
            server.shutdown_now();
        }
        // Every queued request now has a terminal; wait for the waiter
        // threads to finish writing them to their sockets.
        shared.waiters.wait();
        Ok(())
    }

    /// Runs [`Self::serve`] on a background thread and returns a
    /// handle for tests and embedders.
    pub fn spawn(self) -> NetServerHandle {
        let addr = self.local_addr();
        let join = std::thread::spawn(move || self.serve());
        NetServerHandle { addr, join }
    }
}

/// Handle to a [`NetServer`] running on a background thread.
pub struct NetServerHandle {
    addr: SocketAddr,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

impl NetServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends a shutdown frame (drain or fail-pending) and joins the
    /// serve loop.
    pub fn shutdown(self, drain: bool) -> std::io::Result<()> {
        if let Ok(mut client) = NetClient::connect(&self.addr.to_string()) {
            let _ = client.shutdown(drain);
        }
        self.join.join().expect("net server thread panicked")
    }
}

/// Sniffs the protocol and dispatches the connection.
fn handle_connection(stream: TcpStream, shared: &Arc<NetShared>) {
    let _ = stream.set_nodelay(true);
    let mut head = [0u8; 4];
    let mut reader = stream;
    if reader.read_exact(&mut head).is_err() {
        return;
    }
    if &head == WIRE_MAGIC {
        let _ = handle_wire_connection(reader, shared);
    } else if head.is_ascii() {
        // An HTTP request line ("GET ", "HEAD", ...): hand the already
        // consumed bytes to the shim.
        let _ = handle_http_connection(reader, &head, shared);
    }
    // Anything else: drop the connection silently.
}

/// The binary protocol loop for one connection.
fn handle_wire_connection(stream: TcpStream, shared: &Arc<NetShared>) -> Result<(), WireError> {
    let mut reader = BufReader::new(stream.try_clone()?);
    wire::read_handshake_version(&mut reader)?;
    // lock: net-writer
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    // Cancel tokens of this connection's in-flight requests, so a
    // `Cancel { id }` frame can reach them.
    // lock: net-inflight
    let inflight: Arc<Mutex<HashMap<u64, CancelToken>>> = Arc::new(Mutex::new(HashMap::new()));
    // A read error means the peer hung up or sent garbage: the
    // connection is done (in-flight requests still resolve; their
    // writes fail harmlessly if the socket is gone).
    while let Ok(frame) = read_frame(&mut reader) {
        match frame {
            Frame::Infer {
                id,
                model,
                priority,
                deadline_us,
                input,
            } => {
                submit_remote(
                    shared,
                    &writer,
                    &inflight,
                    id,
                    model,
                    priority,
                    deadline_us,
                    input,
                );
            }
            Frame::Cancel { id } => {
                // Clone the token out so the inflight registry lock is
                // released before signalling.
                let token = inflight.lock().expect("inflight lock").get(&id).cloned();
                if let Some(token) = token {
                    token.cancel();
                }
            }
            Frame::Ping { token } => {
                let snap = shared.client.metrics().snapshot();
                let pong = Frame::Pong {
                    token,
                    queue_depth: snap.queue_depth,
                    in_flight: snap.in_flight,
                    models: shared.client.models().len() as u32,
                };
                write_locked(&writer, &pong)?;
            }
            Frame::Shutdown { drain } => {
                if !shared.cfg.allow_remote_shutdown {
                    write_locked(
                        &writer,
                        &Frame::reject(0, &ServeError::Internal("remote shutdown disabled".into())),
                    )?;
                    continue;
                }
                shared.drain.store(drain, Ordering::Release);
                shared.stop.store(true, Ordering::Release);
                write_locked(&writer, &Frame::ShutdownAck)?;
                // Unblock the accept loop so `serve` can proceed to
                // the actual server shutdown.
                let _ = TcpStream::connect(shared.local_addr);
                break;
            }
            // Server-originated frames arriving at the server are a
            // protocol violation; drop the connection.
            _ => break,
        }
    }
    Ok(())
}

/// Submits one remote request onto the in-process lifecycle and spawns
/// the waiter that writes its terminal back.
#[allow(clippy::too_many_arguments)]
fn submit_remote(
    shared: &Arc<NetShared>,
    writer: &Arc<Mutex<TcpStream>>,
    inflight: &Arc<Mutex<HashMap<u64, CancelToken>>>,
    id: u64,
    model: String,
    priority: Priority,
    deadline_us: u64,
    input: Tensor,
) {
    let token = CancelToken::new();
    let mut builder = shared
        .client
        .request(&model)
        .input(input)
        .priority(priority)
        .cancel_token(token.clone());
    if deadline_us > 0 {
        // Relative budget re-anchored on this host's monotonic clock.
        builder = builder.deadline_in(Duration::from_micros(deadline_us));
    }
    match builder.submit() {
        Ok(handle) => {
            inflight.lock().expect("inflight lock").insert(id, token);
            shared.waiters.add();
            let shared = Arc::clone(shared);
            let writer = Arc::clone(writer);
            let inflight = Arc::clone(inflight);
            std::thread::spawn(move || {
                let terminal = handle.wait();
                inflight.lock().expect("inflight lock").remove(&id);
                let frame = terminal_to_frame(id, terminal);
                let _ = write_locked(&writer, &frame);
                shared.waiters.done();
            });
        }
        // Fast-fail path: submission itself refused (unknown model,
        // shape mismatch, expired-at-submit, shed, backpressure...).
        Err(e) => {
            let _ = write_locked(writer, &Frame::reject(id, &e));
        }
    }
}

/// Renders a typed terminal as its response frame.
fn terminal_to_frame(id: u64, terminal: Terminal) -> Frame {
    match terminal {
        Terminal::Completed(resp) => Frame::Completed {
            id,
            latency_us: duration_to_us(resp.latency),
            batch_size: resp.batch_size as u32,
            output: resp.output,
        },
        other => match other.into_result() {
            Ok(_) => unreachable!("non-completed terminal has no response"),
            Err(e) => Frame::reject(id, &e),
        },
    }
}

fn write_locked(writer: &Arc<Mutex<TcpStream>>, frame: &Frame) -> Result<(), WireError> {
    let mut guard = writer.lock().expect("net writer lock");
    let mut buffered = BufWriter::new(&mut *guard);
    // lock-order: allow(net-writer serializes whole response frames; holding it across the socket write is the point)
    write_frame(&mut buffered, frame)?;
    buffered.flush()?;
    Ok(())
}

// ---------------------------------------------------------------------
// HTTP/1.1 shim
// ---------------------------------------------------------------------

/// Serves one HTTP request (`/metrics`, `/healthz`) and closes.
fn handle_http_connection(
    mut stream: TcpStream,
    head: &[u8; 4],
    shared: &Arc<NetShared>,
) -> std::io::Result<()> {
    let path = match read_http_request(&mut stream, head) {
        Some(p) => p,
        None => return Ok(()),
    };
    let snap = shared.client.metrics().snapshot();
    let models = shared.client.models().len();
    let (status, body) = match path.as_str() {
        "/healthz" => (
            "200 OK",
            format!("ok models={models} in_flight={}\n", snap.in_flight),
        ),
        "/metrics" => ("200 OK", render_metrics_text(&snap, models)),
        _ => ("404 Not Found", "not found\n".to_owned()),
    };
    write_http_response(&mut stream, status, &body)
}

/// Reads the request line + headers; returns the request path.
pub(crate) fn read_http_request(stream: &mut TcpStream, head: &[u8]) -> Option<String> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut buf = head.to_vec();
    let mut byte = [0u8; 1];
    // Read until the blank line ending the header block (bounded so a
    // hostile peer cannot grow the buffer without limit).
    while !buf.ends_with(b"\r\n\r\n") && !buf.ends_with(b"\n\n") && buf.len() < 16 << 10 {
        match stream.read(&mut byte) {
            Ok(1) => buf.push(byte[0]),
            _ => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let request_line = text.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    Some(path.to_owned())
}

pub(crate) fn write_http_response(
    stream: &mut TcpStream,
    status: &str,
    body: &str,
) -> std::io::Result<()> {
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()?;
    let _ = stream.shutdown(SockShutdown::Both);
    Ok(())
}

/// Flat `name value` exposition of the serving counters (one gauge or
/// counter per line, Prometheus text-format compatible).
pub(crate) fn render_metrics_text(snap: &MetricsSnapshot, models: usize) -> String {
    let mut out = String::new();
    let mut line = |name: &str, value: String| {
        out.push_str(name);
        out.push(' ');
        out.push_str(&value);
        out.push('\n');
    };
    line("patdnn_models", models.to_string());
    line("patdnn_requests_total", snap.requests.to_string());
    line("patdnn_batches_total", snap.batches.to_string());
    line("patdnn_rejected_total", snap.rejected.to_string());
    line("patdnn_shed_total", snap.shed.to_string());
    line("patdnn_expired_total", snap.expired.to_string());
    line("patdnn_cancelled_total", snap.cancelled.to_string());
    line("patdnn_queue_depth", snap.queue_depth.to_string());
    line("patdnn_in_flight", snap.in_flight.to_string());
    line("patdnn_qps", format!("{:.3}", snap.qps));
    line("patdnn_latency_p50_ms", format!("{:.3}", snap.p50_ms));
    line("patdnn_latency_p99_ms", format!("{:.3}", snap.p99_ms));
    for class in &snap.classes {
        let label = class.priority.label();
        line(
            &format!("patdnn_class_requests{{class=\"{label}\"}}"),
            class.requests.to_string(),
        );
        line(
            &format!("patdnn_class_latency_p50_ms{{class=\"{label}\"}}"),
            format!("{:.3}", class.p50_ms),
        );
        line(
            &format!("patdnn_class_latency_p99_ms{{class=\"{label}\"}}"),
            format!("{:.3}", class.p99_ms),
        );
    }
    out
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// The typed outcome a remote request resolves to — the wire-side
/// mirror of [`Terminal`] (`Completed` carries the output; everything
/// else is the typed [`ServeError`] rebuilt from its frozen code).
#[derive(Debug)]
#[non_exhaustive]
pub enum WireOutcome {
    /// The request executed; here is its output.
    Completed {
        /// The model output, `[1, ...]`.
        output: Tensor,
        /// Server-side end-to-end latency.
        latency: Duration,
        /// Size of the executed batch this request rode in.
        batch_size: usize,
    },
    /// The request resolved to a typed non-completed terminal.
    Rejected(ServeError),
}

impl WireOutcome {
    /// `true` for [`WireOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, WireOutcome::Completed { .. })
    }

    /// The terminal-state code this outcome corresponds to — equal to
    /// [`Terminal::code`] for the same outcome in-process, which is
    /// what the loopback parity tests assert.
    pub fn terminal_code(&self) -> u16 {
        match self {
            WireOutcome::Completed { .. } => 0,
            WireOutcome::Rejected(ServeError::Expired { .. }) => 1,
            WireOutcome::Rejected(ServeError::Cancelled) => 2,
            WireOutcome::Rejected(ServeError::Shed { .. }) => 3,
            WireOutcome::Rejected(_) => 4,
        }
    }
}

/// Live gauges returned by a ping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PongInfo {
    /// Requests waiting in the remote batch queue.
    pub queue_depth: u64,
    /// Requests holding a remote admission permit.
    pub in_flight: u64,
    /// Models registered on the remote server.
    pub models: u32,
}

/// A blocking client speaking the wire protocol.
///
/// Requests are multiplexed by id, so callers may interleave
/// [`NetClient::submit`] / [`NetClient::recv`]; the convenience
/// [`NetClient::infer`] submits and waits for that id's response.
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl NetClient {
    /// Connects and performs the protocol handshake.
    pub fn connect(addr: &str) -> Result<NetClient, WireError> {
        Self::connect_timeout(addr, Duration::from_secs(5))
    }

    /// Connects with an explicit TCP connect timeout.
    pub fn connect_timeout(addr: &str, timeout: Duration) -> Result<NetClient, WireError> {
        let mut last_err: Option<std::io::Error> = None;
        let addrs = addr.to_socket_addrs().map_err(WireError::Io)?;
        let mut stream = None;
        for candidate in addrs {
            match TcpStream::connect_timeout(&candidate, timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = stream.ok_or_else(|| {
            WireError::Io(last_err.unwrap_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::NotFound, "no resolvable address")
            }))
        })?;
        let _ = stream.set_nodelay(true);
        let mut writer = stream.try_clone()?;
        wire::write_handshake(&mut writer)?;
        Ok(NetClient {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    /// Submits one request and returns its id (response read
    /// separately via [`NetClient::recv`]).
    pub fn submit(
        &mut self,
        model: &str,
        input: &Tensor,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<u64, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        self.submit_with_id(id, model, input, priority, deadline)?;
        Ok(id)
    }

    /// Submits with an explicit id (the router reuses upstream ids so
    /// its per-replica connections stay correlated).
    pub fn submit_with_id(
        &mut self,
        id: u64,
        model: &str,
        input: &Tensor,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<(), WireError> {
        self.next_id = self.next_id.max(id + 1);
        let frame = Frame::Infer {
            id,
            model: model.to_owned(),
            priority,
            // `0` is the "no deadline" sentinel on the wire, so a
            // still-live sub-microsecond budget must round up to 1 —
            // truncating it to the sentinel would serve the request
            // deadline-free (the router forwards *remaining* budgets,
            // which legitimately shrink below 1µs).
            deadline_us: deadline.map(|d| duration_to_us(d).max(1)).unwrap_or(0),
            input: input.clone(),
        };
        let mut buffered = BufWriter::new(&mut self.writer);
        write_frame(&mut buffered, &frame)?;
        buffered.flush()?;
        Ok(())
    }

    /// Requests best-effort cancellation of `id`.
    pub fn cancel(&mut self, id: u64) -> Result<(), WireError> {
        write_frame(&mut self.writer, &Frame::Cancel { id })
    }

    /// Blocks for the next response frame, returning `(id, outcome)`.
    pub fn recv(&mut self) -> Result<(u64, WireOutcome), WireError> {
        loop {
            match read_frame(&mut self.reader)? {
                Frame::Completed {
                    id,
                    latency_us,
                    batch_size,
                    output,
                } => {
                    return Ok((
                        id,
                        WireOutcome::Completed {
                            output,
                            latency: Duration::from_micros(latency_us),
                            batch_size: batch_size as usize,
                        },
                    ))
                }
                Frame::Reject {
                    id,
                    code,
                    aux_us,
                    message,
                } => {
                    let err = wire::reject_to_error(code, aux_us, &message)?;
                    return Ok((id, WireOutcome::Rejected(err)));
                }
                // Pongs may interleave with responses when a caller
                // pings over a busy connection.
                Frame::Pong { .. } | Frame::ShutdownAck => continue,
                other => {
                    return Err(WireError::Malformed(format!(
                        "unexpected frame {:#04x} awaiting a response",
                        other.tag()
                    )))
                }
            }
        }
    }

    /// Submits one request and blocks for *its* response (responses to
    /// other outstanding ids arriving first are a protocol error on a
    /// single-threaded connection).
    pub fn infer(
        &mut self,
        model: &str,
        input: &Tensor,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<WireOutcome, WireError> {
        let id = self.submit(model, input, priority, deadline)?;
        let (got, outcome) = self.recv()?;
        if got != id {
            return Err(WireError::Malformed(format!(
                "response id {got} does not match request id {id}"
            )));
        }
        Ok(outcome)
    }

    /// Round-trips a ping, returning the remote gauges.
    pub fn ping(&mut self) -> Result<PongInfo, WireError> {
        let token = 0x50_49_4E_47 ^ self.next_id;
        write_frame(&mut self.writer, &Frame::Ping { token })?;
        loop {
            if let Frame::Pong {
                token: got,
                queue_depth,
                in_flight,
                models,
            } = read_frame(&mut self.reader)?
            {
                if got == token {
                    return Ok(PongInfo {
                        queue_depth,
                        in_flight,
                        models,
                    });
                }
            }
        }
    }

    /// Asks the remote process to shut down and waits for the ack.
    pub fn shutdown(&mut self, drain: bool) -> Result<(), WireError> {
        write_frame(&mut self.writer, &Frame::Shutdown { drain })?;
        loop {
            match read_frame(&mut self.reader) {
                Ok(Frame::ShutdownAck) => return Ok(()),
                // Responses to still-outstanding requests may arrive
                // first; the ack terminates the stream.
                Ok(_) => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Fetches an HTTP path (e.g. `/metrics`) from a serving or router
/// port, returning the response body. Std-only one-shot GET, shared by
/// the smoke harness and tests.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_owned()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "no http header terminator",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;

    #[test]
    fn metrics_text_renders_every_counter() {
        let snap = crate::metrics::ServerMetrics::new().snapshot();
        let text = render_metrics_text(&snap, 2);
        for needle in [
            "patdnn_models 2",
            "patdnn_requests_total 0",
            "patdnn_queue_depth 0",
            "patdnn_in_flight 0",
            "patdnn_class_latency_p99_ms{class=\"interactive\"}",
            "patdnn_class_latency_p99_ms{class=\"batch\"}",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn wire_outcome_codes_mirror_terminals() {
        let shed = WireOutcome::Rejected(ServeError::Shed {
            retry_after_hint: Duration::from_millis(1),
        });
        assert_eq!(shed.terminal_code(), 3);
        let cancelled = WireOutcome::Rejected(ServeError::Cancelled);
        assert_eq!(cancelled.terminal_code(), 2);
        let expired = WireOutcome::Rejected(ServeError::Expired {
            missed_by: Duration::ZERO,
        });
        assert_eq!(expired.terminal_code(), 1);
        let failed = WireOutcome::Rejected(ServeError::Internal("x".into()));
        assert_eq!(failed.terminal_code(), 4);
        assert!(!failed.is_completed());
        // Codes equal Terminal::code for the same outcomes.
        assert_eq!(Terminal::Cancelled.code(), cancelled.terminal_code());
    }

    #[test]
    fn submit_with_id_advances_the_id_counter() {
        // Pure counter logic (no socket): ids never collide after an
        // explicit id is used.
        let mut next = 1u64;
        for explicit in [5u64, 2, 9] {
            next = next.max(explicit + 1);
        }
        assert_eq!(next, 10);
        let _ = Priority::Standard;
    }
}
