//! The compiled-model inference engine.
//!
//! An [`Engine`] turns a [`ModelArtifact`] into an executable DAG plan:
//! one executor per step (pattern executors over FKW storage for pruned
//! convolutions — main path and 1×1 projection shortcuts alike — the
//! tiled dense kernel otherwise, and an elementwise `Add` for residual
//! joins) plus per-slot buffer shapes. Steps read and write named
//! buffer *slots* assigned by the compiler's liveness analysis, so a
//! value's buffer is recycled as soon as its last consumer has run.
//! Intermediate activations live in a pool of reusable per-slot scratch
//! buffer sets — a warm engine allocates nothing on the steady-state
//! `infer` path for pattern-conv steps, and concurrent callers each
//! check out their own buffer set, so `infer(&self)` is freely shareable
//! across server workers.
//!
//! Every step handles batch-N inputs; [`Engine::infer_batch`] stacks
//! per-request items into one batched execution (the dynamic-batching
//! fast path) and splits the results back out.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use patdnn_compiler::quant::quantize_slice_into;
use patdnn_compiler::tune::space::ConvAlgo;
use patdnn_runtime::dense::TiledConv;
use patdnn_runtime::executor::{effective_gflops, ConvExecutor, StepClock};
use patdnn_runtime::parallel::{ParallelPattern, Schedule};
use patdnn_runtime::pattern_exec::PatternConv;
use patdnn_runtime::quant_exec::QuantPatternConv;
use patdnn_tensor::kernels;
use patdnn_tensor::{Conv2dGeometry, Tensor};

use crate::algo_exec::{Im2colConv, WinogradConv};
use crate::artifact::{ArtifactError, LayerPlan, ModelArtifact, Precision};
use crate::ServeError;

/// Wall-time and throughput record of one executed plan step, produced
/// by the profiled inference paths ([`Engine::infer_profiled`],
/// [`Engine::infer_batch_profiled`]) and consumed by
/// [`crate::telemetry::Telemetry`].
#[derive(Debug, Clone)]
pub struct StepTiming {
    /// Plan step index.
    pub index: usize,
    /// Step kind (`pattern-conv`, `quant-fc`, `add`, …).
    pub kind: &'static str,
    /// Numeric precision the step executed at.
    pub precision: Precision,
    /// When the step started.
    pub started: Instant,
    /// Wall time of the step (fused ReLU included).
    pub wall: Duration,
    /// Dense-equivalent FLOPs the step performed (batch included).
    pub flops: f64,
}

impl StepTiming {
    /// Dense-equivalent GFLOP/s achieved by this execution.
    pub fn dense_gflops(&self) -> f64 {
        effective_gflops(self.flops, self.wall)
    }
}

/// Engine construction options.
///
/// Each step's optimization level, tuning parameters, and thread
/// schedule come from its persisted [`crate::artifact::ExecConfig`] — a
/// tuned artifact serves tuned without retuning at load. The only knob
/// left here is a deployment-side thread override for serving a plan on
/// a machine with a different core budget than it was compiled for.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineOptions {
    /// `Some(n)` forces every pattern-conv step to `n` intra-layer
    /// threads (1 = serial), ignoring the artifact's per-step schedule;
    /// `None` (the default) honors each step's persisted config.
    pub threads: Option<usize>,
}

/// One executable step of the plan.
enum StepExec {
    Pattern(PatternConv),
    PatternPar(ParallelPattern),
    /// Tuner-selected im2col + packed-GEMM lowering of a pruned conv.
    Im2col(Im2colConv),
    /// Tuner-selected Winograd `F(2×2, 3×3)` lowering of a pruned conv.
    Winograd(WinogradConv),
    Dense(TiledConv),
    MaxPool {
        kernel: usize,
        stride: usize,
        pad: usize,
    },
    GlobalAvgPool,
    Flatten,
    Relu,
    Fc(FcExec),
    /// Elementwise residual join of two slots.
    Add,
    /// INT8 pattern convolution (`i8 × i8 → i32`, dequantized output).
    QuantPattern(QuantPatternConv),
    /// INT8 fully-connected layer.
    QuantFc(QuantFcExec),
}

/// Fully-connected executor over pre-packed weight panels: the weight
/// matrix is packed into the micro-kernels' `NR`-column panel layout
/// once at engine build; each call packs the activation batch into
/// `MR`-row panels (pooled scratch) and reduces through the dispatched
/// register-tiled GEMM.
struct FcExec {
    /// Weights in packed-B panel layout (`in_f` deep, `out_f` wide).
    packed_w: Vec<f32>,
    out_f: usize,
    in_f: usize,
    bias: Vec<f32>,
    /// Pool of packed-activation buffers.
    // lock: engine-scratch
    scratch: Mutex<Vec<Vec<f32>>>,
}

impl FcExec {
    fn new(weights: &Tensor, bias: Vec<f32>) -> Self {
        let (out_f, in_f) = (weights.shape()[0], weights.shape()[1]);
        let mut packed_w = vec![0.0f32; kernels::packed_b_len(in_f, out_f)];
        kernels::pack_b_t_f32(in_f, out_f, weights.data(), in_f, &mut packed_w);
        FcExec {
            packed_w,
            out_f,
            in_f,
            bias,
            scratch: Mutex::new(Vec::new()),
        }
    }

    fn run_into(&self, input: &Tensor, out: &mut Tensor) {
        let batch = input.shape()[0];
        let mut ap = self
            .scratch
            .lock()
            .expect("fc scratch")
            .pop()
            .unwrap_or_default();
        ap.resize(kernels::packed_a_len(batch, self.in_f), 0.0);
        kernels::pack_a_f32(batch, self.in_f, input.data(), self.in_f, &mut ap);
        let od = out.data_mut();
        // Seed the accumulating GEMM with the bias.
        for b in 0..batch {
            od[b * self.out_f..(b + 1) * self.out_f].copy_from_slice(&self.bias);
        }
        kernels::gemm_packed_f32(
            kernels::active_kernel(),
            batch,
            self.out_f,
            self.in_f,
            &ap,
            &self.packed_w,
            od,
            self.out_f,
        );
        self.scratch.lock().expect("fc scratch").push(ap);
    }
}

/// INT8 fully-connected executor: quantize the batch with the
/// calibrated activation scale, run the exact `i8 × i8 → i32`
/// panel-packed GEMV, dequantize with per-output-row scales, add the
/// `f32` bias. Weights are pre-packed into the micro-kernels' madd
/// layout at engine build; scratch (quantized inputs + `i32`
/// accumulators) is pooled so the warm path allocates nothing.
struct QuantFcExec {
    /// Quantized weights in packed interleaved-pair panel layout.
    packed_w: Vec<i8>,
    out_f: usize,
    in_f: usize,
    scales: Vec<f32>,
    act_scale: f32,
    bias: Vec<f32>,
    // lock: engine-scratch
    scratch: Mutex<Vec<(Vec<i8>, Vec<i32>)>>,
}

impl QuantFcExec {
    fn new(
        qweights: &[i8],
        out_f: usize,
        in_f: usize,
        scales: Vec<f32>,
        act_scale: f32,
        bias: Vec<f32>,
    ) -> Self {
        let mut packed_w = vec![0i8; kernels::packed_b_i8_len(in_f, out_f)];
        kernels::pack_b_t_i8(in_f, out_f, qweights, &mut packed_w);
        QuantFcExec {
            packed_w,
            out_f,
            in_f,
            scales,
            act_scale,
            bias,
            scratch: Mutex::new(Vec::new()),
        }
    }

    fn run_into(&self, input: &Tensor, out: &mut Tensor) {
        let batch = input.shape()[0];
        let (mut qin, mut acc) = self
            .scratch
            .lock()
            .expect("quant fc scratch")
            .pop()
            .unwrap_or_default();
        qin.resize(batch * self.in_f, 0);
        acc.resize(batch * self.out_f, 0);
        acc.fill(0);
        quantize_slice_into(input.data(), self.act_scale, &mut qin);
        let kernel = kernels::active_kernel();
        for b in 0..batch {
            kernel.gemv_i8(
                self.out_f,
                self.in_f,
                &qin[b * self.in_f..(b + 1) * self.in_f],
                &self.packed_w,
                &mut acc[b * self.out_f..(b + 1) * self.out_f],
            );
        }
        let od = out.data_mut();
        for b in 0..batch {
            for o in 0..self.out_f {
                od[b * self.out_f + o] = acc[b * self.out_f + o] as f32
                    * (self.act_scale * self.scales[o])
                    + self.bias[o];
            }
        }
        self.scratch
            .lock()
            .expect("quant fc scratch")
            .push((qin, acc));
    }
}

struct Step {
    exec: StepExec,
    /// Apply ReLU to this step's output (fused activation).
    relu: bool,
    /// Slots read, in op order (slot 0 is the network input).
    inputs: Vec<usize>,
    /// Slot written (never 0, never one of `inputs`).
    output: usize,
    /// Per-item output shape: `[c, h, w]` or `[features]`.
    out_shape: Vec<usize>,
    /// Artifact step kind, for profiling labels.
    kind: &'static str,
    /// Numeric precision this step executes at.
    precision: Precision,
    /// Dense-equivalent FLOPs per batch item.
    flops_per_item: f64,
}

/// A compiled network ready to serve inference.
pub struct Engine {
    name: String,
    input: [usize; 3],
    steps: Vec<Step>,
    /// Per-slot per-item shape; `None` for slots the plan never writes
    /// (slot 0 — the borrowed input — and any unused declared slots).
    slot_shapes: Vec<Option<Vec<usize>>>,
    artifact: ModelArtifact,
    /// Pool of per-call scratch buffer sets (one tensor per slot).
    // lock: engine-scratch
    scratch: Mutex<Vec<Vec<Tensor>>>,
}

impl Engine {
    /// Builds the executable plan from an artifact.
    ///
    /// The plan verifier ([`mod@crate::verify`]) runs first — slot
    /// lifetimes, shape dataflow, FKW index bounds, accumulation
    /// proofs, exec-config and algorithm eligibility all live there —
    /// and any violation surfaces as
    /// [`ArtifactError::Rejected`]. Construction below then trusts the
    /// verified plan: it re-checks nothing and reuses the shapes the
    /// analysis already propagated.
    pub fn new(artifact: ModelArtifact, opts: EngineOptions) -> Result<Self, ServeError> {
        assert!(
            opts.threads.is_none_or(|t| t > 0),
            "thread override needs at least one thread"
        );
        let (report, facts) = crate::verify::analyze(&artifact);
        if !report.is_ok() {
            return Err(ServeError::Artifact(ArtifactError::Rejected(Box::new(
                report,
            ))));
        }
        let mut steps = Vec::with_capacity(artifact.steps.len());
        for (i, plan_step) in artifact.steps.iter().enumerate() {
            // The shapes the verifier's dataflow pass proved.
            let shape = &facts.in_shapes[i];
            let out_shape = facts.out_shapes[i].clone();
            let chw = |shape: &[usize]| -> [usize; 3] {
                match spatial(shape) {
                    Some(chw) => chw,
                    // A clean report guarantees spatial inputs for
                    // spatial ops.
                    // warm-path: allow(plan verifier rejects non-spatial inputs to spatial ops)
                    None => unreachable!("verified spatial input"),
                }
            };
            let (exec, relu) = match &plan_step.op {
                LayerPlan::PatternConv {
                    stride,
                    pad,
                    fkw,
                    bias,
                    relu,
                    ..
                } => {
                    let [_, h, w] = chw(shape);
                    let geo = Conv2dGeometry::new(
                        fkw.out_c, fkw.in_c, fkw.kernel, fkw.kernel, h, w, *stride, *pad,
                    );
                    // The step's persisted config drives the executor;
                    // only the thread schedule can be overridden at load.
                    let cfg = plan_step.exec;
                    let exec = match cfg.algo {
                        ConvAlgo::Direct => {
                            let exec = PatternConv::new(
                                geo,
                                fkw.clone(),
                                bias.clone(),
                                cfg.opt_level,
                                cfg.tuning,
                            );
                            let threads = opts.threads.unwrap_or(cfg.threads);
                            if threads > 1 {
                                StepExec::PatternPar(ParallelPattern::new(
                                    exec,
                                    threads,
                                    Schedule::Balanced,
                                ))
                            } else {
                                StepExec::Pattern(exec)
                            }
                        }
                        ConvAlgo::Im2col => StepExec::Im2col(Im2colConv::new(
                            geo,
                            &fkw.to_dense(),
                            bias.clone().unwrap_or_default(),
                        )),
                        // Eligibility was proven by the verifier.
                        ConvAlgo::Winograd => StepExec::Winograd(WinogradConv::new(
                            geo,
                            &fkw.to_dense(),
                            bias.clone().unwrap_or_default(),
                        )),
                    };
                    (exec, *relu)
                }
                LayerPlan::DenseConv {
                    stride,
                    pad,
                    weights,
                    bias,
                    relu,
                    ..
                } => {
                    let [_, h, w] = chw(shape);
                    let ws = weights.shape4();
                    let geo = Conv2dGeometry::new(ws.n, ws.c, ws.h, ws.w, h, w, *stride, *pad);
                    (
                        StepExec::Dense(TiledConv::new(geo, weights.clone(), bias.clone())),
                        *relu,
                    )
                }
                LayerPlan::MaxPool {
                    kernel,
                    stride,
                    pad,
                } => (
                    StepExec::MaxPool {
                        kernel: *kernel,
                        stride: *stride,
                        pad: *pad,
                    },
                    false,
                ),
                LayerPlan::GlobalAvgPool => (StepExec::GlobalAvgPool, false),
                LayerPlan::Flatten => (StepExec::Flatten, false),
                LayerPlan::Relu => (StepExec::Relu, false),
                LayerPlan::Fc { weights, bias, .. } => {
                    (StepExec::Fc(FcExec::new(weights, bias.clone())), false)
                }
                LayerPlan::Add { relu } => (StepExec::Add, *relu),
                LayerPlan::QuantPatternConv {
                    stride,
                    pad,
                    qfkw,
                    bias,
                    relu,
                    ..
                } => {
                    let [_, h, w] = chw(shape);
                    let geo = Conv2dGeometry::new(
                        qfkw.out_c,
                        qfkw.in_c,
                        qfkw.kernel,
                        qfkw.kernel,
                        h,
                        w,
                        *stride,
                        *pad,
                    );
                    // INT8 steps honor the persisted opt level and tuning
                    // parameters; they always run serial (their memory
                    // traffic is a quarter of the f32 path's, so the
                    // thread schedule is an f32-only knob today).
                    let cfg = plan_step.exec;
                    let exec = QuantPatternConv::new(
                        geo,
                        qfkw.clone(),
                        bias.clone(),
                        cfg.opt_level,
                        cfg.tuning,
                    );
                    (StepExec::QuantPattern(exec), *relu)
                }
                LayerPlan::QuantFc {
                    out_f,
                    in_f,
                    qweights,
                    scales,
                    act_scale,
                    bias,
                    ..
                } => (
                    StepExec::QuantFc(QuantFcExec::new(
                        qweights,
                        *out_f,
                        *in_f,
                        scales.clone(),
                        *act_scale,
                        bias.clone(),
                    )),
                    false,
                ),
            };
            let flops_per_item = step_flops(&plan_step.op, shape, &out_shape);
            steps.push(Step {
                exec,
                relu,
                inputs: plan_step.inputs.clone(),
                output: plan_step.output,
                out_shape,
                kind: plan_step.op.kind(),
                precision: plan_step.precision,
                flops_per_item,
            });
        }
        let slot_shapes = facts.slot_shapes;
        Ok(Engine {
            name: artifact.name.clone(),
            input: artifact.input,
            steps,
            slot_shapes,
            artifact,
            scratch: Mutex::new(Vec::new()),
        })
    }

    /// Loads an artifact from disk and builds the engine. Decode-only
    /// load: [`Engine::new`] runs the verifier itself, so verifying at
    /// load too would walk the plan twice.
    pub fn load(
        path: impl AsRef<std::path::Path>,
        opts: EngineOptions,
    ) -> Result<Self, ServeError> {
        Engine::new(
            ModelArtifact::load_with(path, crate::artifact::LoadPolicy::DecodeOnly)?,
            opts,
        )
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-item input shape `[c, h, w]`.
    pub fn input_shape(&self) -> [usize; 3] {
        self.input
    }

    /// Per-item output shape.
    pub fn output_shape(&self) -> &[usize] {
        self.steps
            .last()
            .map_or(&self.input[..], |s| &s.out_shape[..])
    }

    /// The artifact this engine was built from (save it with
    /// [`ModelArtifact::save`]).
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// Number of plan steps.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Total bytes of weights this engine holds in kernel-native packed
    /// form (GEMM panels, interleaved INT8 panels, Winograd-domain
    /// tiles), all prepared once at build so the warm inference path
    /// never packs.
    pub fn packed_weight_bytes(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match &s.exec {
                StepExec::Fc(exec) => exec.packed_w.len() * std::mem::size_of::<f32>(),
                StepExec::QuantFc(exec) => exec.packed_w.len(),
                StepExec::Im2col(exec) => exec.packed_bytes(),
                StepExec::Winograd(exec) => exec.packed_bytes(),
                _ => 0,
            })
            .sum()
    }

    /// Runs the whole plan on a batched NCHW input.
    ///
    /// The input's trailing dimensions must match the model input; any
    /// batch size works. Per-slot scratch buffers are checked out from
    /// the pool, reused across calls, and returned afterwards; a warm
    /// engine serving a stable batch size reallocates nothing (slot
    /// reuse is shape-exact by construction).
    pub fn infer(&self, input: &Tensor) -> Result<Tensor, ServeError> {
        self.infer_impl(input, None)
    }

    /// Like [`Engine::infer`], additionally timing every plan step into
    /// `profile` (wall time, precision, dense-equivalent FLOPs). The
    /// unprofiled path pays nothing for this: `infer` compiles to the
    /// same loop with the timing branch dead.
    pub fn infer_profiled(
        &self,
        input: &Tensor,
        profile: &mut Vec<StepTiming>,
    ) -> Result<Tensor, ServeError> {
        self.infer_impl(input, Some(profile))
    }

    fn infer_impl(
        &self,
        input: &Tensor,
        mut profile: Option<&mut Vec<StepTiming>>,
    ) -> Result<Tensor, ServeError> {
        let shape = input.shape();
        if shape.len() != 4 || shape[1..] != self.input[..] {
            return Err(ServeError::ShapeMismatch {
                expected: self.input.to_vec(),
                got: shape.to_vec(),
            });
        }
        let batch = shape[0];

        let mut slots = self
            .scratch
            .lock()
            .expect("scratch pool")
            .pop()
            .unwrap_or_default();
        slots.resize_with(self.slot_shapes.len(), || Tensor::zeros(&[0]));
        for (slot, item) in self.slot_shapes.iter().enumerate() {
            let Some(item) = item else {
                continue; // slot 0 (borrowed input) or never written
            };
            let buf = &mut slots[slot];
            let got = buf.shape();
            let fits = got.len() == item.len() + 1 && got[0] == batch && got[1..] == item[..];
            if !fits {
                let mut want = Vec::with_capacity(item.len() + 1);
                want.push(batch);
                want.extend_from_slice(item);
                *buf = Tensor::zeros(&want);
            }
        }

        for (index, step) in self.steps.iter().enumerate() {
            let clock = profile.as_ref().map(|_| StepClock::start());
            // Slot 0 never holds data (the input is the caller's borrow),
            // so park the output buffer there to borrow it mutably while
            // the input slots stay readable.
            slots.swap(0, step.output);
            let (head, rest) = slots.split_at_mut(1);
            let buf = &mut head[0];
            match step.inputs[..] {
                [a] => {
                    let a = if a == 0 { input } else { &rest[a - 1] };
                    run_step(step, &[a], buf);
                }
                [a, b] => {
                    let a = if a == 0 { input } else { &rest[a - 1] };
                    let b = if b == 0 { input } else { &rest[b - 1] };
                    run_step(step, &[a, b], buf);
                }
                // warm-path: allow(step arity validated at engine build)
                _ => unreachable!("step arity validated at engine build"),
            }
            if step.relu {
                buf.map_inplace(|x| x.max(0.0));
            }
            slots.swap(0, step.output);
            if let (Some(sink), Some(clock)) = (profile.as_deref_mut(), clock) {
                let (started, wall) = clock.stop();
                sink.push(StepTiming {
                    index,
                    kind: step.kind,
                    precision: step.precision,
                    started,
                    wall,
                    flops: step.flops_per_item * batch as f64,
                });
            }
        }

        let out = match self.steps.last() {
            Some(s) => slots[s.output].clone(),
            None => input.clone(),
        };
        self.scratch.lock().expect("scratch pool").push(slots);
        Ok(out)
    }

    /// Runs a set of single-item requests as one batched execution and
    /// scatters the per-request outputs (the dynamic-batching path).
    ///
    /// Each input must be `[1, c, h, w]` with the model's item shape.
    pub fn infer_batch(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>, ServeError> {
        self.infer_batch_impl(inputs, None)
    }

    /// Like [`Engine::infer_batch`], timing every plan step of the one
    /// batched execution into `profile`.
    pub fn infer_batch_profiled(
        &self,
        inputs: &[Tensor],
        profile: &mut Vec<StepTiming>,
    ) -> Result<Vec<Tensor>, ServeError> {
        self.infer_batch_impl(inputs, Some(profile))
    }

    fn infer_batch_impl(
        &self,
        inputs: &[Tensor],
        profile: Option<&mut Vec<StepTiming>>,
    ) -> Result<Vec<Tensor>, ServeError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let item = [self.input[0], self.input[1], self.input[2]];
        for t in inputs {
            let s = t.shape();
            if s.len() != 4 || s[0] != 1 || s[1..] != item[..] {
                return Err(ServeError::ShapeMismatch {
                    expected: item.to_vec(),
                    got: s.to_vec(),
                });
            }
        }
        let item_len: usize = item.iter().product();
        let mut stacked = Tensor::zeros(&[inputs.len(), item[0], item[1], item[2]]);
        for (n, t) in inputs.iter().enumerate() {
            stacked.data_mut()[n * item_len..(n + 1) * item_len].copy_from_slice(t.data());
        }
        let out = self.infer_impl(&stacked, profile)?;
        let out_item: usize = self.output_shape().iter().product();
        let mut per_request = Vec::with_capacity(inputs.len());
        let mut out_shape = vec![1usize];
        out_shape.extend_from_slice(self.output_shape());
        for n in 0..inputs.len() {
            let slice = out.data()[n * out_item..(n + 1) * out_item].to_vec();
            // warm-path: allow(slice length is out_item * 1 by construction, from_vec cannot fail)
            per_request.push(Tensor::from_vec(&out_shape, slice).expect("split batch"));
        }
        Ok(per_request)
    }
}

/// Dense-equivalent FLOPs per batch item for one plan step, derived
/// from the op payload and the shapes flowing through it. Convolutions
/// and FC layers count 2 FLOPs per MAC of their *dense* geometry (the
/// paper's Figure 17 convention, so pruned executors report speedup as
/// higher effective GFLOP/s); data-movement and elementwise steps count
/// one op per touched element.
fn step_flops(op: &LayerPlan, in_shape: &[usize], out_shape: &[usize]) -> f64 {
    let in_elems: f64 = in_shape.iter().product::<usize>() as f64;
    let out_elems: f64 = out_shape.iter().product::<usize>() as f64;
    match op {
        LayerPlan::PatternConv { fkw, .. } => {
            2.0 * (fkw.in_c * fkw.kernel * fkw.kernel) as f64 * out_elems
        }
        LayerPlan::QuantPatternConv { qfkw, .. } => {
            2.0 * (qfkw.in_c * qfkw.kernel * qfkw.kernel) as f64 * out_elems
        }
        LayerPlan::DenseConv { weights, .. } => {
            let ws = weights.shape4();
            2.0 * (ws.c * ws.h * ws.w) as f64 * out_elems
        }
        LayerPlan::MaxPool { kernel, .. } => (kernel * kernel) as f64 * out_elems,
        LayerPlan::GlobalAvgPool => in_elems,
        LayerPlan::Flatten | LayerPlan::Relu | LayerPlan::Add { .. } => out_elems,
        LayerPlan::Fc { weights, .. } => 2.0 * (weights.shape()[0] * weights.shape()[1]) as f64,
        LayerPlan::QuantFc { out_f, in_f, .. } => 2.0 * (out_f * in_f) as f64,
    }
}

/// Extracts `[c, h, w]` when the flowing shape is still spatial.
fn spatial(shape: &[usize]) -> Option<[usize; 3]> {
    match shape {
        [c, h, w] => Some([*c, *h, *w]),
        _ => None,
    }
}

fn run_step(step: &Step, inputs: &[&Tensor], buf: &mut Tensor) {
    let prev = inputs[0];
    match &step.exec {
        StepExec::Pattern(exec) => exec.run_into(prev, buf),
        StepExec::Im2col(exec) => exec.run_into(prev, buf),
        StepExec::Winograd(exec) => exec.run_into(prev, buf),
        StepExec::PatternPar(exec) => {
            let out = exec.run(prev);
            buf.data_mut().copy_from_slice(out.data());
        }
        StepExec::Dense(exec) => {
            let out = exec.run(prev);
            buf.data_mut().copy_from_slice(out.data());
        }
        StepExec::MaxPool {
            kernel,
            stride,
            pad,
        } => maxpool_into(prev, buf, *kernel, *stride, *pad),
        StepExec::GlobalAvgPool => gap_into(prev, buf),
        StepExec::Flatten | StepExec::Relu => {
            buf.data_mut().copy_from_slice(prev.data());
            if matches!(step.exec, StepExec::Relu) {
                buf.map_inplace(|x| x.max(0.0));
            }
        }
        StepExec::Fc(exec) => exec.run_into(prev, buf),
        StepExec::QuantPattern(exec) => exec.run_into(prev, buf),
        StepExec::QuantFc(exec) => exec.run_into(prev, buf),
        StepExec::Add => {
            let b = inputs[1].data();
            for (o, (&x, &y)) in buf.data_mut().iter_mut().zip(prev.data().iter().zip(b)) {
                *o = x + y;
            }
        }
    }
}

fn maxpool_into(input: &Tensor, out: &mut Tensor, kernel: usize, stride: usize, pad: usize) {
    let s = input.shape4();
    let o = out.shape4();
    let ind = input.data();
    let od = out.data_mut();
    let mut oi = 0;
    for n in 0..s.n {
        for c in 0..s.c {
            let ibase = (n * s.c + c) * s.h * s.w;
            for oh in 0..o.h {
                for ow in 0..o.w {
                    let mut best = f32::NEG_INFINITY;
                    for kh in 0..kernel {
                        let ih = (oh * stride + kh) as isize - pad as isize;
                        if ih < 0 || ih >= s.h as isize {
                            continue;
                        }
                        for kw in 0..kernel {
                            let iw = (ow * stride + kw) as isize - pad as isize;
                            if iw < 0 || iw >= s.w as isize {
                                continue;
                            }
                            best = best.max(ind[ibase + ih as usize * s.w + iw as usize]);
                        }
                    }
                    od[oi] = best;
                    oi += 1;
                }
            }
        }
    }
}

fn gap_into(input: &Tensor, out: &mut Tensor) {
    let s = input.shape4();
    let hw = s.h * s.w;
    for n in 0..s.n {
        for c in 0..s.c {
            let base = (n * s.c + c) * hw;
            let mean = input.data()[base..base + hw].iter().sum::<f32>() / hw as f32;
            out.data_mut()[n * s.c + c] = mean;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_network;
    use patdnn_core::prune::pattern_project_network;
    use patdnn_nn::layer::{Layer, Mode};
    use patdnn_nn::models::small_cnn;
    use patdnn_tensor::rng::Rng;

    fn pruned_cnn(seed: u64) -> patdnn_nn::network::Sequential {
        let mut rng = Rng::seed_from(seed);
        let mut net = small_cnn(3, 8, 4, &mut rng);
        pattern_project_network(&mut net, 8, 2.0);
        net
    }

    #[test]
    fn pruned_network_compiles_to_pattern_plans() {
        let net = pruned_cnn(1);
        let artifact = compile_network("pruned", &net, [3, 8, 8]).expect("compiles");
        let pattern_layers = artifact
            .steps
            .iter()
            .filter(|s| s.op.kind() == "pattern-conv")
            .count();
        assert_eq!(pattern_layers, 2, "both convs compile to pattern executors");
    }

    #[test]
    fn engine_matches_nn_forward() {
        let mut net = pruned_cnn(2);
        let artifact = compile_network("m", &net, [3, 8, 8]).expect("compiles");
        let engine = Engine::new(artifact, EngineOptions::default()).expect("engine");
        let mut rng = Rng::seed_from(3);
        let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let want = net.forward(&x, Mode::Eval);
        let got = engine.infer(&x).expect("infer");
        assert_eq!(got.shape(), want.shape());
        assert!(
            want.approx_eq(&got, 1e-4),
            "engine diverges from nn forward: {:?}",
            want.max_abs_diff(&got)
        );
    }

    #[test]
    fn residual_engine_matches_nn_forward() {
        let mut rng = Rng::seed_from(21);
        let mut net = patdnn_nn::models::resnet_small(10, &mut rng);
        pattern_project_network(&mut net, 8, 3.6);
        let artifact = compile_network("res", &net, [3, 32, 32]).expect("compiles");
        assert!(!artifact.is_chain(), "residual plan is a DAG");
        let engine = Engine::new(artifact, EngineOptions::default()).expect("engine");
        for batch in [1usize, 3] {
            let x = Tensor::randn(&[batch, 3, 32, 32], &mut rng);
            let want = net.forward(&x, Mode::Eval);
            let got = engine.infer(&x).expect("infer");
            assert_eq!(got.shape(), want.shape());
            assert!(
                want.approx_eq(&got, 1e-4),
                "batch {batch}: engine diverges from nn forward: {:?}",
                want.max_abs_diff(&got)
            );
        }
    }

    #[test]
    fn residual_engine_serves_reloaded_artifact() {
        let mut rng = Rng::seed_from(22);
        let mut net = patdnn_nn::models::resnet_small(10, &mut rng);
        pattern_project_network(&mut net, 8, 3.6);
        let artifact = compile_network("res", &net, [3, 32, 32]).expect("compiles");
        let reloaded = crate::ModelArtifact::decode(&artifact.encode()).expect("codec round trip");
        let engine = Engine::new(reloaded, EngineOptions::default()).expect("engine");
        let x = Tensor::randn(&[2, 3, 32, 32], &mut rng);
        let want = net.forward(&x, Mode::Eval);
        let got = engine.infer(&x).expect("infer");
        assert!(want.approx_eq(&got, 1e-4));
    }

    #[test]
    fn scratch_buffers_are_reused_across_calls() {
        let net = pruned_cnn(4);
        let artifact = compile_network("m", &net, [3, 8, 8]).expect("compiles");
        let engine = Engine::new(artifact, EngineOptions::default()).expect("engine");
        let mut rng = Rng::seed_from(5);
        let x = Tensor::randn(&[1, 3, 8, 8], &mut rng);
        let a = engine.infer(&x).expect("first");
        assert_eq!(engine.scratch.lock().unwrap().len(), 1, "buffer set pooled");
        let b = engine.infer(&x).expect("second");
        assert_eq!(engine.scratch.lock().unwrap().len(), 1, "buffer set reused");
        assert_eq!(a, b, "inference is deterministic");
    }

    #[test]
    fn unfittable_window_errors_at_engine_build_not_panic() {
        let net = pruned_cnn(9);
        let mut artifact = compile_network("m", &net, [3, 8, 8]).expect("compiles");
        // Shrink the declared input until the 3x3 convs cannot fit.
        artifact.input = [3, 1, 1];
        assert!(matches!(
            Engine::new(artifact, EngineOptions::default()),
            Err(ServeError::Artifact(_))
        ));
    }

    #[test]
    fn infer_rejects_wrong_shape() {
        let net = pruned_cnn(6);
        let artifact = compile_network("m", &net, [3, 8, 8]).expect("compiles");
        let engine = Engine::new(artifact, EngineOptions::default()).expect("engine");
        let bad = Tensor::zeros(&[1, 3, 9, 9]);
        assert!(matches!(
            engine.infer(&bad),
            Err(ServeError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn threaded_engine_matches_serial() {
        let net = pruned_cnn(7);
        let artifact = compile_network("m", &net, [3, 8, 8]).expect("compiles");
        let serial = Engine::new(artifact.clone(), EngineOptions::default()).expect("engine");
        let par = Engine::new(artifact, EngineOptions { threads: Some(3) }).expect("engine");
        let mut rng = Rng::seed_from(8);
        let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let a = serial.infer(&x).expect("serial");
        let b = par.infer(&x).expect("parallel");
        assert!(a.approx_eq(&b, 1e-5));
    }

    #[test]
    fn per_step_exec_configs_are_honored_without_changing_results() {
        use crate::artifact::ExecConfig;
        use patdnn_compiler::tune::space::{ConvAlgo, LoopPermutation, TuningConfig};
        use patdnn_runtime::pattern_exec::OptLevel;

        let mut net = pruned_cnn(11);
        let mut artifact = compile_network("m", &net, [3, 8, 8]).expect("compiles");
        let reference = Engine::new(artifact.clone(), EngineOptions::default()).expect("engine");

        // Hand every pattern-conv step a different non-default config:
        // a lower opt level, unusual tiles, and a threaded schedule.
        let variants = [
            ExecConfig {
                opt_level: OptLevel::Reorder,
                tuning: TuningConfig::baseline(),
                threads: 1,
                algo: ConvAlgo::Direct,
            },
            ExecConfig {
                opt_level: OptLevel::ReorderLre,
                tuning: TuningConfig {
                    permute: LoopPermutation::CoCiHw,
                    blocked: true,
                    tile_oc: 8,
                    tile_hw: 8,
                    unroll_oc: 2,
                    unroll_w: 2,
                },
                threads: 2,
                algo: ConvAlgo::Direct,
            },
        ];
        let mut next = 0;
        for step in &mut artifact.steps {
            if step.op.kind() == "pattern-conv" {
                step.exec = variants[next % variants.len()];
                next += 1;
            }
        }
        assert_eq!(next, 2, "both convs reconfigured");

        // The tuned plan survives its own codec and infers identically.
        let reloaded = crate::ModelArtifact::decode(&artifact.encode()).expect("round trip");
        assert_eq!(artifact, reloaded, "per-step configs persist");
        let tuned = Engine::new(reloaded, EngineOptions::default()).expect("engine");
        let mut rng = Rng::seed_from(12);
        let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let want = net.forward(&x, Mode::Eval);
        let got = tuned.infer(&x).expect("infer");
        assert!(want.approx_eq(&got, 1e-4), "tuned engine diverges");
        let base = reference.infer(&x).expect("infer");
        assert!(base.approx_eq(&got, 1e-4));
    }

    #[test]
    fn profiled_infer_matches_plain_and_times_every_step() {
        let net = pruned_cnn(15);
        let artifact = compile_network("m", &net, [3, 8, 8]).expect("compiles");
        let plan: Vec<(&'static str, Precision)> = artifact
            .steps
            .iter()
            .map(|s| (s.op.kind(), s.precision))
            .collect();
        let engine = Engine::new(artifact, EngineOptions::default()).expect("engine");
        let mut rng = Rng::seed_from(16);
        let x = Tensor::randn(&[1, 3, 8, 8], &mut rng);
        let plain = engine.infer(&x).expect("plain");
        let mut profile = Vec::new();
        let profiled = engine.infer_profiled(&x, &mut profile).expect("profiled");
        assert_eq!(plain, profiled, "profiling must not change results");
        assert_eq!(profile.len(), plan.len(), "one timing per plan step");
        for (i, t) in profile.iter().enumerate() {
            assert_eq!(t.index, i, "timings are in plan order");
            assert_eq!((t.kind, t.precision), plan[i]);
            assert!(t.flops > 0.0, "step {i} ({}) has work", t.kind);
            assert!(t.dense_gflops() >= 0.0);
        }
        // Conv steps dominate the FLOP count by orders of magnitude.
        let conv_flops: f64 = profile
            .iter()
            .filter(|t| t.kind.ends_with("conv"))
            .map(|t| t.flops)
            .sum();
        let other_flops: f64 = profile
            .iter()
            .filter(|t| !t.kind.ends_with("conv"))
            .map(|t| t.flops)
            .sum();
        assert!(conv_flops > other_flops);
    }

    #[test]
    fn batch_profile_scales_flops_with_batch_size() {
        let net = pruned_cnn(17);
        let artifact = compile_network("m", &net, [3, 8, 8]).expect("compiles");
        let engine = Engine::new(artifact, EngineOptions::default()).expect("engine");
        let mut rng = Rng::seed_from(18);
        let one = vec![Tensor::randn(&[1, 3, 8, 8], &mut rng)];
        let three: Vec<Tensor> = (0..3)
            .map(|_| Tensor::randn(&[1, 3, 8, 8], &mut rng))
            .collect();
        let mut p1 = Vec::new();
        let mut p3 = Vec::new();
        engine.infer_batch_profiled(&one, &mut p1).expect("batch 1");
        let outs = engine
            .infer_batch_profiled(&three, &mut p3)
            .expect("batch 3");
        assert_eq!(outs.len(), 3);
        assert_eq!(p1.len(), p3.len(), "same plan either way");
        for (a, b) in p1.iter().zip(&p3) {
            assert!(
                (b.flops / a.flops - 3.0).abs() < 1e-9,
                "step {} batch-3 flops must be 3x batch-1",
                a.index
            );
        }
    }

    #[test]
    fn thread_override_beats_the_artifact_schedule() {
        use crate::artifact::ExecConfig;
        let net = pruned_cnn(13);
        let mut artifact = compile_network("m", &net, [3, 8, 8]).expect("compiles");
        for step in &mut artifact.steps {
            step.exec = ExecConfig::with_threads(4);
        }
        let mut rng = Rng::seed_from(14);
        let x = Tensor::randn(&[1, 3, 8, 8], &mut rng);
        let honored = Engine::new(artifact.clone(), EngineOptions::default()).expect("engine");
        let forced_serial =
            Engine::new(artifact, EngineOptions { threads: Some(1) }).expect("engine");
        let a = honored.infer(&x).expect("threaded");
        let b = forced_serial.infer(&x).expect("serial");
        assert!(a.approx_eq(&b, 1e-5), "override changes scheduling only");
    }
}
