//! The serving front-end: a worker pool draining the batch queue.
//!
//! Workers pop same-model batches (see [`crate::batching`]), stack the
//! inputs, run one batched execution on the registered engine, and
//! scatter the results back to each request's response channel with its
//! end-to-end latency. Engines themselves may use the runtime's
//! FKR-balanced thread pool per layer ([`crate::engine::EngineOptions::threads`]),
//! so total parallelism is `workers × threads`.

use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use patdnn_tensor::Tensor;

use crate::batching::{BatchPolicy, BatchQueue, PendingRequest};
use crate::metrics::ServerMetrics;
use crate::registry::ModelRegistry;
use crate::ServeError;

/// A completed inference.
#[derive(Debug)]
pub struct InferResponse {
    /// The model output for this request, `[1, ...]`.
    pub output: Tensor,
    /// End-to-end latency: enqueue → response.
    pub latency: Duration,
    /// Size of the batch this request was executed in.
    pub batch_size: usize,
}

/// What a request's response channel eventually carries.
pub type RequestResult = Result<InferResponse, ServeError>;

/// Server construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Dynamic batching policy.
    pub batch: BatchPolicy,
    /// Bounded queue capacity (backpressure threshold).
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            batch: BatchPolicy::default(),
            queue_capacity: 256,
        }
    }
}

/// A running model server.
pub struct Server {
    registry: Arc<ModelRegistry>,
    queue: Arc<BatchQueue>,
    metrics: Arc<ServerMetrics>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts `cfg.workers` worker threads over `registry`.
    pub fn start(registry: Arc<ModelRegistry>, cfg: ServerConfig) -> Self {
        assert!(cfg.workers > 0, "need at least one worker");
        let queue = Arc::new(BatchQueue::new(cfg.queue_capacity));
        let metrics = Arc::new(ServerMetrics::new());
        let workers = (0..cfg.workers)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let registry = Arc::clone(&registry);
                let metrics = Arc::clone(&metrics);
                let policy = cfg.batch;
                std::thread::spawn(move || worker_loop(&queue, &registry, &metrics, policy))
            })
            .collect();
        Server {
            registry,
            queue,
            metrics,
            workers,
        }
    }

    /// The registry this server resolves models against.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Live serving counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Submits a single-item request, returning the channel its result
    /// will arrive on. Fails fast on unknown models, shape mismatches,
    /// and queue backpressure.
    pub fn submit(
        &self,
        model: &str,
        input: Tensor,
    ) -> Result<Receiver<RequestResult>, ServeError> {
        let engine = self.registry.get(model)?;
        let expected = engine.input_shape();
        let s = input.shape();
        if s.len() != 4 || s[0] != 1 || s[1..] != expected[..] {
            return Err(ServeError::ShapeMismatch {
                expected: expected.to_vec(),
                got: s.to_vec(),
            });
        }
        let (tx, rx) = sync_channel(1);
        let push = self.queue.push(PendingRequest {
            model: model.to_owned(),
            input,
            enqueued: Instant::now(),
            respond: tx,
        });
        if let Err(e) = push {
            if matches!(e, ServeError::QueueFull) {
                self.metrics.record_rejected();
            }
            return Err(e);
        }
        Ok(rx)
    }

    /// Submits a request and blocks for its result.
    pub fn infer(&self, model: &str, input: Tensor) -> Result<InferResponse, ServeError> {
        let rx = self.submit(model, input)?;
        rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Stops accepting requests, drains the queue, and joins workers.
    pub fn shutdown(mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    queue: &BatchQueue,
    registry: &ModelRegistry,
    metrics: &ServerMetrics,
    policy: BatchPolicy,
) {
    while let Some((model, batch)) = queue.pop_batch(&policy) {
        let engine = match registry.get(&model) {
            Ok(engine) => engine,
            Err(_) => {
                // Model was removed while requests were queued.
                for req in batch {
                    let _ = req
                        .respond
                        .send(Err(ServeError::UnknownModel(model.clone())));
                }
                continue;
            }
        };
        // Move the inputs out of the requests: the batch only needs its
        // response channels and enqueue times afterwards, so the tensors
        // are not cloned on the hot path.
        let batch_size = batch.len();
        let mut inputs = Vec::with_capacity(batch_size);
        let mut responders = Vec::with_capacity(batch_size);
        for req in batch {
            inputs.push(req.input);
            responders.push((req.respond, req.enqueued));
        }
        match engine.infer_batch(&inputs) {
            Ok(outputs) => {
                let done = Instant::now();
                let latencies: Vec<Duration> = responders
                    .iter()
                    .map(|(_, enqueued)| done.duration_since(*enqueued))
                    .collect();
                metrics.record_batch(&latencies);
                for (((respond, _), output), latency) in
                    responders.into_iter().zip(outputs).zip(latencies)
                {
                    let _ = respond.send(Ok(InferResponse {
                        output,
                        latency,
                        batch_size,
                    }));
                }
            }
            Err(e) => {
                // Shape errors are caught at submit; anything here is a
                // per-batch failure every requester learns about.
                let msg = e.to_string();
                for (respond, _) in responders {
                    let _ = respond.send(Err(ServeError::Internal(msg.clone())));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_network;
    use crate::engine::{Engine, EngineOptions};
    use patdnn_nn::models::small_cnn;
    use patdnn_tensor::rng::Rng;

    fn registry_with(name: &str, seed: u64) -> Arc<ModelRegistry> {
        let mut rng = Rng::seed_from(seed);
        let net = small_cnn(3, 8, 4, &mut rng);
        let artifact = compile_network(name, &net, [3, 8, 8]).expect("compiles");
        let registry = Arc::new(ModelRegistry::new());
        registry.register(
            name,
            Engine::new(artifact, EngineOptions::default()).expect("engine"),
        );
        registry
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let registry = registry_with("m", 1);
        let server = Server::start(Arc::clone(&registry), ServerConfig::default());
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(&[1, 3, 8, 8], &mut rng);
        let want = registry.get("m").unwrap().infer(&x).unwrap();
        let resp = server.infer("m", x).expect("served");
        assert_eq!(resp.output, want);
        assert!(resp.latency > Duration::ZERO);
        assert_eq!(server.metrics().snapshot().requests, 1);
        server.shutdown();
    }

    #[test]
    fn unknown_model_fails_at_submit() {
        let registry = registry_with("m", 3);
        let server = Server::start(registry, ServerConfig::default());
        let x = Tensor::zeros(&[1, 3, 8, 8]);
        assert!(matches!(
            server.infer("nope", x),
            Err(ServeError::UnknownModel(_))
        ));
    }

    #[test]
    fn wrong_shape_fails_at_submit() {
        let registry = registry_with("m", 4);
        let server = Server::start(registry, ServerConfig::default());
        let x = Tensor::zeros(&[1, 3, 9, 9]);
        assert!(matches!(
            server.infer("m", x),
            Err(ServeError::ShapeMismatch { .. })
        ));
    }
}
