//! The serving front-end: a worker pool draining the batch queue.
//!
//! Workers pop same-model batches in urgency order (see
//! [`crate::batching`]), re-check each request's deadline and cancel
//! token immediately before execution (an expired request is *never*
//! executed), stack the surviving inputs, run one batched execution on
//! the registered engine, and scatter the results back to each
//! request's response channel with its end-to-end latency.
//!
//! Requests enter through the lifecycle API ([`crate::request`]):
//! [`Server::client`] hands out a cheap [`Client`] whose
//! [`Client::request`] builder carries deadline, priority, and
//! cancellation. (The pre-v1 `Server::submit`/`Server::infer` shims
//! are gone; the lifecycle API is the one request surface, in-process
//! and over the wire alike — see [`crate::prelude`].)
//!
//! Engines themselves may use the runtime's FKR-balanced thread pool
//! per layer ([`crate::engine::EngineOptions::threads`]), so total
//! parallelism is `workers × threads`.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use patdnn_tensor::Tensor;

use crate::batching::{BatchPolicy, BatchQueue};
use crate::engine::StepTiming;
use crate::metrics::{MetricsSnapshot, ServerMetrics};
use crate::registry::ModelRegistry;
use crate::request::{AdmissionControl, AdmissionPolicy, Client, Priority};
use crate::telemetry::{Stage, Telemetry, TelemetryPolicy};
use crate::ServeError;

/// A completed inference.
#[derive(Debug)]
pub struct InferResponse {
    /// The model output for this request, `[1, ...]`.
    pub output: Tensor,
    /// End-to-end latency: enqueue → response.
    pub latency: Duration,
    /// Size of the batch this request was executed in.
    pub batch_size: usize,
}

/// What a request's response channel eventually carries.
pub type RequestResult = Result<InferResponse, ServeError>;

/// Server construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Dynamic batching policy.
    pub batch: BatchPolicy,
    /// Bounded queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// In-flight budgets for admission control (overflow is shed).
    pub admission: AdmissionPolicy,
    /// How much request tracing / layer profiling to record
    /// (see [`crate::telemetry`]). Off by default: the hot path then
    /// pays nothing beyond one branch per submission.
    pub telemetry: TelemetryPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            batch: BatchPolicy::default(),
            queue_capacity: 256,
            admission: AdmissionPolicy::default(),
            telemetry: TelemetryPolicy::Off,
        }
    }
}

/// State shared between the server, its workers, and every [`Client`].
pub(crate) struct ServerShared {
    pub(crate) registry: Arc<ModelRegistry>,
    pub(crate) queue: Arc<BatchQueue>,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) admission: Arc<AdmissionControl>,
    pub(crate) batch: BatchPolicy,
    pub(crate) telemetry: Arc<Telemetry>,
}

/// A running model server.
pub struct Server {
    shared: Arc<ServerShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts `cfg.workers` worker threads over `registry`.
    pub fn start(registry: Arc<ModelRegistry>, cfg: ServerConfig) -> Self {
        assert!(cfg.workers > 0, "need at least one worker");
        let metrics = Arc::new(ServerMetrics::new());
        let shared = Arc::new(ServerShared {
            registry,
            queue: Arc::new(BatchQueue::with_metrics(
                cfg.queue_capacity,
                Arc::clone(&metrics),
            )),
            admission: AdmissionControl::new(cfg.admission, Some(Arc::clone(&metrics))),
            metrics,
            batch: cfg.batch,
            telemetry: Arc::new(Telemetry::new(cfg.telemetry)),
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let policy = cfg.batch;
                std::thread::spawn(move || worker_loop(&shared, policy))
            })
            .collect();
        Server { shared, workers }
    }

    /// Hands out a request-submission client. Clients are cheap to
    /// clone and outlive the server (submissions after shutdown fail
    /// with [`ServeError::ShuttingDown`]).
    pub fn client(&self) -> Client {
        Client::new(Arc::clone(&self.shared))
    }

    /// The registry this server resolves models against.
    pub fn registry(&self) -> &ModelRegistry {
        &self.shared.registry
    }

    /// Live serving counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// The telemetry hub: trace spans, stage aggregates, and per-layer
    /// profiles (all empty under [`TelemetryPolicy::Off`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// A full metrics snapshot with the telemetry layer profiles
    /// merged in (unlike [`ServerMetrics::snapshot`], whose `layers`
    /// field is always empty).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.shared.metrics.snapshot();
        snap.layers = self.shared.telemetry.layer_snapshots();
        snap
    }

    /// Requests currently in flight (admitted, not yet terminal).
    pub fn in_flight(&self) -> usize {
        self.shared.admission.in_flight()
    }

    /// Graceful shutdown: stops accepting requests, lets the workers
    /// *complete* everything already queued (expired requests are still
    /// dropped at their deadline, never executed), then joins them. No
    /// admitted request is left without a terminal response.
    pub fn shutdown(mut self) {
        self.finish(false);
    }

    /// Fast shutdown: stops accepting requests, fails everything still
    /// queued with [`ServeError::ShuttingDown`], and joins the workers
    /// (batches already executing run to completion). No admitted
    /// request is left without a terminal response.
    pub fn shutdown_now(mut self) {
        self.finish(true);
    }

    fn finish(&mut self, fail_pending: bool) {
        self.shared.queue.close();
        if fail_pending {
            // Drain-and-fail *before* joining: workers still executing
            // keep their popped batches, but nothing queued behind them
            // waits for a worker to get its terminal response.
            for mut req in self.shared.queue.drain_now() {
                drop(req.permit.take());
                let _ = req.respond.send(Err(ServeError::ShuttingDown));
            }
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        debug_assert!(
            self.shared.queue.is_empty(),
            "shutdown must leave no queued request behind"
        );
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.finish(false);
    }
}

fn worker_loop(shared: &ServerShared, policy: BatchPolicy) {
    let queue = &shared.queue;
    let registry = &shared.registry;
    let metrics = &shared.metrics;
    let telemetry = &shared.telemetry;
    while let Some(popped) = queue.pop_batch(&policy) {
        // Prune outcomes (popped.expired / popped.cancelled) were
        // already counted by the metrics-wired queue.
        // Last-chance lifecycle check between batch formation and
        // execution: deadlines may have passed and cancel tokens fired
        // while the batch sat in the queue. This is the invariant the
        // lifecycle API promises — an expired request is never executed.
        // For traced requests this instant also closes their
        // queue-wait stage and opens batch assembly.
        let now = Instant::now();
        let mut batch = Vec::with_capacity(popped.requests.len());
        for req in popped.requests {
            if let Ok(live) = req.resolve_if_dead(now, Some(metrics)) {
                batch.push(live);
            }
        }
        if batch.is_empty() {
            continue;
        }
        let model = popped.model;
        let engine = match registry.get(&model) {
            Ok(engine) => engine,
            Err(_) => {
                // Model was removed while requests were queued.
                for mut req in batch {
                    drop(req.permit.take());
                    let _ = req
                        .respond
                        .send(Err(ServeError::UnknownModel(model.clone())));
                }
                continue;
            }
        };
        // Move the inputs out of the requests: the batch only needs its
        // response channels, priorities, and enqueue times afterwards,
        // so the tensors are not cloned on the hot path.
        let batch_size = batch.len();
        let mut inputs = Vec::with_capacity(batch_size);
        let mut responders = Vec::with_capacity(batch_size);
        for req in batch {
            inputs.push(req.input);
            responders.push((
                req.respond,
                req.enqueued,
                req.priority,
                req.permit,
                req.trace,
            ));
        }
        // Pay for step profiling only when at least one request in the
        // batch is traced, so `Sampled` genuinely samples the cost.
        let any_trace = telemetry.enabled().then(|| {
            responders
                .iter()
                .find_map(|(_, _, _, _, trace)| trace.as_ref().map(|t| t.id))
        });
        let model_arc: Option<std::sync::Arc<str>> = any_trace
            .flatten()
            .map(|_| std::sync::Arc::from(model.as_str()));
        let mut timings: Vec<StepTiming> = Vec::new();
        let exec_start = Instant::now();
        let result = if model_arc.is_some() {
            engine.infer_batch_profiled(&inputs, &mut timings)
        } else {
            engine.infer_batch(&inputs)
        };
        match result {
            Ok(outputs) => {
                let done = Instant::now();
                metrics.record_batch_exec(done.duration_since(exec_start));
                let latencies: Vec<(Priority, Duration)> = responders
                    .iter()
                    .map(|(_, enqueued, priority, _, _)| {
                        (*priority, done.duration_since(*enqueued))
                    })
                    .collect();
                metrics.record_batch(&latencies);
                if let (Some(model), Some(id)) = (&model_arc, any_trace.flatten()) {
                    telemetry.record_step_timings(model, &timings, batch_size as u32, Some(id));
                }
                for (((respond, _, _, permit, trace), output), (_, latency)) in
                    responders.into_iter().zip(outputs).zip(latencies)
                {
                    // Release the admission budget before the caller can
                    // observe the response, so "I got my result" implies
                    // "my in-flight slot is free".
                    drop(permit);
                    // Close out this request's span tree at the delivery
                    // hand-off, *before* the send: once the caller holds
                    // the response, its trace is complete and readable.
                    if let (Some(t), Some(model)) = (trace, &model_arc) {
                        let sent = Instant::now();
                        let b = batch_size as u32;
                        telemetry.record_stage(t.id, model, Stage::QueueWait, t.queued_at, now, b);
                        telemetry.record_stage(
                            t.id,
                            model,
                            Stage::BatchAssembly,
                            now,
                            exec_start,
                            b,
                        );
                        telemetry.record_stage(t.id, model, Stage::Execution, exec_start, done, b);
                        telemetry.record_stage(t.id, model, Stage::Delivery, done, sent, b);
                        telemetry.record_request(t.id, model, t.started, sent, b);
                    }
                    let _ = respond.send(Ok(InferResponse {
                        output,
                        latency,
                        batch_size,
                    }));
                }
            }
            Err(e) => {
                // Shape errors are caught at submit; anything here is a
                // per-batch failure every requester learns about.
                let msg = e.to_string();
                for (respond, _, _, permit, _) in responders {
                    drop(permit);
                    let _ = respond.send(Err(ServeError::Internal(msg.clone())));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_network;
    use crate::engine::{Engine, EngineOptions};
    use crate::request::Terminal;
    use patdnn_nn::models::small_cnn;
    use patdnn_tensor::rng::Rng;

    fn registry_with(name: &str, seed: u64) -> Arc<ModelRegistry> {
        let mut rng = Rng::seed_from(seed);
        let net = small_cnn(3, 8, 4, &mut rng);
        let artifact = compile_network(name, &net, [3, 8, 8]).expect("compiles");
        let registry = Arc::new(ModelRegistry::new());
        registry.register(
            name,
            Engine::new(artifact, EngineOptions::default()).expect("engine"),
        );
        registry
    }

    #[test]
    fn serves_a_request_end_to_end_via_the_client() {
        let registry = registry_with("m", 1);
        let server = Server::start(Arc::clone(&registry), ServerConfig::default());
        let client = server.client();
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(&[1, 3, 8, 8], &mut rng);
        let want = registry.get("m").unwrap().infer(&x).unwrap();
        let resp = client.infer("m", x).expect("served");
        assert_eq!(resp.output, want);
        assert!(resp.latency > Duration::ZERO);
        assert_eq!(server.metrics().snapshot().requests, 1);
        assert_eq!(server.in_flight(), 0, "permit released on completion");
        server.shutdown();
    }

    #[test]
    fn unknown_model_fails_at_submit() {
        let registry = registry_with("m", 3);
        let server = Server::start(registry, ServerConfig::default());
        let x = Tensor::zeros(&[1, 3, 8, 8]);
        assert!(matches!(
            server.client().infer("nope", x),
            Err(ServeError::UnknownModel(_))
        ));
    }

    #[test]
    fn wrong_shape_fails_at_submit() {
        let registry = registry_with("m", 4);
        let server = Server::start(registry, ServerConfig::default());
        let x = Tensor::zeros(&[1, 3, 9, 9]);
        assert!(matches!(
            server.client().infer("m", x),
            Err(ServeError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn missing_input_fails_typed() {
        let registry = registry_with("m", 5);
        let server = Server::start(registry, ServerConfig::default());
        assert!(matches!(
            server.client().request("m").submit(),
            Err(ServeError::MissingInput)
        ));
    }

    /// Graceful shutdown drains the queue: every queued request gets a
    /// terminal response (here: completion), none is lost or left
    /// hanging. Regression for the shutdown/queued-work race.
    #[test]
    fn graceful_shutdown_completes_all_queued_requests() {
        let registry = registry_with("m", 6);
        // One worker and a long max_wait so requests pile up queued.
        let server = Server::start(
            registry,
            ServerConfig {
                workers: 1,
                batch: BatchPolicy {
                    max_batch: 2,
                    max_wait: Duration::from_secs(3600),
                    ..BatchPolicy::default()
                },
                ..ServerConfig::default()
            },
        );
        let client = server.client();
        let handles: Vec<_> = (0..5)
            .map(|_| {
                client
                    .request("m")
                    .input(Tensor::zeros(&[1, 3, 8, 8]))
                    .submit()
                    .expect("submit")
            })
            .collect();
        server.shutdown();
        for h in handles {
            match h.wait() {
                Terminal::Completed(_) => {}
                other => panic!("graceful shutdown must complete queued work, got {other:?}"),
            }
        }
        // New submissions are refused with the typed shutdown error.
        assert!(matches!(
            client
                .request("m")
                .input(Tensor::zeros(&[1, 3, 8, 8]))
                .submit(),
            Err(ServeError::ShuttingDown)
        ));
    }

    /// Fast shutdown fails still-queued requests with the typed
    /// `ShuttingDown` error instead of executing or dropping them.
    #[test]
    fn shutdown_now_fails_pending_requests_typed() {
        let registry = registry_with("m", 7);
        let server = Server::start(
            registry,
            ServerConfig {
                workers: 1,
                batch: BatchPolicy {
                    max_batch: 1,
                    max_wait: Duration::from_secs(3600),
                    ..BatchPolicy::default()
                },
                ..ServerConfig::default()
            },
        );
        let client = server.client();
        let handles: Vec<_> = (0..6)
            .map(|_| {
                client
                    .request("m")
                    .input(Tensor::zeros(&[1, 3, 8, 8]))
                    .submit()
                    .expect("submit")
            })
            .collect();
        server.shutdown_now();
        let (mut completed, mut shut_down) = (0, 0);
        for h in handles {
            match h.wait() {
                Terminal::Completed(_) => completed += 1,
                Terminal::Failed(ServeError::ShuttingDown) => shut_down += 1,
                other => panic!("unexpected terminal state {other:?}"),
            }
        }
        assert_eq!(completed + shut_down, 6, "every request reached a terminal");
        assert!(
            shut_down >= 1,
            "fast shutdown must fail queued work typed (completed={completed})"
        );
    }
}
