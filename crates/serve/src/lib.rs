//! # patdnn-serve
//!
//! The serving layer of the PatDNN reproduction: everything between a
//! pruned, compiled network and live inference traffic.
//!
//! PatDNN's end-to-end promise is real-time *inference* — the compiler
//! stack (FKW storage, filter-kernel reorder, LRE, tuning) only pays off
//! when a whole network executes as one compiled plan. This crate
//! provides that plan plus the deployment story around it:
//!
//! - [`compile`] — lowers an exported network ([`patdnn_nn::export`]),
//!   residual blocks included, through the compiler's graph passes (BN
//!   folding, ReLU fusion into convs and joins, DCE) into a
//!   [`artifact::ModelArtifact`]: a DAG plan whose values are assigned
//!   buffer slots by liveness analysis, with each pruned layer's
//!   pattern table and FKW storage derived from its weights.
//! - [`tune`] — per-layer execution tuning (§5.5 at deployment): a
//!   [`compile::CompileOptions`] tuning policy selects each
//!   pattern-conv step's [`artifact::ExecConfig`] (opt level,
//!   tile/unroll parameters, thread schedule) via the compiler's
//!   performance estimator or GA exploration over real timed runs.
//! - [`quant`] — the INT8 quantization pass: symmetric per-filter
//!   weight scales over the artifact's own FKW storage, activation
//!   scales calibrated from a sample batch
//!   ([`patdnn_nn::calibrate`]), `i8 × i8 → i32` execution dispatched
//!   per step from the persisted [`artifact::Precision`].
//! - [`artifact`] — the versioned binary model format: pruned FKW
//!   weights plus layer geometry, slot topology, per-step execution
//!   configs and per-step precision (format v4), save/load without
//!   retraining, re-pruning, retuning or recalibrating; legacy v1–v3
//!   artifacts still decode (default configs, f32 precision).
//! - [`engine`] — the [`engine::Engine`]: an executable DAG plan of
//!   per-step executors (residual `Add` joins included) reading and
//!   writing pooled, liveness-shared slot buffers, with a single
//!   `infer` entry point; batch-N throughout.
//! - [`registry`] — named models, shared between workers.
//! - [`batching`] — the bounded request queue with dynamic batching:
//!   collect up to `max_batch` same-model requests or a `max_wait`
//!   deadline, execute as one batch, scatter the results.
//! - [`server`] — the worker pool tying registry + queue together.
//! - [`metrics`] — per-request latency and throughput counters
//!   (p50/p95/p99, QPS).
//!
//! See `DESIGN.md` §7 for the serving architecture and batching policy.
//!
//! # Examples
//!
//! ```
//! use patdnn_nn::models::small_cnn;
//! use patdnn_serve::compile::compile_network;
//! use patdnn_serve::engine::{Engine, EngineOptions};
//! use patdnn_tensor::{rng::Rng, Tensor};
//!
//! let mut rng = Rng::seed_from(0);
//! let net = small_cnn(3, 8, 4, &mut rng);
//! let artifact = compile_network("demo", &net, [3, 8, 8]).unwrap();
//! let engine = Engine::new(artifact, EngineOptions::default()).unwrap();
//! let out = engine.infer(&Tensor::randn(&[1, 3, 8, 8], &mut rng)).unwrap();
//! assert_eq!(out.shape(), &[1, 4]);
//! ```

pub mod artifact;
pub mod batching;
pub mod compile;
pub mod engine;
pub mod metrics;
pub mod quant;
pub mod registry;
pub mod server;
pub mod tune;

pub use artifact::{ArtifactError, ExecConfig, LayerPlan, ModelArtifact, Precision};
pub use compile::{
    compile_graph, compile_graph_with, compile_network, compile_network_with, CompileError,
    CompileOptions,
};
pub use engine::{Engine, EngineOptions};
pub use metrics::{MetricsSnapshot, ServerMetrics};
pub use quant::{compile_network_int8, quantize_artifact, QuantError};
pub use registry::ModelRegistry;
pub use server::{Server, ServerConfig};
pub use tune::TunePolicy;

use std::fmt;

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// The named model is not registered.
    UnknownModel(String),
    /// The request queue is at capacity (backpressure).
    QueueFull,
    /// The server is shutting down.
    Closed,
    /// The request input does not match the model's input shape.
    ShapeMismatch {
        /// Shape the model expects (per item, `[c, h, w]`).
        expected: Vec<usize>,
        /// Shape the request carried.
        got: Vec<usize>,
    },
    /// Compilation failed.
    Compile(CompileError),
    /// Artifact decoding failed.
    Artifact(ArtifactError),
    /// INT8 quantization failed.
    Quant(QuantError),
    /// An unexpected failure inside a worker.
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            ServeError::QueueFull => write!(f, "request queue full"),
            ServeError::Closed => write!(f, "server closed"),
            ServeError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "input shape {got:?} does not match model input {expected:?}"
                )
            }
            ServeError::Compile(e) => write!(f, "compile error: {e}"),
            ServeError::Artifact(e) => write!(f, "artifact error: {e}"),
            ServeError::Quant(e) => write!(f, "quantization error: {e}"),
            ServeError::Internal(msg) => write!(f, "internal server error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CompileError> for ServeError {
    fn from(e: CompileError) -> Self {
        ServeError::Compile(e)
    }
}

impl From<ArtifactError> for ServeError {
    fn from(e: ArtifactError) -> Self {
        ServeError::Artifact(e)
    }
}
