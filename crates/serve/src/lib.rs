//! # patdnn-serve
//!
//! The serving layer of the PatDNN reproduction: everything between a
//! pruned, compiled network and live inference traffic.
//!
//! PatDNN's end-to-end promise is real-time *inference* — the compiler
//! stack (FKW storage, filter-kernel reorder, LRE, tuning) only pays off
//! when a whole network executes as one compiled plan. This crate
//! provides that plan plus the deployment story around it:
//!
//! - [`compile`] — lowers an exported network ([`patdnn_nn::export`]),
//!   residual blocks included, through the compiler's graph passes (BN
//!   folding, ReLU fusion into convs and joins, DCE) into a
//!   [`artifact::ModelArtifact`]: a DAG plan whose values are assigned
//!   buffer slots by liveness analysis, with each pruned layer's
//!   pattern table and FKW storage derived from its weights.
//! - [`tune`] — per-layer execution tuning (§5.5 at deployment): a
//!   [`compile::CompileOptions`] tuning policy selects each
//!   pattern-conv step's [`artifact::ExecConfig`] (opt level,
//!   tile/unroll parameters, thread schedule, and lowering
//!   *algorithm* — direct FKW, im2col+GEMM, or Winograd) via the
//!   compiler's performance estimator or GA exploration plus an
//!   algorithm run-off over real timed runs.
//! - [`algo_exec`] — the densified lowerings behind the non-direct
//!   algorithm choices: [`algo_exec::Im2colConv`] (im2col + packed
//!   micro-kernel GEMM) and [`algo_exec::WinogradConv`]
//!   (`F(2x2,3x3)`), both pre-packing weights at engine build, plus
//!   the typed Winograd eligibility guard
//!   ([`algo_exec::winograd_eligible`]).
//! - [`quant`] — the INT8 quantization pass: symmetric per-filter
//!   weight scales over the artifact's own FKW storage, activation
//!   scales calibrated from a sample batch
//!   ([`patdnn_nn::calibrate`]), `i8 × i8 → i32` execution dispatched
//!   per step from the persisted [`artifact::Precision`].
//! - [`artifact`] — the versioned binary model format: pruned FKW
//!   weights plus layer geometry, slot topology, per-step execution
//!   configs, per-step precision, and per-step algorithm choice
//!   (format v5), save/load without retraining, re-pruning, retuning
//!   or recalibrating; legacy v1–v4 artifacts still decode (default
//!   configs, f32 precision, direct algorithm).
//! - [`mod@verify`] — the plan verifier: one static pass of abstract
//!   interpretation over a decoded artifact proving every semantic
//!   invariant (slot lifetimes, shape dataflow, FKW index bounds, i32
//!   accumulation depth, precision flow, exec-config and algorithm
//!   eligibility) before the engine trusts the plan; runs by default
//!   at [`artifact::ModelArtifact::load`] and at engine build, and
//!   returns a typed [`verify::VerifyReport`] rather than failing
//!   fast.
//! - [`engine`] — the [`engine::Engine`]: an executable DAG plan of
//!   per-step executors (residual `Add` joins included) reading and
//!   writing pooled, liveness-shared slot buffers, with a single
//!   `infer` entry point; batch-N throughout.
//! - [`registry`] — named models, shared between workers.
//! - [`request`] — the request-lifecycle API: a [`request::Client`]
//!   builds requests carrying a deadline, a [`request::Priority`]
//!   class, and a [`request::CancelToken`]; submission returns a
//!   [`request::ResponseHandle`] with `wait`/`wait_timeout`/`try_poll`
//!   and typed [`request::Terminal`] states (`Completed`, `Expired`,
//!   `Cancelled`, `Shed`). Admission control bounds global and
//!   per-model in-flight work and sheds the overflow with a retry
//!   hint.
//! - [`batching`] — the bounded request queue with deadline- and
//!   priority-aware dynamic batching: collect up to `max_batch`
//!   same-model requests or a `max_wait` deadline, dispatch by
//!   priority class with earliest-deadline-first ordering inside each
//!   class, drop expired requests *before* execution, and protect
//!   `Batch`-class work from starvation with a bounded boost.
//! - [`server`] — the worker pool tying registry + queue together.
//! - [`mod@wire`] — the versioned length-prefixed binary protocol: the
//!   request API rendered as frames, with every [`ServeError`] variant
//!   and [`request::Terminal`] state carrying a stable numeric code
//!   (the frozen v1 surface; see [`prelude`]).
//! - [`net`] — the std-only TCP front-end (`patdnn-serve --listen`):
//!   connections map onto the [`request::Client`] lifecycle so
//!   deadlines, priorities, cancellation, and shed-with-retry-hint
//!   travel over the wire as typed responses; plus a minimal HTTP/1.1
//!   shim for `/metrics` and `/healthz` on the same port.
//! - [`router`] — the shard router (`patdnn-router`): consistent
//!   hashing of models over a replica fleet, per-replica in-flight
//!   accounting, retry-on-shed to the next replica, and health-based
//!   ejection/readmission.
//! - [`metrics`] — per-request latency and throughput counters
//!   (p50/p95/p99, QPS), per priority class, plus shed / expired /
//!   cancelled lifecycle counters and live queue-depth / in-flight
//!   gauges.
//! - [`telemetry`] — request-scoped tracing and per-layer profiling:
//!   every served request (per the sampling
//!   [`telemetry::TelemetryPolicy`]) leaves a span tree — enqueue,
//!   admission, queue wait, batch assembly, execution, delivery —
//!   in a bounded lock-light ring, execution is profiled per plan
//!   step (wall time, precision, effective dense GFLOP/s), and the
//!   whole record exports as Chrome-trace JSON or per-layer
//!   p50/p99 snapshots.
//!
//! See `DESIGN.md` §7 for the serving architecture and batching
//! policy, and §10 for the request lifecycle and admission control.
//!
//! # Examples
//!
//! ```
//! use patdnn_nn::models::small_cnn;
//! use patdnn_serve::compile::compile_network;
//! use patdnn_serve::engine::{Engine, EngineOptions};
//! use patdnn_tensor::{rng::Rng, Tensor};
//!
//! let mut rng = Rng::seed_from(0);
//! let net = small_cnn(3, 8, 4, &mut rng);
//! let artifact = compile_network("demo", &net, [3, 8, 8]).unwrap();
//! let engine = Engine::new(artifact, EngineOptions::default()).unwrap();
//! let out = engine.infer(&Tensor::randn(&[1, 3, 8, 8], &mut rng)).unwrap();
//! assert_eq!(out.shape(), &[1, 4]);
//! ```

pub mod algo_exec;
pub mod artifact;
pub mod batching;
pub mod compile;
pub mod engine;
pub mod metrics;
pub mod net;
pub mod quant;
pub mod registry;
pub mod request;
pub mod router;
pub mod server;
pub mod telemetry;
pub mod tune;
pub mod verify;
pub mod wire;

/// The frozen v1 request-API surface, shared by in-process callers and
/// the wire protocol.
///
/// Everything here is what a caller needs to submit requests and
/// interpret their typed outcomes — locally through
/// [`Server::client`], or remotely through [`net::NetClient`] against
/// a `patdnn-serve --listen` process or a `patdnn-router` shard
/// router. The wire protocol ([`mod@wire`]) serializes exactly these
/// types: [`ServeError::code`] / [`request::Terminal::code`] give
/// every outcome a stable numeric code, so the two surfaces cannot
/// drift apart.
pub mod prelude {
    pub use crate::net::{NetClient, NetServer, NetServerConfig, WireOutcome};
    pub use crate::request::{
        AdmissionPolicy, CancelToken, Client, Priority, RequestBuilder, ResponseHandle, Terminal,
    };
    pub use crate::router::{Router, RouterConfig};
    pub use crate::server::{InferResponse, Server, ServerConfig};
    pub use crate::wire::{Frame, WireError, WIRE_VERSION};
    pub use crate::ServeError;
}

pub use algo_exec::{winograd_eligible, WinogradRejection};
pub use artifact::{ArtifactError, ExecConfig, LayerPlan, LoadPolicy, ModelArtifact, Precision};
pub use compile::{
    compile_graph, compile_graph_with, compile_network, compile_network_with, CompileError,
    CompileOptions,
};
pub use engine::{Engine, EngineOptions, StepTiming};
pub use metrics::{ClassSnapshot, MetricsSnapshot, ServerMetrics};
pub use net::{NetClient, NetServer, NetServerConfig, WireOutcome};
pub use quant::{compile_network_int8, quantize_artifact, QuantError};
pub use registry::ModelRegistry;
pub use request::{
    AdmissionPolicy, CancelToken, Client, Priority, RequestBuilder, ResponseHandle, Terminal,
};
pub use router::{Router, RouterConfig, RouterMetricsSnapshot};
pub use server::{InferResponse, Server, ServerConfig};
pub use telemetry::{
    LayerSnapshot, RequestTrace, SpanEvent, SpanKind, Stage, StageStat, Telemetry, TelemetryPolicy,
    TraceId,
};
pub use tune::TunePolicy;
pub use verify::{verify, VerifyReport, Violation};
pub use wire::{Frame, WireError};

use std::fmt;

/// Errors surfaced by the serving layer.
///
/// This enum is part of the **frozen v1 request API**: every variant
/// has a stable numeric wire code ([`ServeError::code`]) that the
/// network protocol ([`mod@wire`]) serializes, so remote callers see the
/// same typed surface as in-process ones. New variants may be added
/// (the enum is `#[non_exhaustive]`), but existing codes never change
/// meaning. See DESIGN.md §14 for the code table.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The named model is not registered.
    UnknownModel(String),
    /// The request queue is at capacity (backpressure).
    QueueFull,
    /// The batch queue was closed before the request could enqueue.
    QueueClosed,
    /// The server is shutting down; new requests are refused and, under
    /// fast shutdown, still-queued requests fail with this error.
    ShuttingDown,
    /// The request's deadline passed before execution; it was dropped
    /// without executing.
    Expired {
        /// How far past the deadline the drop happened.
        missed_by: std::time::Duration,
    },
    /// The request's cancel token fired before execution.
    Cancelled,
    /// Admission control refused the request: the global or per-model
    /// in-flight budget is exhausted.
    Shed {
        /// Server's estimate of when capacity may free up.
        retry_after_hint: std::time::Duration,
    },
    /// A request was submitted without an input tensor.
    MissingInput,
    /// The server is shutting down (legacy name; response channels also
    /// surface this when a server disappears mid-request).
    Closed,
    /// The request input does not match the model's input shape.
    ShapeMismatch {
        /// Shape the model expects (per item, `[c, h, w]`).
        expected: Vec<usize>,
        /// Shape the request carried.
        got: Vec<usize>,
    },
    /// Compilation failed.
    Compile(CompileError),
    /// Artifact decoding failed.
    Artifact(ArtifactError),
    /// INT8 quantization failed.
    Quant(QuantError),
    /// An unexpected failure inside a worker.
    Internal(String),
}

impl ServeError {
    /// The variant's stable v1 wire code.
    ///
    /// Codes are frozen: they are what the network protocol
    /// ([`mod@wire`]) puts on the wire, what `from_code` round-trips,
    /// and what routers key retry decisions on ([`ServeError::Shed`]
    /// is retried on the next replica; most others are terminal).
    /// Never renumber; new variants append new codes.
    pub fn code(&self) -> u16 {
        match self {
            ServeError::UnknownModel(_) => 1,
            ServeError::QueueFull => 2,
            ServeError::QueueClosed => 3,
            ServeError::ShuttingDown => 4,
            ServeError::Expired { .. } => 5,
            ServeError::Cancelled => 6,
            ServeError::Shed { .. } => 7,
            ServeError::MissingInput => 8,
            ServeError::Closed => 9,
            ServeError::ShapeMismatch { .. } => 10,
            ServeError::Compile(_) => 11,
            ServeError::Artifact(_) => 12,
            ServeError::Quant(_) => 13,
            ServeError::Internal(_) => 14,
        }
    }

    /// Reconstructs the variant a v1 wire code names, with empty
    /// payloads (`from_code(e.code())` always yields a variant whose
    /// `code()` equals `e.code()`). Wire decoding uses this to map a
    /// frame's code back to the typed error, then re-attaches the
    /// payload fields the frame carries (durations, messages).
    /// Unknown codes return `None` so a newer peer's error degrades to
    /// a typed decode failure instead of a mis-typed variant.
    pub fn from_code(code: u16) -> Option<ServeError> {
        Some(match code {
            1 => ServeError::UnknownModel(String::new()),
            2 => ServeError::QueueFull,
            3 => ServeError::QueueClosed,
            4 => ServeError::ShuttingDown,
            5 => ServeError::Expired {
                missed_by: std::time::Duration::ZERO,
            },
            6 => ServeError::Cancelled,
            7 => ServeError::Shed {
                retry_after_hint: std::time::Duration::ZERO,
            },
            8 => ServeError::MissingInput,
            9 => ServeError::Closed,
            10 => ServeError::ShapeMismatch {
                expected: Vec::new(),
                got: Vec::new(),
            },
            11 => ServeError::Compile(CompileError::InvalidOptions(String::new())),
            12 => ServeError::Artifact(ArtifactError::Truncated),
            13 => ServeError::Quant(QuantError::MissingCalibration {
                step: String::new(),
            }),
            14 => ServeError::Internal(String::new()),
            _ => return None,
        })
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            ServeError::QueueFull => write!(f, "request queue full"),
            ServeError::QueueClosed => write!(f, "request queue closed"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::Expired { missed_by } => {
                write!(
                    f,
                    "request expired {:.3}ms past its deadline without executing",
                    missed_by.as_secs_f64() * 1e3
                )
            }
            ServeError::Cancelled => write!(f, "request cancelled"),
            ServeError::Shed { retry_after_hint } => {
                write!(
                    f,
                    "request shed by admission control, retry after ~{:.0}ms",
                    retry_after_hint.as_secs_f64() * 1e3
                )
            }
            ServeError::MissingInput => write!(f, "request submitted without an input tensor"),
            ServeError::Closed => write!(f, "server closed"),
            ServeError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "input shape {got:?} does not match model input {expected:?}"
                )
            }
            ServeError::Compile(e) => write!(f, "compile error: {e}"),
            ServeError::Artifact(e) => write!(f, "artifact error: {e}"),
            ServeError::Quant(e) => write!(f, "quantization error: {e}"),
            ServeError::Internal(msg) => write!(f, "internal server error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CompileError> for ServeError {
    fn from(e: CompileError) -> Self {
        ServeError::Compile(e)
    }
}

impl From<ArtifactError> for ServeError {
    fn from(e: ArtifactError) -> Self {
        ServeError::Artifact(e)
    }
}
