//! Whole-network compilation: exported layers → graph passes → artifact.
//!
//! The flow mirrors the paper's deployment story: the trained, pruned
//! network is exported once ([`patdnn_nn::export`]), lowered to the
//! compiler's graph IR, optimized by the TVM-like passes (conv+BN
//! folding, ReLU fusion, dead-node elimination), and each surviving
//! convolution is compressed to FKW storage after filter-kernel reorder.
//! The result is a [`ModelArtifact`] that an [`crate::engine::Engine`]
//! executes directly.
//!
//! Pattern derivation is weight-driven: a layer whose kept 3×3 kernels
//! all fit a 4-entry natural pattern (centre + 3 neighbours) compiles to
//! the pattern executor; anything else (unpruned layers, kernels with
//! more than 4 survivors) falls back to the dense tiled executor, so
//! compilation is total over well-formed chains and always lossless.

use std::fmt;

use patdnn_compiler::fkr::filter_kernel_reorder;
use patdnn_compiler::fkw::FkwLayer;
use patdnn_compiler::graph::{Graph, Op};
use patdnn_compiler::passes;
use patdnn_core::pattern::Pattern;
use patdnn_core::pattern_set::PatternSet;
use patdnn_core::project::{KernelStatus, LayerPruning};
use patdnn_nn::export::{export_network, LayerExport};
use patdnn_nn::network::Sequential;
use patdnn_tensor::Tensor;

use crate::artifact::{LayerPlan, ModelArtifact};

/// Errors produced while compiling a network.
#[derive(Debug)]
pub enum CompileError {
    /// A node kind the serving plan cannot execute (residual joins,
    /// depthwise convolutions, custom layers).
    Unsupported {
        /// Node or layer name.
        name: String,
        /// Node kind label.
        kind: String,
    },
    /// A convolution or FC node without materialized weights.
    MissingWeights(String),
    /// The optimized graph is not a single chain.
    NotAChain(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unsupported { name, kind } => {
                write!(f, "layer {name:?} of kind {kind:?} is not servable")
            }
            CompileError::MissingWeights(name) => {
                write!(f, "node {name:?} has no materialized weights")
            }
            CompileError::NotAChain(name) => {
                write!(f, "graph is not a single chain at node {name:?}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Lowers exported layers to the compiler's graph IR.
///
/// `input` is the per-item shape `[c, h, w]`; the graph input node gets a
/// batch dimension of 1 (plans are batch-size independent).
pub fn graph_from_exports(
    input: [usize; 3],
    layers: &[LayerExport],
) -> Result<Graph, CompileError> {
    let mut g = Graph::with_input(&[1, input[0], input[1], input[2]]);
    let mut prev = 0usize;
    for layer in layers {
        let node = match layer {
            LayerExport::Conv {
                name,
                out_c,
                in_c,
                kernel,
                stride,
                pad,
                weights,
                bias,
            } => g.push(
                name,
                Op::Conv {
                    out_c: *out_c,
                    in_c: *in_c,
                    kernel: *kernel,
                    stride: *stride,
                    pad: *pad,
                    weights: Some(weights.clone()),
                    bias: Some(bias.clone()),
                    fused_relu: false,
                },
                &[prev],
            ),
            LayerExport::BatchNorm { name, scale, shift } => g.push(
                name,
                Op::BatchNorm {
                    scale: scale.clone(),
                    shift: shift.clone(),
                },
                &[prev],
            ),
            LayerExport::Relu { name } => g.push(name, Op::Relu, &[prev]),
            LayerExport::MaxPool {
                name,
                kernel,
                stride,
                pad,
            } => {
                if *pad != 0 {
                    return Err(CompileError::Unsupported {
                        name: name.clone(),
                        kind: "maxpool-padded".into(),
                    });
                }
                g.push(
                    name,
                    Op::MaxPool {
                        kernel: *kernel,
                        stride: *stride,
                    },
                    &[prev],
                )
            }
            LayerExport::GlobalAvgPool { name } => g.push(name, Op::GlobalAvgPool, &[prev]),
            LayerExport::Flatten { name } => g.push(name, Op::Flatten, &[prev]),
            LayerExport::Linear {
                name,
                weights,
                bias,
            } => {
                let (out_f, in_f) = (weights.shape()[0], weights.shape()[1]);
                g.push(
                    name,
                    Op::Fc {
                        in_f,
                        out_f,
                        weights: Some(weights.clone()),
                        bias: Some(bias.clone()),
                    },
                    &[prev],
                )
            }
            LayerExport::Relu6 { name } | LayerExport::Opaque { name } => {
                return Err(CompileError::Unsupported {
                    name: name.clone(),
                    kind: layer.kind().into(),
                })
            }
        };
        prev = node;
    }
    Ok(g)
}

/// Derives the pruning record implied by a pruned weight tensor, along
/// with the local pattern set its kernels draw from.
///
/// Returns `None` when the layer cannot be expressed in pattern form
/// (some kept 3×3 kernel has non-zeros outside every 4-entry natural
/// pattern — e.g. an unpruned layer), in which case the caller falls
/// back to dense execution. Non-3×3 layers derive connectivity-only
/// records (kept kernels stay dense inside), matching the paper's §4.3
/// treatment.
pub fn derive_pruning(name: &str, weights: &Tensor) -> Option<(LayerPruning, PatternSet)> {
    let s = weights.shape4();
    let ksize = s.h * s.w;
    let is_3x3 = s.h == 3 && s.w == 3;
    let mut statuses = Vec::with_capacity(s.n * s.c);
    let mut patterns: Vec<Pattern> = Vec::new();
    for kernel in weights.data().chunks_exact(ksize) {
        let nonzeros = kernel.iter().filter(|&&x| x != 0.0).count();
        if nonzeros == 0 {
            statuses.push(KernelStatus::Pruned);
        } else if is_3x3 {
            if nonzeros > 4 {
                return None;
            }
            let mut buf = [0.0f32; 9];
            buf.copy_from_slice(kernel);
            let natural = Pattern::natural_of(&buf);
            let covered = kernel
                .iter()
                .enumerate()
                .all(|(i, &x)| x == 0.0 || natural.contains(i / 3, i % 3));
            if !covered {
                return None;
            }
            let id = match patterns.iter().position(|&p| p == natural) {
                Some(id) => id,
                None => {
                    patterns.push(natural);
                    patterns.len() - 1
                }
            };
            statuses.push(KernelStatus::Pattern(id));
        } else {
            statuses.push(KernelStatus::Dense);
        }
    }
    if statuses.iter().all(|st| !st.is_kept()) {
        // A fully-pruned layer would produce a degenerate FKW table;
        // treat it as unpatternable and let the dense path zero it.
        return None;
    }
    let lp = LayerPruning {
        name: name.to_owned(),
        out_c: s.n,
        in_c: s.c,
        kernel: s.h,
        kernels: statuses,
    };
    // Non-3x3 layers never reference the set; give them a placeholder.
    let set = if patterns.is_empty() {
        PatternSet::standard(1)
    } else {
        PatternSet::from_patterns(patterns)
    };
    Some((lp, set))
}

/// Compiles an optimized-or-not graph into a model artifact.
///
/// Runs the graph passes first (BN folding, ReLU fusion, DCE), then
/// lowers the surviving chain into layer plans: pattern-expressible
/// convolutions go through filter-kernel reorder into FKW storage, the
/// rest stay dense.
pub fn compile_graph(
    name: &str,
    input: [usize; 3],
    graph: &Graph,
) -> Result<ModelArtifact, CompileError> {
    let mut g = graph.clone();
    passes::optimize(&mut g);

    let mut layers = Vec::new();
    for (id, node) in g.nodes.iter().enumerate() {
        // The optimized graph must be a single chain: node i feeds i+1.
        match (id, &node.inputs[..]) {
            (0, []) => {}
            (_, [prev]) if *prev == id - 1 => {}
            _ => return Err(CompileError::NotAChain(node.name.clone())),
        }
        match &node.op {
            Op::Input { .. } => {
                if id != 0 {
                    return Err(CompileError::NotAChain(node.name.clone()));
                }
            }
            Op::Conv {
                stride,
                pad,
                weights,
                bias,
                fused_relu,
                ..
            } => {
                let w = weights
                    .as_ref()
                    .ok_or_else(|| CompileError::MissingWeights(node.name.clone()))?;
                match derive_pruning(&node.name, w) {
                    Some((lp, set)) => {
                        let order = filter_kernel_reorder(&lp);
                        let fkw = FkwLayer::from_pruned(w, &lp, &set, &order);
                        debug_assert_eq!(fkw.to_dense(), *w, "FKW lowering is lossless");
                        layers.push(LayerPlan::PatternConv {
                            name: node.name.clone(),
                            stride: *stride,
                            pad: *pad,
                            fkw,
                            bias: bias.clone(),
                            relu: *fused_relu,
                        });
                    }
                    None => layers.push(LayerPlan::DenseConv {
                        name: node.name.clone(),
                        stride: *stride,
                        pad: *pad,
                        weights: w.clone(),
                        bias: bias.clone(),
                        relu: *fused_relu,
                    }),
                }
            }
            Op::MaxPool { kernel, stride } => layers.push(LayerPlan::MaxPool {
                kernel: *kernel,
                stride: *stride,
                pad: 0,
            }),
            Op::GlobalAvgPool => layers.push(LayerPlan::GlobalAvgPool),
            Op::Flatten => layers.push(LayerPlan::Flatten),
            Op::Relu => layers.push(LayerPlan::Relu),
            Op::Fc { weights, bias, .. } => {
                let w = weights
                    .as_ref()
                    .ok_or_else(|| CompileError::MissingWeights(node.name.clone()))?;
                layers.push(LayerPlan::Fc {
                    name: node.name.clone(),
                    weights: w.clone(),
                    bias: bias.clone().unwrap_or_else(|| vec![0.0; w.shape()[0]]),
                });
            }
            other => {
                return Err(CompileError::Unsupported {
                    name: node.name.clone(),
                    kind: other.kind().into(),
                })
            }
        }
    }
    Ok(ModelArtifact {
        name: name.to_owned(),
        input,
        layers,
    })
}

/// Compiles a trained network end to end: export → graph → passes →
/// artifact. `input` is the per-item shape `[c, h, w]`.
pub fn compile_network(
    name: &str,
    net: &Sequential,
    input: [usize; 3],
) -> Result<ModelArtifact, CompileError> {
    let exports = export_network(net);
    let graph = graph_from_exports(input, &exports)?;
    compile_graph(name, input, &graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use patdnn_core::project::{alpha_for_rate, prune_layer};
    use patdnn_nn::models::small_cnn;
    use patdnn_tensor::rng::Rng;

    #[test]
    fn derive_pruning_round_trips_pruned_weights() {
        let mut rng = Rng::seed_from(1);
        let mut w = Tensor::randn(&[8, 8, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp0 = prune_layer("l", &mut w, &set, alpha_for_rate(64, 3.6));
        let (lp, local) = derive_pruning("l", &w).expect("pruned layer derives");
        assert_eq!(lp.kept_kernels(), lp0.kept_kernels());
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &local, &order);
        assert_eq!(fkw.to_dense(), w, "derived FKW is lossless");
    }

    #[test]
    fn derive_pruning_rejects_dense_3x3() {
        let mut rng = Rng::seed_from(2);
        let w = Tensor::randn(&[4, 4, 3, 3], &mut rng);
        assert!(derive_pruning("dense", &w).is_none());
    }

    #[test]
    fn derive_pruning_handles_1x1_connectivity_only() {
        let mut rng = Rng::seed_from(3);
        let mut w = Tensor::randn(&[8, 8, 1, 1], &mut rng);
        let set = PatternSet::standard(8);
        prune_layer("p", &mut w, &set, 16);
        let (lp, local) = derive_pruning("p", &w).expect("1x1 derives");
        assert_eq!(lp.kept_kernels(), 16);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &local, &order);
        assert_eq!(fkw.to_dense(), w);
    }

    #[test]
    fn unpruned_network_compiles_to_dense_plans() {
        let mut rng = Rng::seed_from(4);
        let net = small_cnn(3, 8, 4, &mut rng);
        let artifact = compile_network("cnn", &net, [3, 8, 8]).expect("compiles");
        let kinds: Vec<&str> = artifact.layers.iter().map(LayerPlan::kind).collect();
        // Post-fusion: conv(+relu), maxpool, conv(+relu), maxpool, flatten, fc.
        assert_eq!(
            kinds,
            vec![
                "dense-conv",
                "maxpool",
                "dense-conv",
                "maxpool",
                "flatten",
                "fc"
            ]
        );
        for plan in &artifact.layers {
            if let LayerPlan::DenseConv { relu, .. } = plan {
                assert!(*relu, "relu fused into conv");
            }
        }
    }

    #[test]
    fn residual_network_is_rejected() {
        let mut rng = Rng::seed_from(5);
        let net = patdnn_nn::models::resnet_small(4, &mut rng);
        assert!(matches!(
            compile_network("res", &net, [3, 32, 32]),
            Err(CompileError::Unsupported { .. })
        ));
    }
}
