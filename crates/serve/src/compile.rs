//! Whole-network compilation: exported layers → graph passes → artifact.
//!
//! The flow mirrors the paper's deployment story: the trained, pruned
//! network is exported once ([`patdnn_nn::export`]), lowered to the
//! compiler's graph IR, optimized by the TVM-like passes (conv+BN
//! folding, ReLU fusion into convs and joins, dead-node elimination),
//! and each surviving convolution is compressed to FKW storage after
//! filter-kernel reorder. The result is a [`ModelArtifact`] that an
//! [`crate::engine::Engine`] executes directly.
//!
//! Lowering is a topological walk over the optimized DAG — residual
//! joins and multi-consumer values included — that assigns every value
//! a buffer *slot* via liveness analysis: a slot is returned to the
//! free pool once its value's last consumer has executed, and reused by
//! any later value of the same per-item shape. The slot count is
//! therefore bounded by the plan's peak number of simultaneously-live
//! values (a deep residual network needs ~4 activation slots, not one
//! per layer), and because reuse is shape-exact a warm engine never
//! reallocates on the hot path.
//!
//! Pattern derivation is weight-driven: a layer whose kept 3×3 kernels
//! all fit a 4-entry natural pattern (centre + 3 neighbours) compiles to
//! the pattern executor; anything else (unpruned layers, kernels with
//! more than 4 survivors) falls back to the dense tiled executor. 1×1
//! projection shortcuts compile through the same path with
//! connectivity-only pruning records, so pruned skip projections get
//! FKW storage too. Compilation is total over well-formed DAGs of the
//! supported ops and always lossless.

use std::fmt;

use patdnn_compiler::fkr::filter_kernel_reorder;
use patdnn_compiler::fkw::FkwLayer;
use patdnn_compiler::graph::{Graph, Op};
use patdnn_compiler::passes;
use patdnn_core::pattern::Pattern;
use patdnn_core::pattern_set::PatternSet;
use patdnn_core::project::{KernelStatus, LayerPruning};
use patdnn_nn::export::{export_network, LayerExport};
use patdnn_nn::network::Sequential;
use patdnn_tensor::rng::Rng;
use patdnn_tensor::{conv_out_dim, Conv2dGeometry, Tensor};

use crate::artifact::{ExecConfig, LayerPlan, ModelArtifact, PlanStep};
use crate::tune::{self, TunePolicy};

/// Compile-time knobs: the tuning policy plus the thread schedule and
/// rng seed it records into each pattern-conv step's [`ExecConfig`].
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// How per-layer executor configurations are selected (§5.5).
    pub tune: TunePolicy,
    /// Intra-layer threads stamped into each pattern-conv step's config
    /// (1 = serial). The engine honors this at load unless overridden.
    pub threads: usize,
    /// Seed for the tuners (estimator init and fitting, GA exploration);
    /// each layer derives its own stream from it, so `Estimate` plans
    /// are reproducible.
    pub seed: u64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            tune: TunePolicy::Off,
            threads: 1,
            seed: 0x9a7d_2e10,
        }
    }
}

/// Errors produced while compiling a network.
#[derive(Debug)]
pub enum CompileError {
    /// A node kind the serving plan cannot execute (depthwise
    /// convolutions, custom layers, standalone batch norms).
    Unsupported {
        /// Node or layer name.
        name: String,
        /// Node kind label.
        kind: String,
    },
    /// A convolution or FC node without materialized weights.
    MissingWeights(String),
    /// The graph's wiring cannot be lowered at this node: branch shapes
    /// disagree at a join, an op has the wrong arity, a window does not
    /// fit its input, or the flowing shape is not what the op expects.
    UnsupportedTopology {
        /// Offending node name.
        node: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The [`CompileOptions`] cannot produce an encodable artifact
    /// (e.g. a thread count outside the codec's bounds).
    InvalidOptions(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unsupported { name, kind } => {
                write!(f, "layer {name:?} of kind {kind:?} is not servable")
            }
            CompileError::MissingWeights(name) => {
                write!(f, "node {name:?} has no materialized weights")
            }
            CompileError::UnsupportedTopology { node, reason } => {
                write!(f, "unsupported topology at node {node:?}: {reason}")
            }
            CompileError::InvalidOptions(msg) => {
                write!(f, "invalid compile options: {msg}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Lowers exported layers to the compiler's graph IR.
///
/// `input` is the per-item shape `[c, h, w]`; the graph input node gets a
/// batch dimension of 1 (plans are batch-size independent). Residual
/// exports lower recursively: both branches are built from the block's
/// input node and joined by an `Add`, so arbitrary nesting depths
/// flatten into one DAG.
pub fn graph_from_exports(
    input: [usize; 3],
    layers: &[LayerExport],
) -> Result<Graph, CompileError> {
    let mut g = Graph::with_input(&[1, input[0], input[1], input[2]]);
    let out = lower_exports(&mut g, 0, layers)?;
    g.output = out;
    Ok(g)
}

/// Appends `layers` to the graph starting from node `prev`; returns the
/// final node of the lowered run.
fn lower_exports(
    g: &mut Graph,
    mut prev: usize,
    layers: &[LayerExport],
) -> Result<usize, CompileError> {
    for layer in layers {
        let node = match layer {
            LayerExport::Conv {
                name,
                out_c,
                in_c,
                kernel,
                stride,
                pad,
                weights,
                bias,
            } => g.push(
                name,
                Op::Conv {
                    out_c: *out_c,
                    in_c: *in_c,
                    kernel: *kernel,
                    stride: *stride,
                    pad: *pad,
                    weights: Some(weights.clone()),
                    bias: Some(bias.clone()),
                    fused_relu: false,
                },
                &[prev],
            ),
            LayerExport::BatchNorm { name, scale, shift } => g.push(
                name,
                Op::BatchNorm {
                    scale: scale.clone(),
                    shift: shift.clone(),
                },
                &[prev],
            ),
            LayerExport::Relu { name } => g.push(name, Op::Relu, &[prev]),
            LayerExport::MaxPool {
                name,
                kernel,
                stride,
                pad,
            } => {
                if *pad != 0 {
                    return Err(CompileError::Unsupported {
                        name: name.clone(),
                        kind: "maxpool-padded".into(),
                    });
                }
                g.push(
                    name,
                    Op::MaxPool {
                        kernel: *kernel,
                        stride: *stride,
                    },
                    &[prev],
                )
            }
            LayerExport::GlobalAvgPool { name } => g.push(name, Op::GlobalAvgPool, &[prev]),
            LayerExport::Flatten { name } => g.push(name, Op::Flatten, &[prev]),
            LayerExport::Linear {
                name,
                weights,
                bias,
            } => {
                let (out_f, in_f) = (weights.shape()[0], weights.shape()[1]);
                g.push(
                    name,
                    Op::Fc {
                        in_f,
                        out_f,
                        weights: Some(weights.clone()),
                        bias: Some(bias.clone()),
                    },
                    &[prev],
                )
            }
            LayerExport::Residual {
                name,
                main,
                shortcut,
            } => {
                let main_out = lower_exports(g, prev, main)?;
                let short_out = match shortcut {
                    Some(s) => lower_exports(g, prev, s)?,
                    None => prev,
                };
                g.push(name, Op::Add { fused_relu: false }, &[main_out, short_out])
            }
            LayerExport::Relu6 { name } | LayerExport::Opaque { name } => {
                return Err(CompileError::Unsupported {
                    name: name.clone(),
                    kind: layer.kind().into(),
                })
            }
        };
        prev = node;
    }
    Ok(prev)
}

/// Derives the pruning record implied by a pruned weight tensor, along
/// with the local pattern set its kernels draw from.
///
/// Returns `None` when the layer cannot be expressed in pattern form
/// (some kept 3×3 kernel has non-zeros outside every 4-entry natural
/// pattern — e.g. an unpruned layer), in which case the caller falls
/// back to dense execution. Non-3×3 layers derive connectivity-only
/// records (kept kernels stay dense inside), matching the paper's §4.3
/// treatment.
pub fn derive_pruning(name: &str, weights: &Tensor) -> Option<(LayerPruning, PatternSet)> {
    let s = weights.shape4();
    let ksize = s.h * s.w;
    let is_3x3 = s.h == 3 && s.w == 3;
    let mut statuses = Vec::with_capacity(s.n * s.c);
    let mut patterns: Vec<Pattern> = Vec::new();
    for kernel in weights.data().chunks_exact(ksize) {
        let nonzeros = kernel.iter().filter(|&&x| x != 0.0).count();
        if nonzeros == 0 {
            statuses.push(KernelStatus::Pruned);
        } else if is_3x3 {
            if nonzeros > 4 {
                return None;
            }
            let mut buf = [0.0f32; 9];
            buf.copy_from_slice(kernel);
            let natural = Pattern::natural_of(&buf);
            let covered = kernel
                .iter()
                .enumerate()
                .all(|(i, &x)| x == 0.0 || natural.contains(i / 3, i % 3));
            if !covered {
                return None;
            }
            let id = match patterns.iter().position(|&p| p == natural) {
                Some(id) => id,
                None => {
                    patterns.push(natural);
                    patterns.len() - 1
                }
            };
            statuses.push(KernelStatus::Pattern(id));
        } else {
            statuses.push(KernelStatus::Dense);
        }
    }
    if statuses.iter().all(|st| !st.is_kept()) {
        // A fully-pruned layer would produce a degenerate FKW table;
        // treat it as unpatternable and let the dense path zero it.
        return None;
    }
    let lp = LayerPruning {
        name: name.to_owned(),
        out_c: s.n,
        in_c: s.c,
        kernel: s.h,
        kernels: statuses,
    };
    // Non-3x3 layers never reference the set; give them a placeholder.
    let set = if patterns.is_empty() {
        PatternSet::standard(1)
    } else {
        PatternSet::from_patterns(patterns)
    };
    Some((lp, set))
}

/// A shape-keyed pool of free buffer slots for the liveness walk.
#[derive(Default)]
struct SlotPool {
    /// `(per-item shape, free slot ids of that shape)`.
    free: Vec<(Vec<usize>, Vec<usize>)>,
    next: usize,
}

impl SlotPool {
    fn new() -> Self {
        SlotPool {
            free: Vec::new(),
            // Slot 0 is the network input and is never allocated.
            next: 1,
        }
    }

    /// Takes a free slot of exactly `shape`, or mints a new one. Reuse
    /// is shape-exact so a warm engine sizes every slot once and never
    /// reallocates mid-inference.
    fn acquire(&mut self, shape: &[usize]) -> usize {
        if let Some((_, slots)) = self.free.iter_mut().find(|(s, _)| s == shape) {
            if let Some(slot) = slots.pop() {
                return slot;
            }
        }
        let slot = self.next;
        self.next += 1;
        slot
    }

    /// Returns `slot` (holding a value of `shape`) to the pool.
    fn release(&mut self, shape: &[usize], slot: usize) {
        if slot == 0 {
            return; // the input slot is read-only and never recycled
        }
        match self.free.iter_mut().find(|(s, _)| s == shape) {
            Some((_, slots)) => slots.push(slot),
            None => self.free.push((shape.to_vec(), vec![slot])),
        }
    }
}

/// Compiles an optimized-or-not graph into a model artifact.
///
/// Runs the graph passes first (BN folding, ReLU fusion into convs and
/// joins, DCE), then lowers the surviving DAG in topological order into
/// plan steps: pattern-expressible convolutions go through
/// filter-kernel reorder into FKW storage, the rest stay dense, and
/// `Add` joins become two-input steps. Every value is assigned a buffer
/// slot via liveness analysis — a slot is freed once its value's last
/// consumer has been lowered and reused by later same-shaped values —
/// so the artifact records the peak-live buffer plan, not one buffer
/// per layer.
pub fn compile_graph(
    name: &str,
    input: [usize; 3],
    graph: &Graph,
) -> Result<ModelArtifact, CompileError> {
    compile_graph_with(name, input, graph, &CompileOptions::default())
}

/// [`compile_graph`] with explicit [`CompileOptions`]: under
/// [`TunePolicy::Estimate`] or [`TunePolicy::Measure`] every
/// pattern-conv step gets its own auto-tuned [`ExecConfig`], persisted
/// in the artifact and honored by the engine at load.
pub fn compile_graph_with(
    name: &str,
    input: [usize; 3],
    graph: &Graph,
    opts: &CompileOptions,
) -> Result<ModelArtifact, CompileError> {
    // Fail here, with a typed error, rather than panicking later in the
    // artifact encoder: the thread schedule is stamped into every conv
    // step's ExecConfig and must satisfy the codec's bounds.
    ExecConfig::with_threads(opts.threads)
        .validate()
        .map_err(CompileError::InvalidOptions)?;
    let mut g = graph.clone();
    passes::optimize(&mut g);

    let topo = |node: &str, reason: String| CompileError::UnsupportedTopology {
        node: node.to_owned(),
        reason,
    };

    // Remaining-consumer counts per value, counting duplicate edges
    // (an `Add(x, x)` consumes x twice); the graph output gets one
    // extra use for the caller reading the result.
    let mut uses = vec![0usize; g.nodes.len()];
    for node in &g.nodes {
        for &i in &node.inputs {
            uses[i] += 1;
        }
    }
    uses[g.output] += 1;

    let mut pool = SlotPool::new();
    // Per-value slot id and per-item shape, filled in topological order.
    let mut slot_of: Vec<Option<usize>> = vec![None; g.nodes.len()];
    let mut shape_of: Vec<Option<Vec<usize>>> = vec![None; g.nodes.len()];
    let mut steps = Vec::new();

    for (id, node) in g.nodes.iter().enumerate() {
        if matches!(node.op, Op::Input { .. }) {
            if id != 0 {
                return Err(topo(&node.name, "multiple graph inputs".into()));
            }
            slot_of[id] = Some(0);
            shape_of[id] = Some(input.to_vec());
            continue;
        }
        if id == 0 {
            return Err(topo(&node.name, "graph does not start at an input".into()));
        }
        let in_shapes: Vec<&[usize]> = node
            .inputs
            .iter()
            .map(|&i| {
                shape_of[i]
                    .as_deref()
                    .ok_or_else(|| topo(&node.name, format!("reads unlowered node {i}")))
            })
            .collect::<Result<_, _>>()?;
        let (op, out_shape) = lower_node(node, &in_shapes)?;

        // Liveness: acquire the output slot *before* releasing this
        // step's inputs, so a step never writes a slot it also reads
        // (the engine borrows inputs and output disjointly).
        let out_slot = pool.acquire(&out_shape);
        let inputs: Vec<usize> = node
            .inputs
            .iter()
            .map(|&i| slot_of[i].expect("lowered above"))
            .collect();
        for &i in &node.inputs {
            uses[i] -= 1;
            if uses[i] == 0 {
                pool.release(
                    shape_of[i].as_deref().expect("lowered above"),
                    slot_of[i].expect("lowered above"),
                );
            }
        }
        slot_of[id] = Some(out_slot);
        let exec = select_exec_config(&op, in_shapes[0], opts, steps.len());
        shape_of[id] = Some(out_shape);
        let precision = op.precision();
        steps.push(PlanStep {
            op,
            inputs,
            output: out_slot,
            exec,
            precision,
        });
    }

    Ok(ModelArtifact {
        name: name.to_owned(),
        input,
        slots: pool.next,
        steps,
    })
}

/// Selects the executor configuration of one lowered plan step under
/// the compile options' tuning policy. Only pattern convolutions have
/// tuning knobs; every other op carries the default config.
fn select_exec_config(
    op: &LayerPlan,
    in_shape: &[usize],
    opts: &CompileOptions,
    step_index: usize,
) -> ExecConfig {
    let LayerPlan::PatternConv {
        stride,
        pad,
        fkw,
        bias,
        ..
    } = op
    else {
        return ExecConfig::default();
    };
    let [_, h, w] = in_shape else {
        unreachable!("pattern convs lower from spatial inputs");
    };
    let geo = Conv2dGeometry::new(
        fkw.out_c, fkw.in_c, fkw.kernel, fkw.kernel, *h, *w, *stride, *pad,
    );
    // Each layer gets its own deterministic rng stream so plans are
    // reproducible regardless of how many layers precede them.
    let mut rng =
        Rng::seed_from(opts.seed ^ (step_index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    match opts.tune {
        TunePolicy::Off => ExecConfig::with_threads(opts.threads),
        TunePolicy::Estimate => tune::estimate_exec_config(&geo, fkw, opts.threads, &mut rng),
        TunePolicy::Measure { budget } => {
            tune::measure_exec_config(&geo, fkw, bias.as_deref(), budget, opts.threads, &mut rng)
        }
    }
}

/// Lowers one graph node to a plan op, returning the op plus its
/// per-item output shape given the per-item input shapes.
fn lower_node(
    node: &patdnn_compiler::graph::Node,
    in_shapes: &[&[usize]],
) -> Result<(LayerPlan, Vec<usize>), CompileError> {
    let topo = |reason: String| CompileError::UnsupportedTopology {
        node: node.name.clone(),
        reason,
    };
    let unary = || -> Result<&[usize], CompileError> {
        match in_shapes {
            [s] => Ok(s),
            _ => Err(topo(format!("expects one input, has {}", in_shapes.len()))),
        }
    };
    let spatial = |s: &[usize]| -> Result<[usize; 3], CompileError> {
        match s {
            [c, h, w] => Ok([*c, *h, *w]),
            other => Err(topo(format!("needs a spatial input, got shape {other:?}"))),
        }
    };
    let window = |kernel: usize, stride: usize, pad: usize, h: usize, w: usize| {
        if kernel == 0 || stride == 0 {
            return Err(topo(format!(
                "degenerate window (kernel {kernel}, stride {stride})"
            )));
        }
        if h + 2 * pad < kernel || w + 2 * pad < kernel {
            return Err(topo(format!(
                "{kernel}x{kernel} window does not fit {h}x{w} input with pad {pad}"
            )));
        }
        Ok(())
    };
    Ok(match &node.op {
        Op::Conv {
            stride,
            pad,
            weights,
            bias,
            fused_relu,
            ..
        } => {
            let [c, h, w] = spatial(unary()?)?;
            let wt = weights
                .as_ref()
                .ok_or_else(|| CompileError::MissingWeights(node.name.clone()))?;
            let ws = wt.shape4();
            if c != ws.c {
                return Err(topo(format!("expects {} input channels, got {c}", ws.c)));
            }
            window(ws.h.max(ws.w), *stride, *pad, h, w)?;
            let out_shape = vec![
                ws.n,
                conv_out_dim(h, ws.h, *stride, *pad),
                conv_out_dim(w, ws.w, *stride, *pad),
            ];
            let op = match derive_pruning(&node.name, wt) {
                Some((lp, set)) => {
                    let order = filter_kernel_reorder(&lp);
                    let fkw = FkwLayer::from_pruned(wt, &lp, &set, &order);
                    debug_assert_eq!(fkw.to_dense(), *wt, "FKW lowering is lossless");
                    LayerPlan::PatternConv {
                        name: node.name.clone(),
                        stride: *stride,
                        pad: *pad,
                        fkw,
                        bias: bias.clone(),
                        relu: *fused_relu,
                    }
                }
                None => LayerPlan::DenseConv {
                    name: node.name.clone(),
                    stride: *stride,
                    pad: *pad,
                    weights: wt.clone(),
                    bias: bias.clone(),
                    relu: *fused_relu,
                },
            };
            (op, out_shape)
        }
        Op::MaxPool { kernel, stride } => {
            let [c, h, w] = spatial(unary()?)?;
            window(*kernel, *stride, 0, h, w)?;
            (
                LayerPlan::MaxPool {
                    kernel: *kernel,
                    stride: *stride,
                    pad: 0,
                },
                vec![
                    c,
                    conv_out_dim(h, *kernel, *stride, 0),
                    conv_out_dim(w, *kernel, *stride, 0),
                ],
            )
        }
        Op::GlobalAvgPool => {
            let [c, _, _] = spatial(unary()?)?;
            (LayerPlan::GlobalAvgPool, vec![c, 1, 1])
        }
        Op::Flatten => {
            let features: usize = unary()?.iter().product();
            (LayerPlan::Flatten, vec![features])
        }
        Op::Relu => {
            let s = unary()?.to_vec();
            (LayerPlan::Relu, s)
        }
        Op::Fc { weights, bias, .. } => {
            let features: usize = unary()?.iter().product();
            let w = weights
                .as_ref()
                .ok_or_else(|| CompileError::MissingWeights(node.name.clone()))?;
            let (out_f, in_f) = (w.shape()[0], w.shape()[1]);
            if features != in_f {
                return Err(topo(format!(
                    "expects {in_f} input features, got {features}"
                )));
            }
            (
                LayerPlan::Fc {
                    name: node.name.clone(),
                    weights: w.clone(),
                    bias: bias.clone().unwrap_or_else(|| vec![0.0; out_f]),
                },
                vec![out_f],
            )
        }
        Op::Add { fused_relu } => {
            let [a, b] = in_shapes else {
                return Err(topo(format!(
                    "residual join expects two inputs, has {}",
                    in_shapes.len()
                )));
            };
            if a != b {
                return Err(topo(format!("join branch shapes disagree: {a:?} vs {b:?}")));
            }
            (LayerPlan::Add { relu: *fused_relu }, a.to_vec())
        }
        other => {
            return Err(CompileError::Unsupported {
                name: node.name.clone(),
                kind: other.kind().into(),
            })
        }
    })
}

/// Compiles a trained network end to end: export → graph → passes →
/// artifact. `input` is the per-item shape `[c, h, w]`.
pub fn compile_network(
    name: &str,
    net: &Sequential,
    input: [usize; 3],
) -> Result<ModelArtifact, CompileError> {
    compile_network_with(name, net, input, &CompileOptions::default())
}

/// [`compile_network`] with explicit [`CompileOptions`] (tuning policy,
/// thread schedule, tuner seed).
pub fn compile_network_with(
    name: &str,
    net: &Sequential,
    input: [usize; 3],
    opts: &CompileOptions,
) -> Result<ModelArtifact, CompileError> {
    let exports = export_network(net);
    let graph = graph_from_exports(input, &exports)?;
    compile_graph_with(name, input, &graph, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use patdnn_core::project::{alpha_for_rate, prune_layer};
    use patdnn_nn::models::small_cnn;
    use patdnn_tensor::rng::Rng;

    #[test]
    fn derive_pruning_round_trips_pruned_weights() {
        let mut rng = Rng::seed_from(1);
        let mut w = Tensor::randn(&[8, 8, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp0 = prune_layer("l", &mut w, &set, alpha_for_rate(64, 3.6));
        let (lp, local) = derive_pruning("l", &w).expect("pruned layer derives");
        assert_eq!(lp.kept_kernels(), lp0.kept_kernels());
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &local, &order);
        assert_eq!(fkw.to_dense(), w, "derived FKW is lossless");
    }

    #[test]
    fn derive_pruning_rejects_dense_3x3() {
        let mut rng = Rng::seed_from(2);
        let w = Tensor::randn(&[4, 4, 3, 3], &mut rng);
        assert!(derive_pruning("dense", &w).is_none());
    }

    #[test]
    fn derive_pruning_handles_1x1_connectivity_only() {
        let mut rng = Rng::seed_from(3);
        let mut w = Tensor::randn(&[8, 8, 1, 1], &mut rng);
        let set = PatternSet::standard(8);
        prune_layer("p", &mut w, &set, 16);
        let (lp, local) = derive_pruning("p", &w).expect("1x1 derives");
        assert_eq!(lp.kept_kernels(), 16);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &local, &order);
        assert_eq!(fkw.to_dense(), w);
    }

    #[test]
    fn unpruned_network_compiles_to_dense_plans() {
        let mut rng = Rng::seed_from(4);
        let net = small_cnn(3, 8, 4, &mut rng);
        let artifact = compile_network("cnn", &net, [3, 8, 8]).expect("compiles");
        let kinds: Vec<&str> = artifact.steps.iter().map(|s| s.op.kind()).collect();
        // Post-fusion: conv(+relu), maxpool, conv(+relu), maxpool, flatten, fc.
        assert_eq!(
            kinds,
            vec![
                "dense-conv",
                "maxpool",
                "dense-conv",
                "maxpool",
                "flatten",
                "fc"
            ]
        );
        for step in &artifact.steps {
            if let LayerPlan::DenseConv { relu, .. } = &step.op {
                assert!(*relu, "relu fused into conv");
            }
        }
    }

    #[test]
    fn residual_network_compiles_to_a_dag_plan() {
        let mut rng = Rng::seed_from(5);
        let net = patdnn_nn::models::resnet_small(4, &mut rng);
        let artifact = compile_network("res", &net, [3, 32, 32]).expect("residual compiles");
        assert!(!artifact.is_chain(), "residual plan is a DAG");
        let adds = artifact
            .steps
            .iter()
            .filter(|s| s.op.kind() == "add")
            .count();
        assert_eq!(adds, 2, "one join per residual block");
        // Both joins carry the fused post-block ReLU.
        for step in &artifact.steps {
            if let LayerPlan::Add { relu } = &step.op {
                assert!(*relu, "post-join relu fused");
            }
        }
        // The artifact survives its own codec (DAG topology intact).
        let decoded = ModelArtifact::decode(&artifact.encode()).expect("round trip");
        assert_eq!(artifact, decoded);
    }

    #[test]
    fn liveness_reuses_slots_instead_of_one_per_layer() {
        let mut rng = Rng::seed_from(6);
        let net = patdnn_nn::models::resnet_small(4, &mut rng);
        let artifact = compile_network("res", &net, [3, 32, 32]).expect("compiles");
        assert!(
            artifact.slots < artifact.steps.len(),
            "liveness analysis must reuse buffers: {} slots for {} steps",
            artifact.slots,
            artifact.steps.len()
        );
        // Some slot other than the input is written by more than one step.
        let mut writes = vec![0usize; artifact.slots];
        for s in &artifact.steps {
            writes[s.output] += 1;
        }
        assert!(writes.iter().any(|&w| w > 1), "no slot was ever reused");
    }

    #[test]
    fn out_of_range_thread_schedule_is_a_typed_compile_error() {
        let mut rng = Rng::seed_from(9);
        let net = small_cnn(3, 8, 4, &mut rng);
        for threads in [0usize, 300] {
            let err = compile_network_with(
                "bad",
                &net,
                [3, 8, 8],
                &CompileOptions {
                    threads,
                    ..CompileOptions::default()
                },
            )
            .expect_err("out-of-range threads must not compile");
            assert!(
                matches!(err, CompileError::InvalidOptions(_)),
                "threads {threads}: got {err}"
            );
        }
    }

    #[test]
    fn join_shape_mismatch_is_a_typed_topology_error() {
        use patdnn_compiler::graph::Graph;
        let mut g = Graph::with_input(&[1, 3, 8, 8]);
        let conv = g.push(
            "c",
            Op::Conv {
                out_c: 5, // disagrees with the 3-channel identity skip
                in_c: 3,
                kernel: 3,
                stride: 1,
                pad: 1,
                weights: Some(Tensor::zeros(&[5, 3, 3, 3])),
                bias: None,
                fused_relu: false,
            },
            &[0],
        );
        g.push("join", Op::Add { fused_relu: false }, &[conv, 0]);
        let err = compile_graph("bad", [3, 8, 8], &g).expect_err("must reject");
        assert!(
            matches!(err, CompileError::UnsupportedTopology { ref node, .. } if node == "join"),
            "got {err}"
        );
    }
}
