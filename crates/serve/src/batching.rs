//! The bounded request queue with dynamic batching.
//!
//! Requests enqueue individually; workers dequeue *batches*. A batch is
//! all queued requests for one model, capped at `max_batch`; if fewer
//! are waiting, the worker holds the batch open until the oldest
//! request has waited `max_wait`, then runs with whatever arrived. This
//! trades a bounded latency penalty on the first request of a batch for
//! amortized execution of the whole batch — the classic dynamic
//! batching policy (see DESIGN.md §7).
//!
//! The queue is bounded: pushes beyond `capacity` fail with
//! [`ServeError::QueueFull`] so overload surfaces as backpressure
//! instead of unbounded memory growth.

use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use patdnn_tensor::Tensor;

use crate::server::RequestResult;
use crate::ServeError;

/// Dynamic batching policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Maximum requests per executed batch.
    pub max_batch: usize,
    /// Maximum time the oldest queued request waits for batch-mates.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// One queued inference request.
pub struct PendingRequest {
    /// Registry name of the target model.
    pub model: String,
    /// Single-item input `[1, c, h, w]`.
    pub input: Tensor,
    /// When the request entered the queue (latency is measured from
    /// here, so queueing and batching delay are included).
    pub enqueued: Instant,
    /// Where to deliver the result.
    pub respond: SyncSender<RequestResult>,
}

struct QueueState {
    entries: VecDeque<PendingRequest>,
    closed: bool,
}

/// A bounded multi-producer queue whose consumers pop same-model batches.
pub struct BatchQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
}

impl BatchQueue {
    /// Creates a queue holding at most `capacity` waiting requests.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BatchQueue {
            state: Mutex::new(QueueState {
                entries: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a request, failing fast when full or closed.
    pub fn push(&self, req: PendingRequest) -> Result<(), ServeError> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(ServeError::Closed);
        }
        if state.entries.len() >= self.capacity {
            return Err(ServeError::QueueFull);
        }
        state.entries.push_back(req);
        self.cv.notify_all();
        Ok(())
    }

    /// Number of waiting requests.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").entries.len()
    }

    /// Returns `true` when no requests wait.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: pending pushes fail, poppers drain what's left
    /// and then observe `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.cv.notify_all();
    }

    /// Blocks until a batch is ready under `policy`, returning the
    /// model name and its requests in arrival order — or `None` once the
    /// queue is closed and drained.
    ///
    /// Batch formation scans every queued model in order of each
    /// model's oldest request: the first model with a *ready* batch —
    /// full, past its oldest request's `max_wait` deadline, or any
    /// model once the queue is closed — is popped. A stalled head
    /// therefore cannot block a full batch of another model queued
    /// behind it (no head-of-line blocking). When no model is ready the
    /// worker sleeps until the earliest deadline over all queued
    /// models' oldest requests, or a push wakes it.
    pub fn pop_batch(&self, policy: &BatchPolicy) -> Option<(String, Vec<PendingRequest>)> {
        assert!(policy.max_batch > 0, "max_batch must be positive");
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.entries.is_empty() {
                if state.closed {
                    return None;
                }
                state = self.cv.wait(state).expect("queue lock");
                continue;
            }
            let now = Instant::now();
            // One pass accumulating per-model state in head-arrival
            // order (each model's head is its first entry): waiting
            // count plus the head's max_wait deadline. Kept to a single
            // queue traversal so a wake under the lock stays O(entries
            // × distinct models) in string compares, never a rescan of
            // the whole queue per model.
            let mut models: Vec<(&str, usize, Instant)> = Vec::new();
            for req in &state.entries {
                match models.iter_mut().find(|(m, _, _)| *m == req.model) {
                    Some((_, waiting, _)) => *waiting += 1,
                    None => models.push((&req.model, 1, req.enqueued + policy.max_wait)),
                }
            }
            // First ready model in head order wins; otherwise sleep to
            // the earliest head deadline.
            let mut ready: Option<String> = None;
            let mut earliest_deadline: Option<Instant> = None;
            for &(model, waiting, deadline) in &models {
                if waiting >= policy.max_batch || now >= deadline || state.closed {
                    ready = Some(model.to_owned());
                    break;
                }
                earliest_deadline = Some(match earliest_deadline {
                    Some(d) if d < deadline => d,
                    _ => deadline,
                });
            }
            drop(models);
            if let Some(model) = ready {
                let batch = extract_model(&mut state.entries, &model, policy.max_batch);
                return Some((model, batch));
            }
            let deadline = earliest_deadline.expect("non-empty queue yields a deadline");
            let (next, _timeout) = self
                .cv
                .wait_timeout(state, deadline.saturating_duration_since(now))
                .expect("queue lock");
            state = next;
        }
    }
}

/// Removes up to `max` requests for `model`, preserving arrival order of
/// both the batch and the requests left behind.
fn extract_model(
    entries: &mut VecDeque<PendingRequest>,
    model: &str,
    max: usize,
) -> Vec<PendingRequest> {
    let mut batch = Vec::new();
    let mut rest = VecDeque::with_capacity(entries.len());
    for req in entries.drain(..) {
        if batch.len() < max && req.model == model {
            batch.push(req);
        } else {
            rest.push_back(req);
        }
    }
    *entries = rest;
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn req(model: &str) -> PendingRequest {
        let (tx, _rx) = sync_channel(1);
        PendingRequest {
            model: model.to_owned(),
            input: Tensor::zeros(&[1, 1, 1, 1]),
            enqueued: Instant::now(),
            respond: tx,
        }
    }

    fn policy(max_batch: usize, max_wait_ms: u64) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            max_wait: Duration::from_millis(max_wait_ms),
        }
    }

    #[test]
    fn full_batch_pops_immediately() {
        let q = BatchQueue::new(16);
        for _ in 0..4 {
            q.push(req("m")).unwrap();
        }
        let start = Instant::now();
        let (model, batch) = q.pop_batch(&policy(4, 10_000)).expect("batch");
        assert_eq!(model, "m");
        assert_eq!(batch.len(), 4);
        assert!(start.elapsed() < Duration::from_secs(1), "no deadline wait");
        assert!(q.is_empty());
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let q = BatchQueue::new(16);
        q.push(req("m")).unwrap();
        let (_, batch) = q.pop_batch(&policy(8, 20)).expect("batch");
        assert_eq!(batch.len(), 1, "partial batch after max_wait");
    }

    #[test]
    fn batches_group_by_model_preserving_order() {
        let q = BatchQueue::new(16);
        q.push(req("a")).unwrap();
        q.push(req("b")).unwrap();
        q.push(req("a")).unwrap();
        let (model, batch) = q.pop_batch(&policy(8, 0)).expect("batch");
        assert_eq!(model, "a");
        assert_eq!(batch.len(), 2);
        assert_eq!(q.len(), 1, "other model's request remains");
        let (model, batch) = q.pop_batch(&policy(8, 0)).expect("batch");
        assert_eq!(model, "b");
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let q = BatchQueue::new(2);
        q.push(req("m")).unwrap();
        q.push(req("m")).unwrap();
        assert!(matches!(q.push(req("m")), Err(ServeError::QueueFull)));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BatchQueue::new(4);
        q.push(req("m")).unwrap();
        q.close();
        assert!(matches!(q.push(req("m")), Err(ServeError::Closed)));
        let (_, batch) = q.pop_batch(&policy(8, 10_000)).expect("drain");
        assert_eq!(batch.len(), 1);
        assert!(q.pop_batch(&policy(8, 0)).is_none(), "closed and empty");
    }

    /// Head-of-line regression: a full batch for model B queued behind
    /// model A's still-waiting head must pop immediately, not after A's
    /// deadline. (The pre-fix `pop_batch` slept on A's deadline and
    /// hangs this test for its full 10s max_wait.)
    #[test]
    fn full_batch_behind_a_waiting_head_pops_immediately() {
        let q = BatchQueue::new(16);
        q.push(req("a")).unwrap();
        for _ in 0..4 {
            q.push(req("b")).unwrap();
        }
        let start = Instant::now();
        let (model, batch) = q.pop_batch(&policy(4, 10_000)).expect("batch");
        assert_eq!(model, "b", "the ready batch must overtake the waiting head");
        assert_eq!(batch.len(), 4);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "must not sleep on model a's deadline"
        );
        assert_eq!(q.len(), 1, "model a's request stays queued");
    }

    /// The sleep deadline is the minimum over queued models' heads: a
    /// later-arriving model cannot extend an earlier head's wait.
    #[test]
    fn partial_batches_flush_on_the_earliest_head_deadline() {
        let q = BatchQueue::new(16);
        q.push(req("a")).unwrap();
        q.push(req("b")).unwrap();
        let start = Instant::now();
        let (model, batch) = q.pop_batch(&policy(8, 30)).expect("batch");
        assert_eq!(model, "a", "the oldest head expires first");
        assert_eq!(batch.len(), 1);
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    /// Two workers draining interleaved models: every request is
    /// answered exactly once, routed to its own requester.
    #[test]
    fn two_workers_drain_interleaved_models_exactly_once() {
        use crate::server::InferResponse;
        use std::sync::Arc;

        let q = Arc::new(BatchQueue::new(64));
        let n = 24usize;
        let mut receivers = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = sync_channel(1);
            let model = if i % 2 == 0 { "a" } else { "b" };
            q.push(PendingRequest {
                model: model.to_owned(),
                input: Tensor::from_vec(&[1, 1, 1, 1], vec![i as f32]).expect("tagged input"),
                enqueued: Instant::now(),
                respond: tx,
            })
            .unwrap();
            receivers.push((i, rx));
        }
        q.close();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    let pol = policy(4, 0);
                    while let Some((model, batch)) = q.pop_batch(&pol) {
                        for r in batch {
                            assert_eq!(r.model, model, "batches are single-model");
                            r.respond
                                .send(Ok(InferResponse {
                                    output: r.input.clone(),
                                    latency: Duration::ZERO,
                                    batch_size: 1,
                                }))
                                .expect("requester is waiting");
                        }
                    }
                });
            }
        });
        for (i, rx) in receivers {
            let resp = rx
                .recv()
                .expect("every request gets a response")
                .expect("served");
            assert_eq!(
                resp.output.data()[0],
                i as f32,
                "response routed to its own requester"
            );
            assert!(rx.try_recv().is_err(), "exactly one response per request");
        }
        assert!(q.pop_batch(&policy(4, 0)).is_none(), "drained and closed");
    }

    #[test]
    fn max_batch_splits_oversized_backlog() {
        let q = BatchQueue::new(16);
        for _ in 0..7 {
            q.push(req("m")).unwrap();
        }
        let (_, first) = q.pop_batch(&policy(4, 0)).expect("first");
        assert_eq!(first.len(), 4);
        let (_, second) = q.pop_batch(&policy(4, 0)).expect("second");
        assert_eq!(second.len(), 3);
    }
}
