//! The bounded request queue with deadline- and priority-aware dynamic
//! batching.
//!
//! Requests enqueue individually; workers dequeue *batches*. A batch is
//! up to `max_batch` queued requests for one model; if fewer are
//! waiting, the worker holds the batch open until the model's oldest
//! request has waited `max_wait`, then runs with whatever arrived —
//! the classic dynamic batching policy (DESIGN.md §7), now scheduled
//! by request urgency (DESIGN.md §10):
//!
//! - **Priority classes.** [`Priority::Interactive`] work dispatches
//!   before [`Priority::Standard`] before [`Priority::Batch`]; within a
//!   ready model, the batch is filled in urgency order, so a full
//!   backlog of `Batch`-class requests cannot hold an `Interactive`
//!   request beyond the in-flight batch already executing.
//! - **Earliest-deadline-first.** Within one class, requests carrying a
//!   deadline run before deadline-less ones, earliest deadline first;
//!   ties break by arrival time.
//! - **Expiry before execution.** Every pop first drops queued requests
//!   whose deadline has passed (responding with
//!   [`ServeError::Expired`]) and cancelled requests (responding with
//!   [`ServeError::Cancelled`]); an expired request is *never* handed
//!   to a worker.
//! - **Bounded anti-starvation boost.** A request that has waited
//!   `boost_after` is treated as one class more urgent per elapsed
//!   `boost_after` (capped at `Interactive`), so sustained
//!   higher-priority traffic cannot starve `Batch`-class work forever.
//!
//! The queue is bounded: pushes beyond `capacity` fail with
//! [`ServeError::QueueFull`] so overload surfaces as backpressure
//! instead of unbounded memory growth, and pushes after [`BatchQueue::close`]
//! fail with the typed [`ServeError::QueueClosed`].

use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use std::sync::Arc;

use patdnn_tensor::Tensor;

use crate::metrics::ServerMetrics;
use crate::request::{AdmissionPermit, CancelToken, Priority};
use crate::server::RequestResult;
use crate::telemetry::RequestTrace;
use crate::ServeError;

/// Dynamic batching policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Maximum requests per executed batch.
    pub max_batch: usize,
    /// Maximum time a model's oldest queued request waits for
    /// batch-mates before the partial batch flushes.
    pub max_wait: Duration,
    /// Anti-starvation bound: a request waiting this long is treated
    /// as one priority class more urgent (per elapsed `boost_after`,
    /// capped at `Interactive`).
    pub boost_after: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            boost_after: Duration::from_millis(100),
        }
    }
}

/// One queued inference request.
pub struct PendingRequest {
    /// Registry name of the target model.
    pub model: String,
    /// Single-item input `[1, c, h, w]`.
    pub input: Tensor,
    /// When the request entered the queue (latency is measured from
    /// here, so queueing and batching delay are included).
    pub enqueued: Instant,
    /// Drop-dead time: past it the request must not execute.
    pub deadline: Option<Instant>,
    /// Scheduling class.
    pub priority: Priority,
    /// Best-effort cancellation flag shared with the response handle.
    pub cancel: CancelToken,
    /// Where to deliver the result.
    pub respond: SyncSender<RequestResult>,
    /// Admission budget held while in flight (released on drop along
    /// every terminal path). `None` for requests outside admission
    /// control (unit tests, direct queue users).
    pub permit: Option<AdmissionPermit>,
    /// Trace context for telemetry-sampled requests; `None` when the
    /// request is untraced (the common case under sampling, always
    /// under [`crate::TelemetryPolicy::Off`]).
    pub trace: Option<RequestTrace>,
}

/// Why a queued request was resolved without executing.
pub(crate) enum Dead {
    /// The deadline passed.
    Expired,
    /// The cancel token fired.
    Cancelled,
}

impl PendingRequest {
    /// Resolves the request if its cancel token fired or its deadline
    /// passed: the admission permit is released and the metric counted
    /// *before* the typed terminal response is sent (so a caller woken
    /// by the response observes the freed budget and the updated
    /// counter), and the request is consumed. A live request is handed
    /// back untouched. This is the single definition of the
    /// drop-without-executing policy — the queue's prune and the
    /// worker's pre-execution re-check both go through it.
    pub(crate) fn resolve_if_dead(
        mut self,
        now: Instant,
        metrics: Option<&ServerMetrics>,
    ) -> Result<PendingRequest, Dead> {
        if self.cancel.is_cancelled() {
            drop(self.permit.take());
            if let Some(m) = metrics {
                m.record_cancelled(1);
            }
            let _ = self.respond.send(Err(ServeError::Cancelled));
            return Err(Dead::Cancelled);
        }
        if let Some(d) = self.deadline.filter(|d| *d <= now) {
            drop(self.permit.take());
            if let Some(m) = metrics {
                m.record_expired(1);
            }
            let _ = self.respond.send(Err(ServeError::Expired {
                missed_by: now.saturating_duration_since(d),
            }));
            return Err(Dead::Expired);
        }
        Ok(self)
    }

    /// Scheduling key, most urgent first: boosted priority level, then
    /// deadline-bearing before deadline-less, then earliest deadline,
    /// then arrival. The boost is bounded — one level per elapsed
    /// `boost_after`, never past `Interactive`.
    fn urgency(&self, now: Instant, boost_after: Duration) -> (u8, bool, Instant, Instant) {
        let waited = now.saturating_duration_since(self.enqueued);
        let boost = if boost_after.is_zero() {
            0
        } else {
            (waited.as_nanos() / boost_after.as_nanos().max(1)) as u64
        };
        let level = (self.priority.level() as u64).saturating_sub(boost) as u8;
        match self.deadline {
            Some(d) => (level, false, d, self.enqueued),
            None => (level, true, self.enqueued, self.enqueued),
        }
    }
}

/// What one [`BatchQueue::pop_batch`] call produced: the batch to
/// execute plus counts of requests the pop pruned (their terminal
/// responses were already delivered by the queue).
pub struct PoppedBatch {
    /// Registry name the batch targets.
    pub model: String,
    /// The requests to execute, most urgent first.
    pub requests: Vec<PendingRequest>,
    /// Requests dropped because their deadline passed while queued.
    pub expired: usize,
    /// Requests dropped because their cancel token fired while queued.
    pub cancelled: usize,
}

struct QueueState {
    entries: VecDeque<PendingRequest>,
    closed: bool,
}

/// A bounded multi-producer queue whose consumers pop same-model
/// batches in urgency order.
pub struct BatchQueue {
    // lock: batch-queue
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
    /// Where prune outcomes (expired / cancelled) are counted the
    /// moment they happen — they must not wait for the next popped
    /// batch to surface.
    metrics: Option<Arc<ServerMetrics>>,
}

impl BatchQueue {
    /// Creates a queue holding at most `capacity` waiting requests.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BatchQueue {
            state: Mutex::new(QueueState {
                entries: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity,
            metrics: None,
        }
    }

    /// Like [`BatchQueue::new`], with prune outcomes recorded into
    /// `metrics` as they happen.
    pub fn with_metrics(capacity: usize, metrics: Arc<ServerMetrics>) -> Self {
        BatchQueue {
            metrics: Some(metrics),
            ..BatchQueue::new(capacity)
        }
    }

    /// Enqueues a request, failing fast when full ([`ServeError::QueueFull`])
    /// or closed ([`ServeError::QueueClosed`] — never a silent drop).
    pub fn push(&self, req: PendingRequest) -> Result<(), ServeError> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(ServeError::QueueClosed);
        }
        if state.entries.len() >= self.capacity {
            return Err(ServeError::QueueFull);
        }
        state.entries.push_back(req);
        self.sync_depth_gauge(state.entries.len());
        self.cv.notify_all();
        Ok(())
    }

    /// Publishes the queue-depth gauge. Called under the queue lock
    /// after every entry-list mutation, so the gauge never drifts from
    /// the real depth.
    fn sync_depth_gauge(&self, depth: usize) {
        if let Some(m) = &self.metrics {
            m.set_queue_depth(depth);
        }
    }

    /// Number of waiting requests.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").entries.len()
    }

    /// Returns `true` when no requests wait.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: subsequent pushes fail with
    /// [`ServeError::QueueClosed`], poppers drain what's left and then
    /// observe `None`. The close flag and the entry list share one
    /// lock, so there is no window where a push can slip in after the
    /// close and be lost.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.cv.notify_all();
    }

    /// Empties the queue immediately, returning the removed requests
    /// so the caller can fail them (used by fast shutdown).
    pub fn drain_now(&self) -> Vec<PendingRequest> {
        let mut state = self.state.lock().expect("queue lock");
        let drained = state.entries.drain(..).collect();
        self.sync_depth_gauge(0);
        self.cv.notify_all();
        drained
    }

    /// Blocks until a batch is ready under `policy`, returning it with
    /// the counts of requests pruned along the way — or `None` once the
    /// queue is closed and drained.
    ///
    /// Every wake first prunes expired and cancelled requests from the
    /// *whole* queue (delivering their terminal responses), then scans
    /// per model: a model is *ready* when it has a full batch, when its
    /// oldest request has waited `max_wait`, or whenever the queue is
    /// closed. Among ready models the one holding the most urgent
    /// request wins, and its batch is filled in urgency order. A
    /// stalled head cannot block a ready batch of another model queued
    /// behind it (no head-of-line blocking). When no model is ready the
    /// worker sleeps until the earliest of: any model's `max_wait`
    /// flush deadline, any request's expiry deadline, or a push.
    pub fn pop_batch(&self, policy: &BatchPolicy) -> Option<PoppedBatch> {
        assert!(policy.max_batch > 0, "max_batch must be positive");
        let mut state = self.state.lock().expect("queue lock");
        let mut expired = 0usize;
        let mut cancelled = 0usize;
        loop {
            let now = Instant::now();
            let (e, c) = prune(&mut state.entries, now, self.metrics.as_deref());
            if e + c > 0 {
                self.sync_depth_gauge(state.entries.len());
            }
            expired += e;
            cancelled += c;
            if state.entries.is_empty() {
                if state.closed {
                    return None;
                }
                state = self.cv.wait(state).expect("queue lock");
                continue;
            }
            // One pass accumulating per-model readiness in head-arrival
            // order: waiting count, the oldest request's flush deadline,
            // and the model's most urgent scheduling key.
            struct ModelScan<'q> {
                model: &'q str,
                waiting: usize,
                flush_at: Instant,
                best: (u8, bool, Instant, Instant),
            }
            let closed = state.closed;
            // warm-path: allow(per-wake scan list, bounded by the number of distinct queued models)
            let mut models: Vec<ModelScan> = Vec::new();
            let mut next_expiry: Option<Instant> = None;
            for req in &state.entries {
                let key = req.urgency(now, policy.boost_after);
                if let Some(d) = req.deadline {
                    next_expiry = Some(match next_expiry {
                        Some(e) if e < d => e,
                        _ => d,
                    });
                }
                match models.iter_mut().find(|m| m.model == req.model) {
                    Some(m) => {
                        m.waiting += 1;
                        m.flush_at = m.flush_at.min(req.enqueued + policy.max_wait);
                        m.best = m.best.min(key);
                    }
                    None => models.push(ModelScan {
                        model: &req.model,
                        waiting: 1,
                        flush_at: req.enqueued + policy.max_wait,
                        best: key,
                    }),
                }
            }
            // Most urgent ready model wins; otherwise sleep to the
            // earliest flush or expiry deadline.
            let mut winner: Option<(&ModelScan, (u8, bool, Instant, Instant))> = None;
            let mut earliest_wake: Option<Instant> = None;
            for m in &models {
                if m.waiting >= policy.max_batch || now >= m.flush_at || closed {
                    if winner.as_ref().is_none_or(|(_, best)| m.best < *best) {
                        winner = Some((m, m.best));
                    }
                } else {
                    earliest_wake = Some(match earliest_wake {
                        Some(w) if w < m.flush_at => w,
                        _ => m.flush_at,
                    });
                }
            }
            if let Some((m, _)) = winner {
                // warm-path: allow(one short copy per popped batch, ends the borrow of entries before extraction)
                let model = m.model.to_owned();
                drop(models);
                let requests = extract_batch(
                    &mut state.entries,
                    &model,
                    policy.max_batch,
                    now,
                    policy.boost_after,
                );
                self.sync_depth_gauge(state.entries.len());
                return Some(PoppedBatch {
                    model,
                    requests,
                    expired,
                    cancelled,
                });
            }
            drop(models);
            let wake = match (earliest_wake, next_expiry) {
                (Some(w), Some(e)) => w.min(e),
                (Some(w), None) => w,
                (None, Some(e)) => e,
                // warm-path: allow(non-empty queue always yields a wake or expiry deadline)
                (None, None) => unreachable!("non-empty queue yields a wake deadline"),
            };
            let (next, _timeout) = self
                .cv
                .wait_timeout(state, wake.saturating_duration_since(now))
                .expect("queue lock");
            state = next;
        }
    }
}

/// Drops expired and cancelled entries via
/// [`PendingRequest::resolve_if_dead`], returning `(expired,
/// cancelled)` counts. The common case — nothing to drop — is a
/// read-only scan, so a wake under the queue lock does not rebuild the
/// entry list for nothing.
fn prune(
    entries: &mut VecDeque<PendingRequest>,
    now: Instant,
    metrics: Option<&ServerMetrics>,
) -> (usize, usize) {
    let any_dead = entries
        .iter()
        .any(|r| r.cancel.is_cancelled() || r.deadline.is_some_and(|d| d <= now));
    if !any_dead {
        return (0, 0);
    }
    let (mut expired, mut cancelled) = (0, 0);
    let mut kept = VecDeque::with_capacity(entries.len());
    for req in entries.drain(..) {
        match req.resolve_if_dead(now, metrics) {
            Ok(live) => kept.push_back(live),
            Err(Dead::Expired) => expired += 1,
            Err(Dead::Cancelled) => cancelled += 1,
        }
    }
    *entries = kept;
    (expired, cancelled)
}

/// Removes up to `max` requests for `model` in urgency order (most
/// urgent first). Entries left behind keep their arrival order;
/// scheduling is timestamp-based, so queue position carries no policy
/// weight.
fn extract_batch(
    entries: &mut VecDeque<PendingRequest>,
    model: &str,
    max: usize,
    now: Instant,
    boost_after: Duration,
) -> Vec<PendingRequest> {
    let mut candidates = Vec::new();
    let mut rest = VecDeque::with_capacity(entries.len());
    for req in entries.drain(..) {
        if req.model == model {
            candidates.push(req);
        } else {
            rest.push_back(req);
        }
    }
    candidates.sort_by_key(|req| req.urgency(now, boost_after));
    let overflow = candidates.split_off(max.min(candidates.len()));
    rest.extend(overflow);
    *entries = rest;
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::{sync_channel, Receiver};

    fn req(model: &str) -> PendingRequest {
        req_with(model, Priority::Standard, None).0
    }

    fn req_with(
        model: &str,
        priority: Priority,
        deadline: Option<Instant>,
    ) -> (PendingRequest, Receiver<RequestResult>) {
        let (tx, rx) = sync_channel(1);
        (
            PendingRequest {
                model: model.to_owned(),
                input: Tensor::zeros(&[1, 1, 1, 1]),
                enqueued: Instant::now(),
                deadline,
                priority,
                cancel: CancelToken::new(),
                respond: tx,
                permit: None,
                trace: None,
            },
            rx,
        )
    }

    fn policy(max_batch: usize, max_wait_ms: u64) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            max_wait: Duration::from_millis(max_wait_ms),
            ..BatchPolicy::default()
        }
    }

    #[test]
    fn full_batch_pops_immediately() {
        let q = BatchQueue::new(16);
        for _ in 0..4 {
            q.push(req("m")).unwrap();
        }
        let start = Instant::now();
        let popped = q.pop_batch(&policy(4, 10_000)).expect("batch");
        assert_eq!(popped.model, "m");
        assert_eq!(popped.requests.len(), 4);
        assert_eq!(popped.expired + popped.cancelled, 0);
        assert!(start.elapsed() < Duration::from_secs(1), "no deadline wait");
        assert!(q.is_empty());
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let q = BatchQueue::new(16);
        q.push(req("m")).unwrap();
        let popped = q.pop_batch(&policy(8, 20)).expect("batch");
        assert_eq!(popped.requests.len(), 1, "partial batch after max_wait");
    }

    #[test]
    fn batches_group_by_model_preserving_order() {
        let q = BatchQueue::new(16);
        q.push(req("a")).unwrap();
        q.push(req("b")).unwrap();
        q.push(req("a")).unwrap();
        let popped = q.pop_batch(&policy(8, 0)).expect("batch");
        assert_eq!(popped.model, "a");
        assert_eq!(popped.requests.len(), 2);
        assert_eq!(q.len(), 1, "other model's request remains");
        let popped = q.pop_batch(&policy(8, 0)).expect("batch");
        assert_eq!(popped.model, "b");
        assert_eq!(popped.requests.len(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let q = BatchQueue::new(2);
        q.push(req("m")).unwrap();
        q.push(req("m")).unwrap();
        assert!(matches!(q.push(req("m")), Err(ServeError::QueueFull)));
    }

    /// Pushing after close fails with the typed `QueueClosed` (never a
    /// silent drop), and the closed queue still drains what it holds.
    #[test]
    fn close_drains_then_ends_and_pushes_fail_typed() {
        let q = BatchQueue::new(4);
        q.push(req("m")).unwrap();
        q.close();
        assert!(matches!(q.push(req("m")), Err(ServeError::QueueClosed)));
        let popped = q.pop_batch(&policy(8, 10_000)).expect("drain");
        assert_eq!(popped.requests.len(), 1);
        assert!(q.pop_batch(&policy(8, 0)).is_none(), "closed and empty");
        // The closed-queue window stays typed: still QueueClosed, and
        // nothing was silently enqueued.
        assert!(matches!(q.push(req("m")), Err(ServeError::QueueClosed)));
        assert!(q.is_empty());
    }

    /// Head-of-line regression: a full batch for model B queued behind
    /// model A's still-waiting head must pop immediately, not after A's
    /// deadline.
    #[test]
    fn full_batch_behind_a_waiting_head_pops_immediately() {
        let q = BatchQueue::new(16);
        q.push(req("a")).unwrap();
        for _ in 0..4 {
            q.push(req("b")).unwrap();
        }
        let start = Instant::now();
        let popped = q.pop_batch(&policy(4, 10_000)).expect("batch");
        assert_eq!(
            popped.model, "b",
            "the ready batch must overtake the waiting head"
        );
        assert_eq!(popped.requests.len(), 4);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "must not sleep on model a's deadline"
        );
        assert_eq!(q.len(), 1, "model a's request stays queued");
    }

    /// The sleep deadline is the minimum over queued models' heads: a
    /// later-arriving model cannot extend an earlier head's wait.
    #[test]
    fn partial_batches_flush_on_the_earliest_head_deadline() {
        let q = BatchQueue::new(16);
        q.push(req("a")).unwrap();
        q.push(req("b")).unwrap();
        let start = Instant::now();
        let popped = q.pop_batch(&policy(8, 30)).expect("batch");
        assert_eq!(popped.model, "a", "the oldest head expires first");
        assert_eq!(popped.requests.len(), 1);
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    /// Two workers draining interleaved models: every request is
    /// answered exactly once, routed to its own requester.
    #[test]
    fn two_workers_drain_interleaved_models_exactly_once() {
        use crate::server::InferResponse;
        use std::sync::Arc;

        let q = Arc::new(BatchQueue::new(64));
        let n = 24usize;
        let mut receivers = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = sync_channel(1);
            let model = if i % 2 == 0 { "a" } else { "b" };
            q.push(PendingRequest {
                model: model.to_owned(),
                input: Tensor::from_vec(&[1, 1, 1, 1], vec![i as f32]).expect("tagged input"),
                enqueued: Instant::now(),
                deadline: None,
                priority: Priority::Standard,
                cancel: CancelToken::new(),
                respond: tx,
                permit: None,
                trace: None,
            })
            .unwrap();
            receivers.push((i, rx));
        }
        q.close();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    let pol = policy(4, 0);
                    while let Some(popped) = q.pop_batch(&pol) {
                        for r in popped.requests {
                            assert_eq!(r.model, popped.model, "batches are single-model");
                            r.respond
                                .send(Ok(InferResponse {
                                    output: r.input.clone(),
                                    latency: Duration::ZERO,
                                    batch_size: 1,
                                }))
                                .expect("requester is waiting");
                        }
                    }
                });
            }
        });
        for (i, rx) in receivers {
            let resp = rx
                .recv()
                .expect("every request gets a response")
                .expect("served");
            assert_eq!(
                resp.output.data()[0],
                i as f32,
                "response routed to its own requester"
            );
            assert!(rx.try_recv().is_err(), "exactly one response per request");
        }
        assert!(q.pop_batch(&policy(4, 0)).is_none(), "drained and closed");
    }

    #[test]
    fn max_batch_splits_oversized_backlog() {
        let q = BatchQueue::new(16);
        for _ in 0..7 {
            q.push(req("m")).unwrap();
        }
        let first = q.pop_batch(&policy(4, 0)).expect("first");
        assert_eq!(first.requests.len(), 4);
        let second = q.pop_batch(&policy(4, 0)).expect("second");
        assert_eq!(second.requests.len(), 3);
    }

    /// An interactive request never waits behind a full batch-class
    /// backlog of its own model: the batch is filled in urgency order,
    /// so it rides in the very next pop.
    #[test]
    fn interactive_request_jumps_a_full_batch_class_backlog() {
        let q = BatchQueue::new(16);
        let mut batch_rx = Vec::new();
        for _ in 0..6 {
            let (r, rx) = req_with("m", Priority::Batch, None);
            q.push(r).unwrap();
            batch_rx.push(rx);
        }
        let (interactive, _rx) = req_with("m", Priority::Interactive, None);
        q.push(interactive).unwrap();
        let popped = q.pop_batch(&policy(4, 0)).expect("batch");
        assert_eq!(popped.requests.len(), 4);
        assert_eq!(
            popped.requests[0].priority,
            Priority::Interactive,
            "the interactive request leads the very next batch"
        );
        assert_eq!(q.len(), 3, "batch-class overflow stays queued");
    }

    /// Within a priority class, deadline-bearing requests pop earliest
    /// deadline first, ahead of deadline-less peers.
    #[test]
    fn edf_orders_within_a_priority_class() {
        let q = BatchQueue::new(16);
        let now = Instant::now();
        let (late, _rx_l) = req_with("m", Priority::Standard, Some(now + Duration::from_secs(60)));
        let (none, _rx_n) = req_with("m", Priority::Standard, None);
        let (soon, _rx_s) = req_with("m", Priority::Standard, Some(now + Duration::from_secs(5)));
        q.push(late).unwrap();
        q.push(none).unwrap();
        q.push(soon).unwrap();
        let popped = q.pop_batch(&policy(8, 0)).expect("batch");
        let deadlines: Vec<Option<Instant>> = popped.requests.iter().map(|r| r.deadline).collect();
        assert_eq!(
            deadlines,
            vec![
                Some(now + Duration::from_secs(5)),
                Some(now + Duration::from_secs(60)),
                None
            ],
            "EDF first, deadline-less last"
        );
    }

    /// Expired requests are dropped (and answered) before a batch
    /// forms; they are never handed to a worker.
    #[test]
    fn expired_requests_are_dropped_before_execution() {
        let q = BatchQueue::new(16);
        let (dead, dead_rx) = req_with(
            "m",
            Priority::Standard,
            Some(Instant::now() - Duration::from_millis(5)),
        );
        let (live, _live_rx) = req_with("m", Priority::Standard, None);
        q.push(dead).unwrap();
        q.push(live).unwrap();
        let popped = q.pop_batch(&policy(8, 0)).expect("batch");
        assert_eq!(popped.expired, 1, "the expired request was pruned");
        assert_eq!(popped.requests.len(), 1, "only the live request executes");
        assert!(popped.requests[0].deadline.is_none());
        let outcome = dead_rx.recv().expect("expired response delivered");
        assert!(matches!(outcome, Err(ServeError::Expired { .. })));
    }

    /// Cancelled requests are likewise pruned with a typed response.
    #[test]
    fn cancelled_requests_are_dropped_before_execution() {
        let q = BatchQueue::new(16);
        let (victim, victim_rx) = req_with("m", Priority::Standard, None);
        let token = victim.cancel.clone();
        let (live, _live_rx) = req_with("m", Priority::Standard, None);
        q.push(victim).unwrap();
        q.push(live).unwrap();
        token.cancel();
        let popped = q.pop_batch(&policy(8, 0)).expect("batch");
        assert_eq!(popped.cancelled, 1);
        assert_eq!(popped.requests.len(), 1);
        assert!(matches!(
            victim_rx.recv().expect("cancel response delivered"),
            Err(ServeError::Cancelled)
        ));
    }

    /// A sleeping pop wakes on a queued request's expiry deadline and
    /// prunes it promptly rather than sleeping out the full max_wait.
    #[test]
    fn sleep_wakes_on_the_earliest_expiry_deadline() {
        let q = BatchQueue::new(16);
        let (doomed, doomed_rx) = req_with(
            "m",
            Priority::Standard,
            Some(Instant::now() + Duration::from_millis(20)),
        );
        q.push(doomed).unwrap();
        let start = Instant::now();
        // max_wait is far away; the expiry at +20ms must bound the
        // sleep. After pruning the queue is empty and closed-less pops
        // would block, so close it from a helper thread.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(60));
                q.close();
            });
            assert!(
                q.pop_batch(&policy(8, 10_000)).is_none(),
                "expired request pruned; queue drains to close"
            );
        });
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "woke on expiry, not max_wait"
        );
        assert!(matches!(
            doomed_rx.recv().expect("expiry delivered"),
            Err(ServeError::Expired { .. })
        ));
    }

    /// The anti-starvation boost: an old batch-class request overtakes
    /// a fresh interactive one once it has waited past `boost_after`
    /// levels, and the boost is bounded at the interactive level.
    #[test]
    fn aged_batch_class_work_is_boosted_but_bounded() {
        let q = BatchQueue::new(16);
        let old_enqueue = Instant::now() - Duration::from_millis(50);
        let (mut aged, _rx_a) = req_with("m", Priority::Batch, None);
        aged.enqueued = old_enqueue;
        let (fresh, _rx_f) = req_with("m", Priority::Interactive, None);
        q.push(fresh).unwrap();
        q.push(aged).unwrap();
        let pol = BatchPolicy {
            max_batch: 1,
            max_wait: Duration::ZERO,
            boost_after: Duration::from_millis(10),
        };
        // 50ms waited / 10ms boost_after = 5 levels: batch (2) boosts to
        // interactive (0), never beyond — so the *older* request wins
        // only via its arrival-time tie-break at the same level.
        let popped = q.pop_batch(&pol).expect("batch");
        assert_eq!(popped.requests.len(), 1);
        assert_eq!(
            popped.requests[0].priority,
            Priority::Batch,
            "aged batch-class work reaches the front via the bounded boost"
        );
    }

    #[test]
    fn drain_now_empties_the_queue() {
        let q = BatchQueue::new(16);
        for _ in 0..5 {
            q.push(req("m")).unwrap();
        }
        let drained = q.drain_now();
        assert_eq!(drained.len(), 5);
        assert!(q.is_empty());
    }

    /// Satellite regression: the queue-depth gauge tracks every
    /// mutation — push, pop, prune — and returns to zero after drain.
    #[test]
    fn queue_depth_gauge_tracks_mutations_and_returns_to_zero() {
        let metrics = Arc::new(ServerMetrics::new());
        let q = BatchQueue::with_metrics(16, Arc::clone(&metrics));
        for _ in 0..3 {
            q.push(req("m")).unwrap();
        }
        assert_eq!(metrics.snapshot().queue_depth, 3, "pushes raise the gauge");
        let popped = q.pop_batch(&policy(2, 0)).expect("batch");
        assert_eq!(popped.requests.len(), 2);
        assert_eq!(metrics.snapshot().queue_depth, 1, "pop lowers the gauge");
        // An expired request pruned on the next pop also updates it.
        let (dead, _dead_rx) = req_with(
            "m",
            Priority::Standard,
            Some(Instant::now() - Duration::from_millis(1)),
        );
        q.push(dead).unwrap();
        assert_eq!(metrics.snapshot().queue_depth, 2);
        let popped = q.pop_batch(&policy(8, 0)).expect("batch");
        assert_eq!(popped.expired, 1);
        assert_eq!(
            metrics.snapshot().queue_depth,
            0,
            "gauge returns to zero once the queue drains"
        );
        // drain_now likewise zeroes it.
        q.push(req("m")).unwrap();
        assert_eq!(metrics.snapshot().queue_depth, 1);
        q.drain_now();
        assert_eq!(metrics.snapshot().queue_depth, 0);
    }
}
