//! The INT8 quantization pass: `f32` plan → mixed-precision plan.
//!
//! [`quantize_artifact`] rewrites a compiled [`ModelArtifact`] step by
//! step: every pattern convolution and fully-connected layer whose
//! input range was observed during calibration becomes an INT8 step
//! (symmetric per-filter weight scales computed from the artifact's own
//! exported weights, activation scale from the
//! [`patdnn_nn::calibrate`] profile), stamped [`crate::artifact::Precision::Int8`] in
//! the v4 artifact. Everything else — pooling, joins, flatten, and
//! dense convolutions (which only appear for unpruned layers) — stays
//! `f32`. Activations remain `f32` between steps; each INT8 step
//! quantizes its input on entry with its persisted scale, so the plan
//! is freely mixed-precision and pre-quantization engines can still
//! run the same topology.
//!
//! Calibration happens at the `nn` level, before the serving compiler's
//! graph passes. That is sound because every pass is value-preserving
//! (BN folding and ReLU fusion change *who computes* a value, not the
//! value itself), so a surviving conv or FC step reads exactly the
//! activations its exported layer read — the profile's per-name input
//! ranges transfer to plan steps unchanged.
//!
//! By default the classifier head stays `f32` (the usual last-layer
//! exception): a small FC contributes a negligible share of the MACs,
//! so quantizing it buys no latency while its rounding error lands
//! directly on the logits with no averaging downstream to absorb it.
//! [`QuantOptions::fc`] opts it in for models whose FC layers are big
//! enough to matter.

use std::fmt;

use patdnn_compiler::quant::{quantize_slice, scale_for, QuantFkwLayer};
use patdnn_nn::calibrate::{calibrate_network, ActivationProfile, CalibrationError};
use patdnn_nn::network::Sequential;
use patdnn_tensor::Tensor;

use patdnn_compiler::tune::space::ConvAlgo;

use crate::artifact::{LayerPlan, ModelArtifact, PlanStep, Precision};
use crate::compile::{compile_network_with, CompileOptions};
use crate::ServeError;

/// Errors produced by the quantization pass.
#[derive(Debug)]
pub enum QuantError {
    /// A quantizable step has no activation record in the profile, so
    /// its input scale cannot be derived.
    MissingCalibration {
        /// The step (layer) name.
        step: String,
    },
    /// The calibration run itself failed.
    Calibration(CalibrationError),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::MissingCalibration { step } => {
                write!(f, "step {step:?} has no calibration record")
            }
            QuantError::Calibration(e) => write!(f, "calibration failed: {e}"),
        }
    }
}

impl std::error::Error for QuantError {}

impl From<CalibrationError> for QuantError {
    fn from(e: CalibrationError) -> Self {
        QuantError::Calibration(e)
    }
}

/// Which step kinds the quantization pass converts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantOptions {
    /// Quantize fully-connected layers too. Off by default — the
    /// classifier head is the paper-stack's only FC, it is a negligible
    /// share of the MACs, and last-layer rounding error hits the logits
    /// undamped.
    pub fc: bool,
}

/// Quantizes a compiled plan using calibrated activation ranges, with
/// the default policy (pattern convs INT8, FC head `f32`).
pub fn quantize_artifact(
    artifact: &ModelArtifact,
    profile: &ActivationProfile,
) -> Result<ModelArtifact, QuantError> {
    quantize_artifact_with(artifact, profile, &QuantOptions::default())
}

/// Quantizes a compiled plan using calibrated activation ranges.
///
/// Pattern-conv steps (and FC steps, under [`QuantOptions::fc`]) become
/// INT8; other steps pass through untouched (their `exec` configs
/// included). Fails with a typed error if a quantizable step's layer
/// name is missing from the profile — a silently-unquantized layer
/// would misreport the plan's precision.
pub fn quantize_artifact_with(
    artifact: &ModelArtifact,
    profile: &ActivationProfile,
    opts: &QuantOptions,
) -> Result<ModelArtifact, QuantError> {
    let mut steps = Vec::with_capacity(artifact.steps.len());
    for step in &artifact.steps {
        let op = match &step.op {
            LayerPlan::PatternConv {
                name,
                stride,
                pad,
                fkw,
                bias,
                relu,
            } => {
                let act = profile
                    .input_of(name)
                    .ok_or_else(|| QuantError::MissingCalibration { step: name.clone() })?;
                LayerPlan::QuantPatternConv {
                    name: name.clone(),
                    stride: *stride,
                    pad: *pad,
                    qfkw: QuantFkwLayer::from_fkw(fkw, act),
                    bias: bias.clone(),
                    relu: *relu,
                }
            }
            LayerPlan::Fc {
                name,
                weights,
                bias,
            } if opts.fc => {
                let act = profile
                    .input_of(name)
                    .ok_or_else(|| QuantError::MissingCalibration { step: name.clone() })?;
                let (out_f, in_f) = (weights.shape()[0], weights.shape()[1]);
                // Per-output-row symmetric scales, mirroring the conv
                // path's per-filter treatment.
                let mut scales = Vec::with_capacity(out_f);
                let mut qweights = Vec::with_capacity(out_f * in_f);
                for row in weights.data().chunks_exact(in_f) {
                    let s = scale_for(patdnn_compiler::quant::max_abs(row));
                    scales.push(s);
                    qweights.extend(quantize_slice(row, s));
                }
                LayerPlan::QuantFc {
                    name: name.clone(),
                    out_f,
                    in_f,
                    qweights,
                    scales,
                    act_scale: scale_for(act),
                    bias: bias.clone(),
                }
            }
            other => other.clone(),
        };
        let precision = op.precision();
        // Algorithm choice is an f32-only knob: a step the tuner lowered
        // through im2col or Winograd runs the direct INT8 executor once
        // quantized (the densified lowerings have no i8 path).
        let mut exec = step.exec;
        if precision == Precision::Int8 {
            exec.algo = ConvAlgo::Direct;
        }
        steps.push(PlanStep {
            op,
            inputs: step.inputs.clone(),
            output: step.output,
            exec,
            precision,
        });
    }
    Ok(ModelArtifact {
        name: artifact.name.clone(),
        input: artifact.input,
        slots: artifact.slots,
        steps,
    })
}

/// Compiles a network straight to an INT8 plan: compile under `opts`,
/// calibrate activation ranges on `calib`, quantize.
///
/// `calib` is the sample batch (NCHW, matching `input`); a handful of
/// representative items is enough for the symmetric max-abs scheme.
pub fn compile_network_int8(
    name: &str,
    net: &Sequential,
    input: [usize; 3],
    opts: &CompileOptions,
    calib: &Tensor,
) -> Result<ModelArtifact, ServeError> {
    let artifact = compile_network_with(name, net, input, opts).map_err(ServeError::Compile)?;
    let profile =
        calibrate_network(net, calib).map_err(|e| ServeError::Quant(QuantError::Calibration(e)))?;
    quantize_artifact(&artifact, &profile).map_err(ServeError::Quant)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineOptions};
    use crate::Precision;
    use patdnn_core::prune::pattern_project_network;
    use patdnn_nn::calibrate::calibration_batch;
    use patdnn_nn::models::{resnet_small, vgg_small};
    use patdnn_tensor::rng::Rng;

    fn pruned(name: &str, seed: u64) -> Sequential {
        let mut rng = Rng::seed_from(seed);
        let mut net = match name {
            "vgg_small" => vgg_small(10, &mut rng),
            _ => resnet_small(10, &mut rng),
        };
        pattern_project_network(&mut net, 8, 3.6);
        net
    }

    #[test]
    fn quantize_pass_converts_pattern_convs_and_keeps_the_head_f32() {
        let net = pruned("resnet_small", 61);
        let calib = calibration_batch([3, 32, 32], 4, 62);
        let artifact =
            compile_network_int8("q", &net, [3, 32, 32], &CompileOptions::default(), &calib)
                .expect("quantized compile");
        let kinds: Vec<&str> = artifact.steps.iter().map(|s| s.op.kind()).collect();
        assert!(kinds.contains(&"pattern-conv-i8"), "convs quantized");
        assert!(!kinds.contains(&"pattern-conv"), "no f32 convs remain");
        assert!(kinds.contains(&"fc"), "classifier head stays f32");
        for step in &artifact.steps {
            assert_eq!(step.precision, step.op.precision());
        }
        // Pooling/joins stay f32.
        assert!(artifact.steps.iter().any(|s| s.precision == Precision::F32));
    }

    #[test]
    fn fc_quantization_is_opt_in_and_stays_accurate() {
        let net = pruned("resnet_small", 61);
        let calib = calibration_batch([3, 32, 32], 4, 62);
        let f32_plan = crate::compile::compile_network("q", &net, [3, 32, 32]).expect("compile");
        let profile = patdnn_nn::calibrate::calibrate_network(&net, &calib).expect("calibrates");
        let artifact = quantize_artifact_with(&f32_plan, &profile, &QuantOptions { fc: true })
            .expect("quantize");
        assert!(
            artifact.steps.iter().any(|s| s.op.kind() == "fc-i8"),
            "fc quantized under the opt-in"
        );
        let f32_engine = Engine::new(f32_plan, EngineOptions::default()).expect("engine");
        let int8_engine = Engine::new(artifact, EngineOptions::default()).expect("engine");
        let a = f32_engine.infer(&calib).expect("infer");
        let b = int8_engine.infer(&calib).expect("infer");
        let dev = a.max_abs_diff(&b).expect("same shape");
        // The fully-quantized plan (classifier head included) is held to
        // a looser bound: last-layer rounding lands on the logits.
        assert!(dev <= 5e-2, "fully-quantized deviation too large: {dev}");
    }

    #[test]
    fn quantized_engine_tracks_the_f32_engine_within_tolerance() {
        let net = pruned("resnet_small", 63);
        let calib = calibration_batch([3, 32, 32], 4, 64);
        let f32_plan = crate::compile::compile_network("q", &net, [3, 32, 32]).expect("compile");
        let int8_plan =
            compile_network_int8("q", &net, [3, 32, 32], &CompileOptions::default(), &calib)
                .expect("quantized compile");
        // Storage shrinks: the weight payload drops 4x, diluted by the
        // FKW index arrays both precisions share.
        assert!(int8_plan.weight_bytes() < f32_plan.weight_bytes() * 2 / 3);
        let f32_engine = Engine::new(f32_plan, EngineOptions::default()).expect("engine");
        let int8_engine = Engine::new(int8_plan, EngineOptions::default()).expect("engine");
        let a = f32_engine.infer(&calib).expect("f32 infer");
        let b = int8_engine.infer(&calib).expect("int8 infer");
        let dev = a.max_abs_diff(&b).expect("same shape");
        assert!(
            dev <= 1e-2,
            "int8 deviates {dev} from f32 on the calibration batch"
        );
    }

    #[test]
    fn quantized_artifact_survives_its_codec_and_serves() {
        let net = pruned("vgg_small", 65);
        let calib = calibration_batch([3, 32, 32], 3, 66);
        let artifact =
            compile_network_int8("q", &net, [3, 32, 32], &CompileOptions::default(), &calib)
                .expect("quantized compile");
        let reloaded = ModelArtifact::decode(&artifact.encode()).expect("v4 round trip");
        assert_eq!(artifact, reloaded);
        let a = Engine::new(artifact, EngineOptions::default()).expect("engine");
        let b = Engine::new(reloaded, EngineOptions::default()).expect("engine");
        let out_a = a.infer(&calib).expect("infer");
        let out_b = b.infer(&calib).expect("infer");
        assert_eq!(
            out_a.data(),
            out_b.data(),
            "reloaded quantized plan infers bit-identically"
        );
    }

    #[test]
    fn missing_calibration_record_is_a_typed_error() {
        let net = pruned("vgg_small", 67);
        let artifact = crate::compile::compile_network("q", &net, [3, 32, 32]).expect("compile");
        let empty = ActivationProfile::default();
        assert!(matches!(
            quantize_artifact(&artifact, &empty),
            Err(QuantError::MissingCalibration { .. })
        ));
    }
}
