//! `patdnn-router` — the shard router front-end.
//!
//! Shards a fleet of `patdnn-serve --listen` replica processes by
//! model name (consistent hashing over virtual nodes) and speaks the
//! same versioned wire protocol to clients, so a router is
//! indistinguishable from a single replica. Per replica the router
//! enforces an in-flight budget (reusing the serving-tier
//! [`patdnn_serve::AdmissionPolicy`]), retries shed requests on the
//! next replica in the model's preference order, and ejects replicas
//! after consecutive transport failures (readmitting them after a
//! cooldown probe). `/metrics` and `/healthz` answer over HTTP on the
//! same port. See [`patdnn_serve::router`] and DESIGN.md §14.
//!
//! ```text
//! patdnn-router --listen ADDR --replica ADDR [--replica ADDR ...]
//!               [--vnodes N] [--max-in-flight N] [--eject-after N]
//!               [--cooldown-ms N]
//! ```
//!
//! The process runs until a peer sends the shutdown frame on the
//! router port, then exits 0. Replicas are *not* shut down with it —
//! drain them via their own ports.

use std::time::Duration;

use patdnn_serve::router::{Router, RouterConfig, RouterServer};
use patdnn_serve::AdmissionPolicy;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: patdnn-router --listen ADDR --replica ADDR [--replica ADDR ...] \
         [--vnodes N] [--max-in-flight N] [--eject-after N] [--cooldown-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut listen: Option<String> = None;
    let mut cfg = RouterConfig::default();
    let mut max_in_flight = cfg.replica_policy.max_in_flight;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> usize {
            argv.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(&format!("{} needs a number", argv[i])))
        };
        let need_str = |i: usize, what: &str| -> String {
            argv.get(i + 1)
                .cloned()
                .unwrap_or_else(|| die(&format!("{} needs {what}", argv[i])))
        };
        match argv[i].as_str() {
            "--listen" => listen = Some(need_str(i, "an address (host:port)")),
            "--replica" => cfg.replicas.push(need_str(i, "a replica address")),
            "--vnodes" => cfg.vnodes = need(i),
            "--max-in-flight" => max_in_flight = need(i),
            "--eject-after" => cfg.eject_after = need(i) as u32,
            "--cooldown-ms" => cfg.cooldown = Duration::from_millis(need(i) as u64),
            other => die(&format!("unknown flag {other}")),
        }
        i += 2;
    }
    let listen = listen.unwrap_or_else(|| die("--listen is required"));
    if cfg.replicas.is_empty() {
        die("at least one --replica is required");
    }
    if cfg.vnodes == 0 || cfg.eject_after == 0 || max_in_flight == 0 {
        die("--vnodes, --eject-after, and --max-in-flight must be at least 1");
    }
    cfg.replica_policy = AdmissionPolicy {
        max_in_flight,
        max_per_model: max_in_flight,
    };

    let replicas = cfg.replicas.clone();
    let server = match RouterServer::bind(Router::new(cfg), &listen) {
        Ok(s) => s,
        Err(e) => die(&format!("bind {listen} failed: {e}")),
    };
    // The harness parses this line to learn the bound port.
    println!("routing on {}", server.local_addr());
    println!(
        "sharding {} replica(s): {}",
        replicas.len(),
        replicas.join(", ")
    );
    match server.serve() {
        Ok(()) => {
            println!("router shut down cleanly");
            std::process::exit(0);
        }
        Err(e) => die(&format!("serve failed: {e}")),
    }
}
