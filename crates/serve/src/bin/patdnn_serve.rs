//! `patdnn-serve` — end-to-end serving demo.
//!
//! Builds a network (a VGG-style chain or a ResNet-style residual DAG),
//! pattern-prunes it, compiles it to a model artifact — optionally with
//! the per-layer auto-tuner selecting each step's execution config
//! (`--tune estimate` for the deterministic estimator path, `--tune
//! measure` for GA exploration over real timed runs) — saves and
//! reloads the artifact, dumps the tuned plan, verifies the compiled
//! engine against the original network, then serves a synthetic traffic
//! workload through the dynamic-batching server and reports latency
//! percentiles and throughput.
//!
//! With `--precision int8` the compiled plan is additionally quantized:
//! activation ranges are calibrated on a small sample batch
//! ([`patdnn_nn::calibrate`]), every pattern conv and the FC head get
//! symmetric per-filter INT8 weights, and the v4 artifact persists the
//! per-step precision so the reloaded engine serves quantized with no
//! recalibration.
//!
//! Traffic is submitted through the request-lifecycle API
//! ([`patdnn_serve::request`]): `--priority` picks the scheduling
//! class and `--deadline-ms` attaches a per-request deadline — expired
//! requests are dropped *before* execution and reported, never served
//! late. The final report breaks latency out per priority class and
//! counts every terminal state (completed / expired / shed / rejected).
//!
//! With `--telemetry full` (or `sampled:N`) the server records
//! request-scoped trace spans and per-layer execution profiles
//! ([`patdnn_serve::telemetry`]); the report then includes a
//! per-stage latency breakdown and the hottest layers. `--trace-out
//! FILE` additionally dumps every span as Chrome-trace JSON (open in
//! `chrome://tracing` or Perfetto) and implies `--telemetry full`
//! unless a policy was given explicitly.
//!
//! ```text
//! patdnn-serve [--model vgg_small|resnet_small] [--requests N]
//!              [--clients N] [--workers N] [--max-batch N]
//!              [--max-wait-ms N] [--threads N]
//!              [--tune off|estimate|measure] [--budget N]
//!              [--precision f32|int8]
//!              [--priority interactive|standard|batch] [--deadline-ms N]
//!              [--telemetry off|full|sampled:N] [--trace-out FILE]
//!              [--artifact-out FILE]
//! patdnn-serve --listen ADDR [--model ...] [--workers N] [--max-batch N]
//!              [--max-wait-ms N] [--threads N] [--precision f32|int8]
//!              [--max-in-flight N] [--queue-capacity N]
//! patdnn-serve --verify-only FILE
//! ```
//!
//! `--listen ADDR` replaces the synthetic-traffic demo with a network
//! front-end: the compiled model is registered and served over the
//! versioned binary wire protocol ([`patdnn_serve::wire`]) on `ADDR`,
//! with `/metrics` and `/healthz` answered over HTTP on the same port
//! (see [`patdnn_serve::net`]). `--model small_cnn` is also accepted
//! here (a tiny 3x8x8 model, used by the router smoke harness). The
//! process runs until a peer sends the shutdown frame, drains, and
//! exits 0.
//!
//! `--verify-only FILE` is a standalone lint mode: it decodes the
//! artifact (wire-format checks only), runs the plan verifier
//! ([`patdnn_serve::verify`]) over it, prints the full
//! [`patdnn_serve::VerifyReport`], and exits 0 if the plan holds every
//! invariant, 1 if violations were found, 2 if the file does not even
//! decode — without ever building an engine or loading weights into
//! executors. `--artifact-out FILE` makes the demo leave its compiled
//! artifact on disk (instead of a deleted temp file) so it can be fed
//! to `--verify-only` or shipped.

use std::sync::Arc;
use std::time::{Duration, Instant};

use patdnn_core::prune::pattern_project_network;
use patdnn_nn::calibrate::{calibrate_network, calibration_batch};
use patdnn_nn::layer::{Layer, Mode};
use patdnn_nn::models::{resnet_small, vgg_small};
use patdnn_nn::network::Sequential;
use patdnn_serve::batching::BatchPolicy;
use patdnn_serve::compile::{compile_network_with, CompileOptions};
use patdnn_serve::engine::{Engine, EngineOptions};
use patdnn_serve::quant::quantize_artifact;
use patdnn_serve::registry::ModelRegistry;
use patdnn_serve::server::{Server, ServerConfig};
use patdnn_serve::{
    ModelArtifact, Precision, Priority, ServeError, TelemetryPolicy, Terminal, TunePolicy,
};
use patdnn_tensor::rng::Rng;
use patdnn_tensor::Tensor;

struct Args {
    model: String,
    requests: usize,
    clients: usize,
    workers: usize,
    max_batch: usize,
    max_wait_ms: u64,
    threads: usize,
    tune: TunePolicy,
    budget: usize,
    precision: Precision,
    priority: Priority,
    /// Per-request deadline in milliseconds; 0 disables deadlines.
    deadline_ms: u64,
    telemetry: TelemetryPolicy,
    /// Chrome-trace JSON output path; implies full telemetry when no
    /// policy was given explicitly.
    trace_out: Option<std::path::PathBuf>,
    /// Keep the compiled artifact at this path instead of a temp file.
    artifact_out: Option<std::path::PathBuf>,
    /// Serve over TCP on this address instead of running the demo.
    listen: Option<String>,
    /// Admission budget (global in-flight cap) in listen mode.
    max_in_flight: usize,
    /// Bounded request-queue capacity in listen mode.
    queue_capacity: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        model: "vgg_small".into(),
        requests: 200,
        clients: 4,
        workers: 2,
        max_batch: 8,
        max_wait_ms: 2,
        threads: 1,
        tune: TunePolicy::Off,
        budget: 24,
        precision: Precision::F32,
        priority: Priority::Standard,
        deadline_ms: 0,
        telemetry: TelemetryPolicy::Off,
        trace_out: None,
        artifact_out: None,
        listen: None,
        max_in_flight: 512,
        queue_capacity: 1024,
    };
    let mut telemetry_explicit = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> usize {
            argv.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(&format!("{} needs a number", argv[i])))
        };
        match argv[i].as_str() {
            "--model" => {
                args.model = argv
                    .get(i + 1)
                    .cloned()
                    .unwrap_or_else(|| die("--model needs a name"));
            }
            "--requests" => args.requests = need(i),
            "--clients" => args.clients = need(i),
            "--workers" => args.workers = need(i),
            "--max-batch" => args.max_batch = need(i),
            "--max-wait-ms" => args.max_wait_ms = need(i) as u64,
            "--threads" => args.threads = need(i),
            "--budget" => args.budget = need(i),
            "--tune" => {
                args.tune = match argv.get(i + 1).map(String::as_str) {
                    Some("off") => TunePolicy::Off,
                    Some("estimate") => TunePolicy::Estimate,
                    Some("measure") => TunePolicy::Measure { budget: 0 },
                    other => die(&format!(
                        "--tune expects off|estimate|measure, got {other:?}"
                    )),
                };
            }
            "--precision" => {
                args.precision = match argv.get(i + 1).map(String::as_str) {
                    Some("f32") => Precision::F32,
                    Some("int8") => Precision::Int8,
                    other => die(&format!("--precision expects f32|int8, got {other:?}")),
                };
            }
            "--priority" => {
                args.priority = match argv.get(i + 1).map(String::as_str) {
                    Some("interactive") => Priority::Interactive,
                    Some("standard") => Priority::Standard,
                    Some("batch") => Priority::Batch,
                    other => die(&format!(
                        "--priority expects interactive|standard|batch, got {other:?}"
                    )),
                };
            }
            "--deadline-ms" => args.deadline_ms = need(i) as u64,
            "--telemetry" => {
                args.telemetry = match argv.get(i + 1).map(String::as_str) {
                    Some("off") => TelemetryPolicy::Off,
                    Some("full") => TelemetryPolicy::Full,
                    Some(v) if v.starts_with("sampled:") => {
                        let every = v["sampled:".len()..].parse().unwrap_or_else(|_| {
                            die("--telemetry sampled:N needs a number after the colon")
                        });
                        TelemetryPolicy::Sampled { every }
                    }
                    other => die(&format!(
                        "--telemetry expects off|full|sampled:N, got {other:?}"
                    )),
                };
                telemetry_explicit = true;
            }
            "--trace-out" => {
                args.trace_out = Some(
                    argv.get(i + 1)
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| die("--trace-out needs a file path")),
                );
            }
            "--artifact-out" => {
                args.artifact_out = Some(
                    argv.get(i + 1)
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| die("--artifact-out needs a file path")),
                );
            }
            "--listen" => {
                args.listen = Some(
                    argv.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| die("--listen needs an address (host:port)")),
                );
            }
            "--max-in-flight" => args.max_in_flight = need(i),
            "--queue-capacity" => args.queue_capacity = need(i),
            other => die(&format!("unknown flag {other}")),
        }
        i += 2;
    }
    if let TunePolicy::Measure { budget } = &mut args.tune {
        *budget = args.budget;
    }
    for (value, flag) in [
        (args.requests, "--requests"),
        (args.clients, "--clients"),
        (args.workers, "--workers"),
        (args.max_batch, "--max-batch"),
        (args.threads, "--threads"),
        (args.budget, "--budget"),
    ] {
        if value == 0 {
            die(&format!("{flag} must be at least 1"));
        }
    }
    if args.threads > 256 {
        die("--threads must be at most 256 (the artifact codec's bound)");
    }
    // Asking for a trace file without picking a policy means "trace
    // everything": a sampled or off policy would leave holes in it.
    if args.trace_out.is_some() && !telemetry_explicit {
        args.telemetry = TelemetryPolicy::Full;
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: patdnn-serve [--model vgg_small|resnet_small] [--requests N] \
         [--clients N] [--workers N] [--max-batch N] [--max-wait-ms N] [--threads N] \
         [--tune off|estimate|measure] [--budget N] [--precision f32|int8] \
         [--priority interactive|standard|batch] [--deadline-ms N] \
         [--telemetry off|full|sampled:N] [--trace-out FILE] [--artifact-out FILE]\n   \
         or: patdnn-serve --listen ADDR [--model vgg_small|resnet_small|small_cnn] \
         [--workers N] [--max-batch N] [--max-wait-ms N] [--threads N] \
         [--precision f32|int8] [--max-in-flight N] [--queue-capacity N]\n   \
         or: patdnn-serve --verify-only FILE"
    );
    std::process::exit(2);
}

/// The `--verify-only` lint mode: decode, verify, print the report,
/// exit with a code reflecting the outcome. Never builds an engine.
fn verify_only(path: &str) -> ! {
    use patdnn_serve::artifact::LoadPolicy;
    let artifact = match ModelArtifact::load_with(path, LoadPolicy::DecodeOnly) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        }
    };
    let report = patdnn_serve::verify(&artifact);
    print!("{report}");
    if report.is_ok() {
        println!();
        std::process::exit(0);
    }
    std::process::exit(1);
}

/// The `--listen` network front-end: compile + register the model,
/// then serve the wire protocol (and the `/metrics` + `/healthz` HTTP
/// shim) on `addr` until a peer sends the shutdown frame. Exits 0
/// after a clean drain.
fn run_listen(args: &Args, addr: &str) -> ! {
    use patdnn_serve::net::{NetServer, NetServerConfig};
    use patdnn_serve::AdmissionPolicy;

    let mut rng = Rng::seed_from(7);
    let (mut net, shape, prune_rate): (Sequential, [usize; 3], f32) = match args.model.as_str() {
        "vgg_small" => (vgg_small(10, &mut rng), [3, 32, 32], 3.6),
        "resnet_small" => (resnet_small(10, &mut rng), [3, 32, 32], 3.6),
        // The tiny model the router smoke fleet serves: compiles in
        // milliseconds, so replica startup is not the bottleneck.
        "small_cnn" => (
            patdnn_nn::models::small_cnn(3, 8, 4, &mut rng),
            [3, 8, 8],
            2.5,
        ),
        other => die(&format!(
            "unknown model {other} (expected vgg_small, resnet_small, or small_cnn)"
        )),
    };
    pattern_project_network(&mut net, 8, prune_rate);
    let compile_opts = CompileOptions {
        tune: args.tune,
        threads: args.threads,
        ..CompileOptions::default()
    };
    let mut artifact = compile_network_with(&args.model, &net, shape, &compile_opts)
        .unwrap_or_else(|e| die(&format!("compile failed: {e}")));
    if args.precision == Precision::Int8 {
        let calib = calibration_batch(shape, 8, 17);
        let profile = calibrate_network(&net, &calib)
            .unwrap_or_else(|e| die(&format!("calibration failed: {e}")));
        artifact = quantize_artifact(&artifact, &profile)
            .unwrap_or_else(|e| die(&format!("quantization failed: {e}")));
    }
    let engine = Engine::new(artifact, EngineOptions::default())
        .unwrap_or_else(|e| die(&format!("engine build failed: {e}")));
    let registry = Arc::new(ModelRegistry::new());
    registry.register(&args.model, engine);
    let server = Server::start(
        registry,
        ServerConfig {
            workers: args.workers,
            batch: BatchPolicy {
                max_batch: args.max_batch,
                max_wait: Duration::from_millis(args.max_wait_ms),
                ..BatchPolicy::default()
            },
            queue_capacity: args.queue_capacity,
            admission: AdmissionPolicy {
                max_in_flight: args.max_in_flight,
                max_per_model: args.max_in_flight,
            },
            telemetry: args.telemetry,
        },
    );
    let net_server = NetServer::bind(server, addr, NetServerConfig::default())
        .unwrap_or_else(|e| die(&format!("bind {addr} failed: {e}")));
    // The harness parses this line to learn the bound port (addr may
    // have been host:0).
    println!("listening on {}", net_server.local_addr());
    println!(
        "serving {} ({}, wire v{}, /metrics + /healthz over HTTP)",
        args.model,
        args.precision.label(),
        patdnn_serve::wire::WIRE_VERSION
    );
    match net_server.serve() {
        Ok(()) => {
            println!("drained and shut down cleanly");
            std::process::exit(0);
        }
        Err(e) => die(&format!("serve failed: {e}")),
    }
}

fn main() {
    // `--verify-only FILE` short-circuits the demo entirely.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = raw.iter().position(|a| a == "--verify-only") {
        let path = raw
            .get(pos + 1)
            .unwrap_or_else(|| die("--verify-only needs a file path"));
        verify_only(path);
    }

    let args = parse_args();
    if let Some(addr) = args.listen.clone() {
        run_listen(&args, &addr);
    }
    let mut rng = Rng::seed_from(7);

    // 1. Train-stage stand-in: a chain (VGG-style) or residual DAG
    //    (ResNet-style) network, pattern-pruned at the paper's 3.6x
    //    connectivity rate (weight values are random; serving
    //    performance is value-independent).
    println!(
        "[1/5] building and pruning {} (3x32x32 input)...",
        args.model
    );
    let mut net: Sequential = match args.model.as_str() {
        "vgg_small" => vgg_small(10, &mut rng),
        "resnet_small" => resnet_small(10, &mut rng),
        other => die(&format!(
            "unknown model {other} (expected vgg_small or resnet_small)"
        )),
    };
    pattern_project_network(&mut net, 8, 3.6);

    // 2. Compile to an artifact (tuning each layer's execution config
    //    under the selected policy), quantize it if requested, save,
    //    and reload from disk.
    println!(
        "[2/5] compiling to a model artifact (tune policy: {}, precision: {})...",
        args.tune.label(),
        args.precision.label()
    );
    let compile_opts = CompileOptions {
        tune: args.tune,
        threads: args.threads,
        ..CompileOptions::default()
    };
    let mut artifact = compile_network_with(&args.model, &net, [3, 32, 32], &compile_opts)
        .unwrap_or_else(|e| die(&format!("compile failed: {e}")));
    // Calibration inputs double as the int8 verification batch below.
    let calib = calibration_batch([3, 32, 32], 8, 17);
    if args.precision == Precision::Int8 {
        let f32_bytes = artifact.weight_bytes();
        let profile = calibrate_network(&net, &calib)
            .unwrap_or_else(|e| die(&format!("calibration failed: {e}")));
        artifact = quantize_artifact(&artifact, &profile)
            .unwrap_or_else(|e| die(&format!("quantization failed: {e}")));
        println!(
            "      quantized {} steps to int8 ({:.1} KiB -> {:.1} KiB of weights)",
            artifact
                .steps
                .iter()
                .filter(|s| s.precision == Precision::Int8)
                .count(),
            f32_bytes as f64 / 1024.0,
            artifact.weight_bytes() as f64 / 1024.0
        );
    }
    let pattern_layers = artifact
        .steps
        .iter()
        .filter(|s| s.op.kind().starts_with("pattern-conv"))
        .count();
    let joins = artifact
        .steps
        .iter()
        .filter(|s| s.op.kind() == "add")
        .count();
    println!(
        "      {} plan steps ({} pattern-conv, {} residual joins), \
         {} buffer slots, {:.1} KiB of weights",
        artifact.steps.len(),
        pattern_layers,
        joins,
        artifact.slots,
        artifact.weight_bytes() as f64 / 1024.0
    );
    println!("      plan (slots read -> written, per-step precision + exec config):");
    for (i, step) in artifact.steps.iter().enumerate() {
        let cfg = if step.op.kind().starts_with("pattern-conv") {
            format!("  [{}]", step.exec.summary())
        } else {
            String::new()
        };
        println!(
            "        {i:>2} {:<15} {:<4} {:?} -> {}{cfg}",
            step.op.kind(),
            step.precision.label(),
            step.inputs,
            step.output,
        );
    }
    let (path, keep) = match &args.artifact_out {
        Some(p) => (p.clone(), true),
        None => (
            std::env::temp_dir().join(format!("patdnn_serve_demo_{}.patdnn", args.model)),
            false,
        ),
    };
    artifact
        .save(&path)
        .unwrap_or_else(|e| die(&format!("save failed: {e}")));
    // The default load policy runs the plan verifier over the decoded
    // artifact, so a reload doubles as a full invariant check.
    let reloaded = ModelArtifact::load(&path).unwrap_or_else(|e| die(&format!("load failed: {e}")));
    if !keep {
        std::fs::remove_file(&path).ok();
    }
    assert_eq!(artifact, reloaded, "artifact round trip");
    println!("      artifact save -> verified load round trip: OK ({path:?})");

    // 3. Build a fresh engine from the reloaded artifact and verify it
    //    against the original network on the calibration batch. The
    //    engine honors each step's persisted exec config and precision
    //    (a tuned artifact serves tuned; a quantized one quantized).
    println!("[3/5] verifying compiled engine against the nn forward pass...");
    let engine = Engine::new(reloaded, EngineOptions::default())
        .unwrap_or_else(|e| die(&format!("engine build failed: {e}")));
    let want = net.forward(&calib, Mode::Eval);
    let got = engine
        .infer(&calib)
        .unwrap_or_else(|e| die(&format!("infer failed: {e}")));
    let diff = want.max_abs_diff(&got).unwrap_or(f32::INFINITY);
    let tol = match args.precision {
        Precision::F32 => 1e-4,
        Precision::Int8 => 1e-2,
    };
    assert!(
        diff < tol,
        "engine diverges from reference: {diff} (tol {tol})"
    );
    println!("      max |engine - reference| = {diff:.2e} (< {tol:.0e}): OK");

    // 4. Serve synthetic traffic through the dynamic-batching server
    //    via the request-lifecycle API.
    let deadline = (args.deadline_ms > 0).then(|| Duration::from_millis(args.deadline_ms));
    println!(
        "[4/5] serving {} {} requests from {} clients ({} workers, max_batch={}, \
         max_wait={}ms, deadline={})...",
        args.requests,
        args.priority.label(),
        args.clients,
        args.workers,
        args.max_batch,
        args.max_wait_ms,
        match deadline {
            Some(d) => format!("{}ms", d.as_millis()),
            None => "none".into(),
        }
    );
    let registry = Arc::new(ModelRegistry::new());
    registry.register(&args.model, engine);
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: args.workers,
            batch: BatchPolicy {
                max_batch: args.max_batch,
                max_wait: Duration::from_millis(args.max_wait_ms),
                ..BatchPolicy::default()
            },
            queue_capacity: 1024,
            telemetry: args.telemetry,
            ..ServerConfig::default()
        },
    );
    let serve_client = server.client();

    let start = Instant::now();
    let per_client = args.requests.div_ceil(args.clients.max(1));
    let model = args.model.as_str();
    let priority = args.priority;
    // Terminal-state counts across all clients:
    // [completed, expired, shed, rejected, other].
    // lock: demo-counts
    let counts = std::sync::Mutex::new([0u64; 5]);
    std::thread::scope(|scope| {
        for client in 0..args.clients {
            let serve_client = serve_client.clone();
            let counts = &counts;
            scope.spawn(move || {
                let mut rng = Rng::seed_from(100 + client as u64);
                let mut local = [0u64; 5];
                for _ in 0..per_client {
                    let input = Tensor::randn(&[1, 3, 32, 32], &mut rng);
                    let mut request = serve_client.request(model).input(input).priority(priority);
                    if let Some(d) = deadline {
                        request = request.deadline_in(d);
                    }
                    match request.submit().map(|handle| handle.wait()) {
                        Ok(Terminal::Completed(_)) => local[0] += 1,
                        Ok(Terminal::Expired { .. }) | Err(ServeError::Expired { .. }) => {
                            local[1] += 1
                        }
                        Ok(Terminal::Shed { .. }) | Err(ServeError::Shed { .. }) => local[2] += 1,
                        Err(ServeError::QueueFull) => local[3] += 1,
                        Ok(other) => {
                            eprintln!("client {client}: request ended {other:?}");
                            local[4] += 1;
                        }
                        Err(e) => {
                            eprintln!("client {client}: request failed: {e}");
                            local[4] += 1;
                        }
                    }
                    // Jittered think time keeps arrivals bursty enough
                    // to exercise partial batches.
                    if rng.chance(0.3) {
                        std::thread::sleep(Duration::from_micros(rng.below(500) as u64));
                    }
                }
                let mut totals = counts.lock().expect("counts lock");
                for (t, l) in totals.iter_mut().zip(local) {
                    *t += l;
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();

    // 5. Report.
    println!("[5/5] results");
    let snap = server.metrics().snapshot();
    let [completed, expired, shed, rejected, other] = *counts.lock().expect("counts lock");
    println!(
        "      requests     {completed} completed | {expired} expired | {shed} shed | \
         {rejected} rejected | {other} other"
    );
    println!(
        "      batches      {}  (avg batch {:.2})",
        snap.batches, snap.avg_batch
    );
    println!(
        "      latency ms   p50 {:.3} | p95 {:.3} | p99 {:.3} | mean {:.3}",
        snap.p50_ms, snap.p95_ms, snap.p99_ms, snap.mean_ms
    );
    for class in &snap.classes {
        if class.requests > 0 {
            println!(
                "      {:<12} p50 {:.3} | p99 {:.3} (n={})",
                class.priority.label(),
                class.p50_ms,
                class.p99_ms,
                class.requests
            );
        }
    }
    println!(
        "      throughput   {:.1} QPS over {:.2}s wall ({:.1} window QPS)",
        snap.requests as f64 / wall,
        wall,
        snap.qps
    );
    if server.telemetry().enabled() {
        println!("      stage breakdown (mean ms across traced requests):");
        for stat in server.telemetry().stage_breakdown() {
            if stat.count > 0 {
                println!(
                    "        {:<15} {:.3} (n={})",
                    stat.stage.label(),
                    stat.mean_ms(),
                    stat.count
                );
            }
        }
        let mut layers = server.telemetry().layer_snapshots();
        layers.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms));
        println!("      hottest layers (by total profiled wall time):");
        for layer in layers.iter().take(5) {
            println!(
                "        step {:>2} {:<15} {:<4} mean {:.3}ms p99 {:.3}ms | {:>7.2} GFLOP/s (n={})",
                layer.step,
                layer.kind,
                layer.precision.label(),
                layer.mean_ms,
                layer.p99_ms,
                layer.gflops,
                layer.count
            );
        }
    }
    if let Some(path) = &args.trace_out {
        let json = server.telemetry().chrome_trace_json();
        std::fs::write(path, &json).unwrap_or_else(|e| die(&format!("trace write failed: {e}")));
        println!(
            "      wrote {} span events to {path:?} (chrome://tracing / Perfetto)",
            server.telemetry().events().len()
        );
    }
    server.shutdown();
}
