//! The versioned model artifact format.
//!
//! A [`ModelArtifact`] is the on-disk form of a compiled pruned network:
//! per-layer FKW compressed weights plus layer geometry and the plan's
//! buffer-slot topology, enough to rebuild an
//! [`crate::engine::Engine`] without retraining, re-pruning, or
//! re-running filter-kernel reorder. The codec is a hand-rolled
//! little-endian byte format (the container builds offline, so no
//! serialization framework is used):
//!
//! ```text
//! "PATDNN" magic | u16 version | model name | input [c, h, w]
//! u32 slot count | u32 step count | tagged step records:
//!   u8 op tag | u8 n_inputs | u32 input slots... | u32 output slot
//!   | op payload (see LayerPlan)
//! ```
//!
//! Version 4 (current) stamps a [`Precision`] on every step and adds
//! INT8-quantized op payloads ([`LayerPlan::QuantPatternConv`],
//! [`LayerPlan::QuantFc`]): i8 weight codes, per-filter dequantization
//! scales, and the calibrated input-activation scale, so a quantized
//! plan serves quantized with no calibration at load. The precision tag
//! is validated against the op payload — a v4 buffer claiming `F32`
//! over a quantized payload (or vice versa) is malformed. Version 3
//! records a per-step [`ExecConfig`] — the auto-tuner's chosen
//! optimization level, tile/unroll parameters and thread schedule
//! (§5.5) — so a tuned artifact serves tuned without retuning at load.
//! Version 2 encodes the explicit DAG plan: every step reads one or
//! more buffer *slots* and writes one, slot 0 being the network input.
//! Slot ids come from the compiler's liveness analysis
//! ([`crate::compile`]), so two values whose live ranges do not overlap
//! share a buffer. Version 1 artifacts (implicit chains, no topology)
//! still decode: each record `i` is synthesized as reading slot `i` and
//! writing slot `i + 1`, which is exactly the chain plan. Pre-v4
//! artifacts decode every step to [`Precision::F32`] (and pre-v3 ones
//! to [`ExecConfig::default`]), reproducing the older engine behavior
//! bit for bit; the legacy encoders ([`ModelArtifact::encode_v3`] and
//! older) refuse plans their version cannot represent with a typed
//! error instead of silently dropping precision or tuning.
//!
//! `f32` weights are stored as raw bit patterns, so a save → load round
//! trip is bitwise lossless.
//!
//! # Wire-format vs. semantic checks
//!
//! Decoding enforces **wire-format** invariants only: magic, version,
//! truncation, unknown tags (op / precision / opt-level / permutation /
//! algorithm), string encoding, tensor-header consistency, and the
//! pattern-mask bounds [`Pattern::from_mask`] would otherwise panic on.
//! Everything *semantic* — slot topology and lifetimes, shape dataflow,
//! FKW index bounds, weight/bias/scale arities, accumulation-depth
//! proofs, exec-config bounds, algorithm eligibility — lives in one
//! place, the plan verifier ([`mod@crate::verify`]). [`ModelArtifact::load`]
//! runs it by default ([`LoadPolicy::Verify`]) and surfaces rejection
//! as [`ArtifactError::Rejected`]; [`ModelArtifact::decode`] alone
//! accepts any well-formed byte stream, verified or not, so tooling can
//! inspect a broken artifact the verifier would refuse to serve.

use std::fmt;
use std::path::Path;

use patdnn_compiler::fkw::FkwLayer;
use patdnn_compiler::quant::QuantFkwLayer;
use patdnn_compiler::tune::space::{ConvAlgo, LoopPermutation, TuningConfig};
use patdnn_core::pattern::Pattern;
use patdnn_runtime::pattern_exec::OptLevel;
use patdnn_tensor::Tensor;

/// File magic.
pub const MAGIC: &[u8; 6] = b"PATDNN";
/// Current format version (per-step convolution algorithm choice).
pub const VERSION: u16 = 5;
/// The quantized format without per-step algorithm tags; still decodable.
pub const VERSION_V4: u16 = 4;
/// The tuned-plan format without precision tags; still decodable.
pub const VERSION_V3: u16 = 3;
/// The DAG format without execution configs; still decodable.
pub const VERSION_V2: u16 = 2;
/// The legacy chain format (no slot topology); still decodable.
pub const VERSION_V1: u16 = 1;

/// The numeric precision a plan step executes at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Full-precision `f32` execution (every pre-v4 step).
    F32,
    /// Symmetric INT8: i8 weights, i8 activations, i32 accumulation.
    Int8,
}

impl Precision {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

/// Errors produced while decoding an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// The buffer does not start with the `PATDNN` magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A structural invariant failed while decoding.
    Malformed(String),
    /// The buffer decoded, but the plan verifier found semantic
    /// violations; the full report is attached.
    Rejected(Box<crate::verify::VerifyReport>),
    /// Filesystem error during save/load.
    Io(std::io::Error),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => write!(f, "not a PatDNN artifact (bad magic)"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact version {v} (max {VERSION})")
            }
            ArtifactError::Truncated => write!(f, "artifact truncated"),
            ArtifactError::Malformed(msg) => write!(f, "malformed artifact: {msg}"),
            ArtifactError::Rejected(report) => write!(f, "artifact rejected: {report}"),
            ArtifactError::Io(e) => write!(f, "artifact i/o: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// One compiled operation of the executable plan.
///
/// Convolution records carry only weight-side geometry (stride/pad plus
/// whatever the weight arrays imply); spatial input sizes are derived at
/// engine-build time from the artifact's input shape, so one artifact
/// serves any compatible spatial resolution.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerPlan {
    /// Pattern-pruned convolution in FKW storage.
    PatternConv {
        /// Layer name.
        name: String,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
        /// FKW compressed weights.
        fkw: FkwLayer,
        /// Per-filter bias, if any.
        bias: Option<Vec<f32>>,
        /// Whether a ReLU was fused into this convolution.
        relu: bool,
    },
    /// Dense (unpruned or unpatternable) convolution.
    DenseConv {
        /// Layer name.
        name: String,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
        /// OIHW weights.
        weights: Tensor,
        /// Per-filter bias, if any.
        bias: Option<Vec<f32>>,
        /// Whether a ReLU was fused into this convolution.
        relu: bool,
    },
    /// Max pooling.
    MaxPool {
        /// Window size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
    },
    /// Global average pooling to `[batch, c, 1, 1]`.
    GlobalAvgPool,
    /// Flatten to `[batch, features]`.
    Flatten,
    /// Standalone ReLU (post-FC; post-conv ReLUs are fused).
    Relu,
    /// Fully-connected layer.
    Fc {
        /// Layer name.
        name: String,
        /// Weights, shape `[out_f, in_f]`.
        weights: Tensor,
        /// Per-output bias.
        bias: Vec<f32>,
    },
    /// Elementwise addition of two slots (residual join).
    Add {
        /// Whether a ReLU was fused into this join.
        relu: bool,
    },
    /// INT8-quantized pattern-pruned convolution: the FKW index layout
    /// with i8 weight codes, per-filter scales, and the calibrated
    /// input-activation scale.
    QuantPatternConv {
        /// Layer name.
        name: String,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
        /// Quantized FKW storage (layout + i8 weights + scales).
        qfkw: QuantFkwLayer,
        /// Per-filter bias (`f32`, added after dequantization), if any.
        bias: Option<Vec<f32>>,
        /// Whether a ReLU was fused into this convolution.
        relu: bool,
    },
    /// INT8-quantized fully-connected layer.
    QuantFc {
        /// Layer name.
        name: String,
        /// Output features.
        out_f: usize,
        /// Input features.
        in_f: usize,
        /// Quantized weights, row-major `[out_f, in_f]` codes.
        qweights: Vec<i8>,
        /// Per-output-row dequantization scales (`out_f` entries).
        scales: Vec<f32>,
        /// Calibrated input-activation scale.
        act_scale: f32,
        /// Per-output bias (`f32`, added after dequantization).
        bias: Vec<f32>,
    },
}

impl LayerPlan {
    /// Short kind label for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            LayerPlan::PatternConv { .. } => "pattern-conv",
            LayerPlan::DenseConv { .. } => "dense-conv",
            LayerPlan::MaxPool { .. } => "maxpool",
            LayerPlan::GlobalAvgPool => "gap",
            LayerPlan::Flatten => "flatten",
            LayerPlan::Relu => "relu",
            LayerPlan::Fc { .. } => "fc",
            LayerPlan::Add { .. } => "add",
            LayerPlan::QuantPatternConv { .. } => "pattern-conv-i8",
            LayerPlan::QuantFc { .. } => "fc-i8",
        }
    }

    /// How many slots this op reads.
    pub fn arity(&self) -> usize {
        match self {
            LayerPlan::Add { .. } => 2,
            _ => 1,
        }
    }

    /// The precision this op's payload executes at. A step's stamped
    /// [`PlanStep::precision`] must agree with it (validated at decode
    /// and engine build).
    pub fn precision(&self) -> Precision {
        match self {
            LayerPlan::QuantPatternConv { .. } | LayerPlan::QuantFc { .. } => Precision::Int8,
            _ => Precision::F32,
        }
    }
}

/// The executor configuration of one plan step: the auto-tuner's
/// per-layer choices (§5.5) persisted in the artifact so a tuned plan
/// serves tuned without retuning at load.
///
/// Only pattern-conv steps are sensitive to it today (the other ops
/// have no tuning knobs and carry the default). Tile and unroll sizes
/// must be nonzero powers of two — the codec rejects anything else at
/// decode with a typed [`ArtifactError::Malformed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecConfig {
    /// Optimization level of the pattern executor (Figure 13 levels).
    pub opt_level: OptLevel,
    /// Loop order, blocking, tile and unroll factors.
    pub tuning: TuningConfig,
    /// Intra-layer CPU threads (1 = serial; >1 uses the runtime's
    /// FKR-balanced parallel schedule).
    pub threads: usize,
    /// Which convolution lowering executes the step (v5 tag; pre-v5
    /// artifacts decode to [`ConvAlgo::Direct`]). Only meaningful on
    /// `f32` pattern-conv steps; every other op carries `Direct`.
    pub algo: ConvAlgo,
}

impl Default for ExecConfig {
    /// The untuned configuration every pre-v3 artifact decodes to:
    /// `OptLevel::Full` at the global tuned default, serial, direct.
    fn default() -> Self {
        ExecConfig {
            opt_level: OptLevel::Full,
            tuning: TuningConfig::tuned_default(),
            threads: 1,
            algo: ConvAlgo::Direct,
        }
    }
}

/// Largest tile size the codec accepts.
const MAX_TILE: usize = 1024;
/// Largest unroll factor the codec accepts.
const MAX_UNROLL: usize = 64;
/// Largest per-step thread count the codec accepts.
const MAX_THREADS: usize = 256;

impl ExecConfig {
    /// The default config with an explicit thread schedule.
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig {
            threads,
            ..ExecConfig::default()
        }
    }

    /// Structural validation: tile/unroll sizes are nonzero powers of
    /// two within codec bounds and the thread count is sane. Runs at
    /// decode and again at engine build.
    pub fn validate(&self) -> Result<(), String> {
        let pow2 = |what: &str, x: usize, max: usize| -> Result<(), String> {
            if x == 0 || !x.is_power_of_two() || x > max {
                Err(format!("{what} {x} is not a power of two in 1..={max}"))
            } else {
                Ok(())
            }
        };
        pow2("tile_oc", self.tuning.tile_oc, MAX_TILE)?;
        pow2("tile_hw", self.tuning.tile_hw, MAX_TILE)?;
        pow2("unroll_oc", self.tuning.unroll_oc, MAX_UNROLL)?;
        pow2("unroll_w", self.tuning.unroll_w, MAX_UNROLL)?;
        if self.threads == 0 || self.threads > MAX_THREADS {
            return Err(format!("thread count {} out of range", self.threads));
        }
        Ok(())
    }

    /// Compact human-readable form for plan dumps, e.g.
    /// `Reorder+LRE+Tune cohwci_b tile 16x32 unroll 4x8 1t direct`.
    pub fn summary(&self) -> String {
        format!(
            "{} {} tile {}x{} unroll {}x{} {}t {}",
            self.opt_level.label(),
            self.tuning.permute.label(self.tuning.blocked),
            self.tuning.tile_oc,
            self.tuning.tile_hw,
            self.tuning.unroll_oc,
            self.tuning.unroll_w,
            self.threads,
            self.algo.label(),
        )
    }
}

/// One step of the executable DAG plan: an op plus the buffer slots it
/// reads and the slot it writes. Slot 0 is the network input and is
/// never written.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// The operation.
    pub op: LayerPlan,
    /// Slots read, in op order (conv input; `Add` reads two).
    pub inputs: Vec<usize>,
    /// Slot written. Never 0 and never one of `inputs` (steps are not
    /// in-place, so the engine can borrow inputs and output disjointly).
    pub output: usize,
    /// The executor configuration this step runs with.
    pub exec: ExecConfig,
    /// The numeric precision this step executes at. Stamped into v4
    /// artifacts and validated against the op payload; pre-v4 artifacts
    /// decode every step to [`Precision::F32`].
    pub precision: Precision,
}

impl PlanStep {
    /// A default-config `f32`-or-quantized step over the given slots,
    /// with the precision stamped from the op payload.
    pub fn new(op: LayerPlan, inputs: Vec<usize>, output: usize) -> Self {
        let precision = op.precision();
        PlanStep {
            op,
            inputs,
            output,
            exec: ExecConfig::default(),
            precision,
        }
    }
}

/// A compiled model: input geometry plus the executable DAG plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// Model name (registry key by convention).
    pub name: String,
    /// Per-item input shape `[c, h, w]`.
    pub input: [usize; 3],
    /// Total buffer slots, including slot 0 (the network input).
    pub slots: usize,
    /// The plan steps in execution order (producers before consumers).
    pub steps: Vec<PlanStep>,
}

impl ModelArtifact {
    /// Builds a chain-plan artifact from a bare op list: step `i` reads
    /// slot `i` and writes slot `i + 1`. This is the v1 layout and the
    /// natural form for straight-line models and tests.
    pub fn chain(name: &str, input: [usize; 3], ops: Vec<LayerPlan>) -> Self {
        let steps = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| PlanStep::new(op, vec![i], i + 1))
            .collect::<Vec<_>>();
        ModelArtifact {
            name: name.to_owned(),
            input,
            slots: steps.len() + 1,
            steps,
        }
    }

    /// Total bytes of weight payload (FKW weights + dense weights + FC
    /// weights), for size reporting.
    pub fn weight_bytes(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match &s.op {
                LayerPlan::PatternConv { fkw, .. } => fkw.total_bytes(),
                LayerPlan::DenseConv { weights, .. } => weights.len() * 4,
                LayerPlan::Fc { weights, .. } => weights.len() * 4,
                LayerPlan::QuantPatternConv { qfkw, .. } => qfkw.total_bytes(),
                LayerPlan::QuantFc {
                    qweights, scales, ..
                } => qweights.len() + scales.len() * 4,
                _ => 0,
            })
            .sum()
    }

    /// Whether the plan is a straight chain in v1 layout (step `i` reads
    /// slot `i`, writes slot `i + 1`, no joins).
    pub fn is_chain(&self) -> bool {
        self.slots == self.steps.len() + 1
            && self
                .steps
                .iter()
                .enumerate()
                .all(|(i, s)| s.inputs[..] == [i] && s.output == i + 1)
    }

    /// Encodes the artifact to its binary form (current version).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(MAGIC);
        w.u16(VERSION);
        w.str(&self.name);
        for d in self.input {
            w.u32(d as u32);
        }
        w.u32(self.slots as u32);
        w.u32(self.steps.len() as u32);
        for step in &self.steps {
            encode_step(&mut w, step);
        }
        w.finish()
    }

    /// Encodes the artifact in the v4 quantized layout (per-step
    /// precision tags and exec configs but no algorithm choice). Fails
    /// with a typed error if any step selects a non-direct convolution
    /// lowering — v4 cannot represent algorithm-choice plans, and a
    /// silently-lossy encode would break the codec's round-trip
    /// invariant. Kept so the backward-compatibility path stays
    /// testable against real v4 bytes.
    pub fn encode_v4(&self) -> Result<Vec<u8>, ArtifactError> {
        self.require_direct_algos("v4")?;
        let mut w = ByteWriter::new();
        w.bytes(MAGIC);
        w.u16(VERSION_V4);
        w.str(&self.name);
        for d in self.input {
            w.u32(d as u32);
        }
        w.u32(self.slots as u32);
        w.u32(self.steps.len() as u32);
        for step in &self.steps {
            encode_step_topology(&mut w, step);
            w.u8(match step.precision {
                Precision::F32 => PRECISION_F32,
                Precision::Int8 => PRECISION_INT8,
            });
            encode_exec_config(&mut w, &step.exec);
            encode_op(&mut w, &step.op);
        }
        Ok(w.finish())
    }

    /// Encodes the artifact in the v3 tuned-plan layout (per-step exec
    /// configs but no precision tags). Fails with a typed error if any
    /// step is INT8-quantized or selects a non-direct convolution
    /// lowering — v3 cannot represent reduced-precision payloads or
    /// algorithm-choice plans, and a silently-lossy encode would break
    /// the codec's round-trip invariant (mirroring the tuned-plan
    /// refusal of the older encoders). Kept so the
    /// backward-compatibility path stays testable against real v3
    /// bytes.
    pub fn encode_v3(&self) -> Result<Vec<u8>, ArtifactError> {
        self.require_f32_steps("v3")?;
        self.require_direct_algos("v3")?;
        let mut w = ByteWriter::new();
        w.bytes(MAGIC);
        w.u16(VERSION_V3);
        w.str(&self.name);
        for d in self.input {
            w.u32(d as u32);
        }
        w.u32(self.slots as u32);
        w.u32(self.steps.len() as u32);
        for step in &self.steps {
            encode_step_topology(&mut w, step);
            encode_exec_config(&mut w, &step.exec);
            encode_op(&mut w, &step.op);
        }
        Ok(w.finish())
    }

    /// Encodes the artifact in the legacy v1 chain layout (no slot
    /// topology, no execution configs). Fails unless
    /// [`ModelArtifact::is_chain`] and every step carries the default
    /// config at `f32` precision; kept so the backward-compatibility
    /// path stays testable against real v1 bytes.
    pub fn encode_v1(&self) -> Result<Vec<u8>, ArtifactError> {
        self.require_f32_steps("v1")?;
        if !self.is_chain() {
            return Err(ArtifactError::Malformed(
                "v1 cannot represent non-chain plans".into(),
            ));
        }
        self.require_default_configs("v1")?;
        let mut w = ByteWriter::new();
        w.bytes(MAGIC);
        w.u16(VERSION_V1);
        w.str(&self.name);
        for d in self.input {
            w.u32(d as u32);
        }
        w.u32(self.steps.len() as u32);
        for step in &self.steps {
            if matches!(step.op, LayerPlan::Add { .. }) {
                return Err(ArtifactError::Malformed("v1 has no add op".into()));
            }
            encode_op(&mut w, &step.op);
        }
        Ok(w.finish())
    }

    /// Encodes the artifact in the v2 DAG layout (slot topology but no
    /// execution configs). Fails if any step carries a non-default
    /// config or INT8 precision — v2 cannot represent tuned or
    /// quantized plans, and a silently-lossy encode would break the
    /// codec's round-trip invariant.
    pub fn encode_v2(&self) -> Result<Vec<u8>, ArtifactError> {
        self.require_f32_steps("v2")?;
        self.require_default_configs("v2")?;
        let mut w = ByteWriter::new();
        w.bytes(MAGIC);
        w.u16(VERSION_V2);
        w.str(&self.name);
        for d in self.input {
            w.u32(d as u32);
        }
        w.u32(self.slots as u32);
        w.u32(self.steps.len() as u32);
        for step in &self.steps {
            encode_step_topology(&mut w, step);
            encode_op(&mut w, &step.op);
        }
        Ok(w.finish())
    }

    fn require_f32_steps(&self, version: &str) -> Result<(), ArtifactError> {
        if let Some(i) = self
            .steps
            .iter()
            .position(|s| s.precision != Precision::F32 || s.op.precision() != Precision::F32)
        {
            return Err(ArtifactError::Malformed(format!(
                "{version} cannot represent int8-quantized steps (step {i} is {})",
                self.steps[i].op.kind()
            )));
        }
        Ok(())
    }

    fn require_direct_algos(&self, version: &str) -> Result<(), ArtifactError> {
        if let Some(i) = self
            .steps
            .iter()
            .position(|s| s.exec.algo != ConvAlgo::Direct)
        {
            return Err(ArtifactError::Malformed(format!(
                "{version} cannot represent per-step algorithm choice (step {i} is {})",
                self.steps[i].exec.algo.label()
            )));
        }
        Ok(())
    }

    fn require_default_configs(&self, version: &str) -> Result<(), ArtifactError> {
        if let Some(i) = self
            .steps
            .iter()
            .position(|s| s.exec != ExecConfig::default())
        {
            return Err(ArtifactError::Malformed(format!(
                "{version} cannot represent per-step exec configs (step {i} is tuned)"
            )));
        }
        Ok(())
    }

    /// Decodes an artifact from its binary form (v1 through v5).
    pub fn decode(buf: &[u8]) -> Result<Self, ArtifactError> {
        let mut r = ByteReader::new(buf);
        if r.bytes(MAGIC.len())? != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = r.u16()?;
        if version == 0 || version > VERSION {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let name = r.str()?;
        let input = [r.u32()? as usize, r.u32()? as usize, r.u32()? as usize];
        let artifact = if version == VERSION_V1 {
            // v1: bare op records form an implicit chain.
            let count = r.u32()? as usize;
            let mut ops = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                ops.push(decode_op(&mut r)?);
            }
            ModelArtifact::chain(&name, input, ops)
        } else {
            let slots = r.u32()? as usize;
            let count = r.u32()? as usize;
            let mut steps = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                steps.push(decode_step(&mut r, version)?);
            }
            ModelArtifact {
                name,
                input,
                slots,
                steps,
            }
        };
        if !r.is_empty() {
            return Err(ArtifactError::Malformed("trailing bytes".into()));
        }
        Ok(artifact)
    }

    /// Decodes an artifact and runs the plan verifier over the result;
    /// a decodable buffer whose plan breaks any semantic invariant is
    /// refused with [`ArtifactError::Rejected`] carrying the full
    /// report.
    pub fn decode_verified(buf: &[u8]) -> Result<Self, ArtifactError> {
        let artifact = Self::decode(buf)?;
        let report = crate::verify::verify(&artifact);
        if report.is_ok() {
            Ok(artifact)
        } else {
            Err(ArtifactError::Rejected(Box::new(report)))
        }
    }

    /// Writes the encoded artifact to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads and decodes an artifact from `path`, verifying the plan
    /// ([`LoadPolicy::Verify`]).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        Self::load_with(path, LoadPolicy::Verify)
    }

    /// Reads an artifact with an explicit [`LoadPolicy`]. Use
    /// [`LoadPolicy::DecodeOnly`] when the caller verifies itself (the
    /// engine does) or wants to inspect a plan the verifier rejects.
    pub fn load_with(path: impl AsRef<Path>, policy: LoadPolicy) -> Result<Self, ArtifactError> {
        let bytes = std::fs::read(path)?;
        match policy {
            LoadPolicy::Verify => Self::decode_verified(&bytes),
            LoadPolicy::DecodeOnly => Self::decode(&bytes),
        }
    }
}

/// How much checking [`ModelArtifact::load_with`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadPolicy {
    /// Decode, then run the plan verifier ([`mod@crate::verify`]); semantic
    /// violations surface as [`ArtifactError::Rejected`]. The default.
    #[default]
    Verify,
    /// Decode only (wire-format checks). For tooling that inspects
    /// broken artifacts, and for callers that verify themselves.
    DecodeOnly,
}

const TAG_PATTERN_CONV: u8 = 0;
const TAG_DENSE_CONV: u8 = 1;
const TAG_MAXPOOL: u8 = 2;
const TAG_GAP: u8 = 3;
const TAG_FLATTEN: u8 = 4;
const TAG_RELU: u8 = 5;
const TAG_FC: u8 = 6;
const TAG_ADD: u8 = 7;
const TAG_QPATTERN_CONV: u8 = 8;
const TAG_QFC: u8 = 9;

const PRECISION_F32: u8 = 0;
const PRECISION_INT8: u8 = 1;

fn encode_step_topology(w: &mut ByteWriter, step: &PlanStep) {
    assert!(step.inputs.len() <= u8::MAX as usize, "step arity");
    w.u8(step.inputs.len() as u8);
    for &s in &step.inputs {
        w.u32(s as u32);
    }
    w.u32(step.output as u32);
}

fn encode_step(w: &mut ByteWriter, step: &PlanStep) {
    encode_step_topology(w, step);
    w.u8(match step.precision {
        Precision::F32 => PRECISION_F32,
        Precision::Int8 => PRECISION_INT8,
    });
    encode_exec_config(w, &step.exec);
    // v5 appends the algorithm tag after the fixed-width exec record,
    // so every pre-v5 byte offset is preserved.
    w.u8(algo_tag(step.exec.algo));
    encode_op(w, &step.op);
}

fn decode_step(r: &mut ByteReader, version: u16) -> Result<PlanStep, ArtifactError> {
    let n = r.u8()? as usize;
    let mut inputs = Vec::with_capacity(n);
    for _ in 0..n {
        inputs.push(r.u32()? as usize);
    }
    let output = r.u32()? as usize;
    // v3 predates precision tags; its steps decode to f32, which the
    // topology validation cross-checks against the op payload (so a
    // forged pre-v4 buffer cannot smuggle a quantized op in).
    let precision = if version > VERSION_V3 {
        match r.u8()? {
            PRECISION_F32 => Precision::F32,
            PRECISION_INT8 => Precision::Int8,
            other => {
                return Err(ArtifactError::Malformed(format!(
                    "unknown precision tag {other}"
                )))
            }
        }
    } else {
        Precision::F32
    };
    // v2 predates per-step configs; its steps decode to the default.
    // Gated on the fixed v2 boundary (not the floating current VERSION)
    // so future format bumps keep reading v3's config bytes.
    let mut exec = if version > VERSION_V2 {
        decode_exec_config(r)?
    } else {
        ExecConfig::default()
    };
    // v4 predates per-step algorithm choice; its steps decode to the
    // direct FKW lowering.
    if version > VERSION_V4 {
        exec.algo = decode_algo_tag(r.u8()?)?;
    }
    let op = decode_op(r)?;
    Ok(PlanStep {
        op,
        inputs,
        output,
        exec,
        precision,
    })
}

const OPT_TAGS: [OptLevel; 4] = [
    OptLevel::NoOpt,
    OptLevel::Reorder,
    OptLevel::ReorderLre,
    OptLevel::Full,
];

const ALGO_TAGS: [ConvAlgo; 3] = [ConvAlgo::Direct, ConvAlgo::Im2col, ConvAlgo::Winograd];

fn algo_tag(algo: ConvAlgo) -> u8 {
    ALGO_TAGS
        .iter()
        .position(|&a| a == algo)
        .expect("every algorithm has a tag") as u8
}

fn decode_algo_tag(tag: u8) -> Result<ConvAlgo, ArtifactError> {
    ALGO_TAGS
        .get(tag as usize)
        .copied()
        .ok_or_else(|| ArtifactError::Malformed(format!("unknown conv algorithm tag {tag}")))
}

fn encode_exec_config(w: &mut ByteWriter, cfg: &ExecConfig) {
    // Validated before writing: the fields below are cast to u16, and a
    // silently truncated config would decode valid-looking but
    // different, breaking the codec's round-trip invariant.
    cfg.validate().expect("encodable exec config");
    let opt = OPT_TAGS
        .iter()
        .position(|&l| l == cfg.opt_level)
        .expect("every opt level has a tag");
    w.u8(opt as u8);
    w.u8(match cfg.tuning.permute {
        LoopPermutation::CoCiHw => 0,
        LoopPermutation::CoHwCi => 1,
    });
    w.u8(u8::from(cfg.tuning.blocked));
    w.u16(cfg.tuning.tile_oc as u16);
    w.u16(cfg.tuning.tile_hw as u16);
    w.u16(cfg.tuning.unroll_oc as u16);
    w.u16(cfg.tuning.unroll_w as u16);
    w.u16(cfg.threads as u16);
}

fn decode_exec_config(r: &mut ByteReader) -> Result<ExecConfig, ArtifactError> {
    let malformed = |msg: String| ArtifactError::Malformed(msg);
    let opt_level = *OPT_TAGS
        .get(r.u8()? as usize)
        .ok_or_else(|| malformed("unknown opt level tag".into()))?;
    let permute = match r.u8()? {
        0 => LoopPermutation::CoCiHw,
        1 => LoopPermutation::CoHwCi,
        other => return Err(malformed(format!("unknown loop permutation tag {other}"))),
    };
    let blocked = match r.u8()? {
        0 => false,
        1 => true,
        other => return Err(malformed(format!("blocked flag must be 0/1, got {other}"))),
    };
    let cfg = ExecConfig {
        opt_level,
        tuning: TuningConfig {
            permute,
            blocked,
            tile_oc: r.u16()? as usize,
            tile_hw: r.u16()? as usize,
            unroll_oc: r.u16()? as usize,
            unroll_w: r.u16()? as usize,
        },
        threads: r.u16()? as usize,
        // The algorithm tag lives outside the fixed-width record (v5
        // appends it); pre-v5 decodes keep the direct lowering.
        algo: ConvAlgo::Direct,
    };
    // Bounds on tile/unroll/thread values are semantic, not wire-format:
    // the verifier checks `cfg.validate()` per step.
    Ok(cfg)
}

fn encode_op(w: &mut ByteWriter, layer: &LayerPlan) {
    match layer {
        LayerPlan::PatternConv {
            name,
            stride,
            pad,
            fkw,
            bias,
            relu,
        } => {
            w.u8(TAG_PATTERN_CONV);
            w.str(name);
            w.u32(*stride as u32);
            w.u32(*pad as u32);
            w.u8(u8::from(*relu));
            encode_opt_f32s(w, bias.as_deref());
            encode_fkw(w, fkw);
        }
        LayerPlan::DenseConv {
            name,
            stride,
            pad,
            weights,
            bias,
            relu,
        } => {
            w.u8(TAG_DENSE_CONV);
            w.str(name);
            w.u32(*stride as u32);
            w.u32(*pad as u32);
            w.u8(u8::from(*relu));
            encode_opt_f32s(w, bias.as_deref());
            encode_tensor(w, weights);
        }
        LayerPlan::MaxPool {
            kernel,
            stride,
            pad,
        } => {
            w.u8(TAG_MAXPOOL);
            w.u32(*kernel as u32);
            w.u32(*stride as u32);
            w.u32(*pad as u32);
        }
        LayerPlan::GlobalAvgPool => w.u8(TAG_GAP),
        LayerPlan::Flatten => w.u8(TAG_FLATTEN),
        LayerPlan::Relu => w.u8(TAG_RELU),
        LayerPlan::Fc {
            name,
            weights,
            bias,
        } => {
            w.u8(TAG_FC);
            w.str(name);
            encode_tensor(w, weights);
            encode_f32s(w, bias);
        }
        LayerPlan::Add { relu } => {
            w.u8(TAG_ADD);
            w.u8(u8::from(*relu));
        }
        LayerPlan::QuantPatternConv {
            name,
            stride,
            pad,
            qfkw,
            bias,
            relu,
        } => {
            w.u8(TAG_QPATTERN_CONV);
            w.str(name);
            w.u32(*stride as u32);
            w.u32(*pad as u32);
            w.u8(u8::from(*relu));
            encode_opt_f32s(w, bias.as_deref());
            encode_qfkw(w, qfkw);
        }
        LayerPlan::QuantFc {
            name,
            out_f,
            in_f,
            qweights,
            scales,
            act_scale,
            bias,
        } => {
            w.u8(TAG_QFC);
            w.str(name);
            w.u32(*out_f as u32);
            w.u32(*in_f as u32);
            w.u32(act_scale.to_bits());
            encode_f32s(w, scales);
            encode_f32s(w, bias);
            encode_i8s(w, qweights);
        }
    }
}

fn decode_op(r: &mut ByteReader) -> Result<LayerPlan, ArtifactError> {
    let tag = r.u8()?;
    Ok(match tag {
        TAG_PATTERN_CONV => {
            let name = r.str()?;
            let stride = r.u32()? as usize;
            let pad = r.u32()? as usize;
            let relu = decode_flag(r)?;
            let bias = decode_opt_f32s(r)?;
            let fkw = decode_fkw(r)?;
            LayerPlan::PatternConv {
                name,
                stride,
                pad,
                fkw,
                bias,
                relu,
            }
        }
        TAG_DENSE_CONV => {
            let name = r.str()?;
            let stride = r.u32()? as usize;
            let pad = r.u32()? as usize;
            let relu = decode_flag(r)?;
            let bias = decode_opt_f32s(r)?;
            let weights = decode_tensor(r)?;
            LayerPlan::DenseConv {
                name,
                stride,
                pad,
                weights,
                bias,
                relu,
            }
        }
        TAG_MAXPOOL => {
            let kernel = r.u32()? as usize;
            let stride = r.u32()? as usize;
            let pad = r.u32()? as usize;
            LayerPlan::MaxPool {
                kernel,
                stride,
                pad,
            }
        }
        TAG_GAP => LayerPlan::GlobalAvgPool,
        TAG_FLATTEN => LayerPlan::Flatten,
        TAG_RELU => LayerPlan::Relu,
        TAG_FC => {
            let name = r.str()?;
            let weights = decode_tensor(r)?;
            let bias = decode_f32s(r)?;
            LayerPlan::Fc {
                name,
                weights,
                bias,
            }
        }
        TAG_ADD => LayerPlan::Add {
            relu: decode_flag(r)?,
        },
        TAG_QPATTERN_CONV => {
            let name = r.str()?;
            let stride = r.u32()? as usize;
            let pad = r.u32()? as usize;
            let relu = decode_flag(r)?;
            let bias = decode_opt_f32s(r)?;
            let qfkw = decode_qfkw(r)?;
            LayerPlan::QuantPatternConv {
                name,
                stride,
                pad,
                qfkw,
                bias,
                relu,
            }
        }
        TAG_QFC => {
            let name = r.str()?;
            let out_f = r.u32()? as usize;
            let in_f = r.u32()? as usize;
            let act_scale = f32::from_bits(r.u32()?);
            let scales = decode_f32s(r)?;
            let bias = decode_f32s(r)?;
            let qweights = decode_i8s(r)?;
            LayerPlan::QuantFc {
                name,
                out_f,
                in_f,
                qweights,
                scales,
                act_scale,
                bias,
            }
        }
        other => {
            return Err(ArtifactError::Malformed(format!(
                "unknown layer tag {other}"
            )))
        }
    })
}

/// The precision-independent half of FKW storage: the five index
/// arrays plus the pattern table, shared byte-for-byte between the
/// `f32` ([`FkwLayer`]) and INT8 ([`QuantFkwLayer`]) payloads.
struct FkwLayout {
    out_c: usize,
    in_c: usize,
    kernel: usize,
    entries_per_kernel: usize,
    patterns: Vec<Pattern>,
    offsets: Vec<u32>,
    reorder: Vec<u16>,
    index: Vec<u16>,
    stride: Vec<u16>,
}

#[allow(clippy::too_many_arguments)]
fn encode_fkw_layout(
    w: &mut ByteWriter,
    out_c: usize,
    in_c: usize,
    kernel: usize,
    entries_per_kernel: usize,
    patterns: &[Pattern],
    offsets: &[u32],
    reorder: &[u16],
    index: &[u16],
    stride: &[u16],
) {
    w.u32(out_c as u32);
    w.u32(in_c as u32);
    w.u32(kernel as u32);
    w.u32(entries_per_kernel as u32);
    w.u32(patterns.len() as u32);
    for p in patterns {
        w.u8(p.kernel() as u8);
        w.u64(p.mask());
    }
    w.u32(offsets.len() as u32);
    for &o in offsets {
        w.u32(o);
    }
    w.u32(reorder.len() as u32);
    for &x in reorder {
        w.u16(x);
    }
    w.u32(index.len() as u32);
    for &x in index {
        w.u16(x);
    }
    w.u32(stride.len() as u32);
    for &x in stride {
        w.u16(x);
    }
}

/// Decodes the shared FKW layout. Only wire-level invariants are
/// enforced here (pattern kernel size and mask bounds, which
/// [`Pattern::from_mask`] would otherwise panic on); the exhaustive
/// index-bounds checks live in the verifier
/// ([`crate::verify::Violation::PayloadInvariant`]).
fn decode_fkw_layout(r: &mut ByteReader) -> Result<FkwLayout, ArtifactError> {
    let out_c = r.u32()? as usize;
    let in_c = r.u32()? as usize;
    let kernel = r.u32()? as usize;
    let entries_per_kernel = r.u32()? as usize;
    let np = r.u32()? as usize;
    let mut patterns = Vec::with_capacity(np.min(256));
    for _ in 0..np {
        let k = r.u8()? as usize;
        let mask = r.u64()?;
        if !(1..=7).contains(&k) {
            return Err(ArtifactError::Malformed(format!("pattern kernel {k}")));
        }
        let valid = (1u64 << (k * k)) - 1;
        if mask & !valid != 0 {
            return Err(ArtifactError::Malformed(
                "pattern mask outside kernel".into(),
            ));
        }
        patterns.push(Pattern::from_mask(k, mask));
    }
    let offsets = r.u32s()?;
    let reorder = r.u16s()?;
    let index = r.u16s()?;
    let stride = r.u16s()?;
    Ok(FkwLayout {
        out_c,
        in_c,
        kernel,
        entries_per_kernel,
        patterns,
        offsets,
        reorder,
        index,
        stride,
    })
}

fn encode_fkw(w: &mut ByteWriter, fkw: &FkwLayer) {
    encode_fkw_layout(
        w,
        fkw.out_c,
        fkw.in_c,
        fkw.kernel,
        fkw.entries_per_kernel,
        &fkw.patterns,
        &fkw.offsets,
        &fkw.reorder,
        &fkw.index,
        &fkw.stride,
    );
    encode_f32s(w, &fkw.weights);
}

fn decode_fkw(r: &mut ByteReader) -> Result<FkwLayer, ArtifactError> {
    let layout = decode_fkw_layout(r)?;
    let weights = decode_f32s(r)?;
    Ok(FkwLayer {
        out_c: layout.out_c,
        in_c: layout.in_c,
        kernel: layout.kernel,
        entries_per_kernel: layout.entries_per_kernel,
        patterns: layout.patterns,
        offsets: layout.offsets,
        reorder: layout.reorder,
        index: layout.index,
        stride: layout.stride,
        weights,
    })
}

fn encode_qfkw(w: &mut ByteWriter, qfkw: &QuantFkwLayer) {
    encode_fkw_layout(
        w,
        qfkw.out_c,
        qfkw.in_c,
        qfkw.kernel,
        qfkw.entries_per_kernel,
        &qfkw.patterns,
        &qfkw.offsets,
        &qfkw.reorder,
        &qfkw.index,
        &qfkw.stride,
    );
    w.u32(qfkw.act_scale.to_bits());
    encode_f32s(w, &qfkw.scales);
    encode_i8s(w, &qfkw.qweights);
}

fn decode_qfkw(r: &mut ByteReader) -> Result<QuantFkwLayer, ArtifactError> {
    let layout = decode_fkw_layout(r)?;
    let act_scale = f32::from_bits(r.u32()?);
    let scales = decode_f32s(r)?;
    let qweights = decode_i8s(r)?;
    Ok(QuantFkwLayer {
        out_c: layout.out_c,
        in_c: layout.in_c,
        kernel: layout.kernel,
        entries_per_kernel: layout.entries_per_kernel,
        patterns: layout.patterns,
        offsets: layout.offsets,
        reorder: layout.reorder,
        index: layout.index,
        stride: layout.stride,
        qweights,
        scales,
        act_scale,
    })
}

fn encode_tensor(w: &mut ByteWriter, t: &Tensor) {
    w.u32(t.shape().len() as u32);
    for &d in t.shape() {
        w.u32(d as u32);
    }
    encode_f32s(w, t.data());
}

fn decode_tensor(r: &mut ByteReader) -> Result<Tensor, ArtifactError> {
    let rank = r.u32()? as usize;
    if rank > 8 {
        return Err(ArtifactError::Malformed(format!("tensor rank {rank}")));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(r.u32()? as usize);
    }
    let data = decode_f32s(r)?;
    Tensor::from_vec(&shape, data)
        .map_err(|e| ArtifactError::Malformed(format!("tensor payload: {e:?}")))
}

fn encode_f32s(w: &mut ByteWriter, xs: &[f32]) {
    w.u32(xs.len() as u32);
    for &x in xs {
        w.u32(x.to_bits());
    }
}

fn decode_f32s(r: &mut ByteReader) -> Result<Vec<f32>, ArtifactError> {
    let n = r.u32()? as usize;
    r.check_remaining(n * 4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(f32::from_bits(r.u32()?));
    }
    Ok(out)
}

fn encode_i8s(w: &mut ByteWriter, xs: &[i8]) {
    w.u32(xs.len() as u32);
    for &x in xs {
        w.u8(x as u8);
    }
}

fn decode_i8s(r: &mut ByteReader) -> Result<Vec<i8>, ArtifactError> {
    let n = r.u32()? as usize;
    Ok(r.bytes(n)?.iter().map(|&b| b as i8).collect())
}

fn encode_opt_f32s(w: &mut ByteWriter, xs: Option<&[f32]>) {
    match xs {
        Some(xs) => {
            w.u8(1);
            encode_f32s(w, xs);
        }
        None => w.u8(0),
    }
}

fn decode_opt_f32s(r: &mut ByteReader) -> Result<Option<Vec<f32>>, ArtifactError> {
    Ok(if decode_flag(r)? {
        Some(decode_f32s(r)?)
    } else {
        None
    })
}

/// Boolean wire flags are canonically 0 or 1; any other byte is a
/// corrupt stream, not a "truthy" value — accepting it would decode to
/// a plan that no longer round-trips bit-identically.
fn decode_flag(r: &mut ByteReader) -> Result<bool, ArtifactError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(ArtifactError::Malformed(format!(
            "flag byte {b} is not 0 or 1"
        ))),
    }
}

/// Little-endian byte sink.
struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    fn finish(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    fn u16(&mut self, x: u16) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn bytes(&mut self, xs: &[u8]) {
        self.buf.extend_from_slice(xs);
    }

    fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        assert!(bytes.len() <= u16::MAX as usize, "name too long");
        self.u16(bytes.len() as u16);
        self.bytes(bytes);
    }
}

/// Little-endian byte source with bounds checking.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn check_remaining(&self, n: usize) -> Result<(), ArtifactError> {
        if self.buf.len() - self.pos < n {
            Err(ArtifactError::Truncated)
        } else {
            Ok(())
        }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        self.check_remaining(n)?;
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ArtifactError> {
        Ok(u16::from_le_bytes(
            self.bytes(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn u16s(&mut self) -> Result<Vec<u16>, ArtifactError> {
        let n = self.u32()? as usize;
        self.check_remaining(n * 2)?;
        (0..n).map(|_| self.u16()).collect()
    }

    fn u32s(&mut self) -> Result<Vec<u32>, ArtifactError> {
        let n = self.u32()? as usize;
        self.check_remaining(n * 4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    fn str(&mut self) -> Result<String, ArtifactError> {
        let n = self.u16()? as usize;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ArtifactError::Malformed("non-utf8 name".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_model_round_trips() {
        let a = ModelArtifact::chain("empty", [3, 8, 8], vec![]);
        let bytes = a.encode();
        assert_eq!(&bytes[..6], MAGIC);
        let b = ModelArtifact::decode(&bytes).expect("decode");
        assert_eq!(a, b);
    }

    #[test]
    fn dag_plan_round_trips() {
        // input -> relu (slot 1), add(relu, input) -> slot 2.
        let a = ModelArtifact {
            name: "dag".into(),
            input: [2, 4, 4],
            slots: 3,
            steps: vec![
                PlanStep {
                    op: LayerPlan::Relu,
                    inputs: vec![0],
                    output: 1,
                    exec: ExecConfig::default(),
                    precision: Precision::F32,
                },
                PlanStep {
                    op: LayerPlan::Add { relu: true },
                    inputs: vec![1, 0],
                    output: 2,
                    exec: ExecConfig::default(),
                    precision: Precision::F32,
                },
            ],
        };
        let b = ModelArtifact::decode(&a.encode()).expect("decode");
        assert_eq!(a, b);
        assert!(!a.is_chain());
    }

    #[test]
    fn v1_bytes_decode_into_the_chain_plan() {
        let a = ModelArtifact::chain(
            "legacy",
            [1, 4, 4],
            vec![
                LayerPlan::MaxPool {
                    kernel: 2,
                    stride: 2,
                    pad: 0,
                },
                LayerPlan::Flatten,
            ],
        );
        let v1 = a.encode_v1().expect("chains encode as v1");
        assert_eq!(u16::from_le_bytes([v1[6], v1[7]]), VERSION_V1);
        let b = ModelArtifact::decode(&v1).expect("v1 decodes");
        assert_eq!(a, b, "v1 decodes into the equivalent v2 chain plan");
        // And the v2 re-encode of the decoded artifact round-trips.
        assert_eq!(ModelArtifact::decode(&b.encode()).expect("v2"), a);
    }

    #[test]
    fn encode_v1_rejects_dag_plans() {
        let a = ModelArtifact {
            name: "dag".into(),
            input: [1, 4, 4],
            slots: 3,
            steps: vec![
                PlanStep {
                    op: LayerPlan::Relu,
                    inputs: vec![0],
                    output: 1,
                    exec: ExecConfig::default(),
                    precision: Precision::F32,
                },
                PlanStep {
                    op: LayerPlan::Add { relu: false },
                    inputs: vec![1, 0],
                    output: 2,
                    exec: ExecConfig::default(),
                    precision: Precision::F32,
                },
            ],
        };
        assert!(matches!(a.encode_v1(), Err(ArtifactError::Malformed(_))));
    }

    #[test]
    fn aliasing_and_use_before_def_are_rejected() {
        // A step writing its own input slot.
        let aliased = ModelArtifact {
            name: "alias".into(),
            input: [1, 4, 4],
            slots: 2,
            steps: vec![PlanStep {
                op: LayerPlan::Relu,
                inputs: vec![1],
                output: 1,
                exec: ExecConfig::default(),
                precision: Precision::F32,
            }],
        };
        assert!(matches!(
            ModelArtifact::decode_verified(&aliased.encode()),
            Err(ArtifactError::Rejected(_))
        ));
        // A step reading a slot no earlier step wrote.
        let undef = ModelArtifact {
            name: "undef".into(),
            input: [1, 4, 4],
            slots: 3,
            steps: vec![PlanStep {
                op: LayerPlan::Relu,
                inputs: vec![2],
                output: 1,
                exec: ExecConfig::default(),
                precision: Precision::F32,
            }],
        };
        assert!(matches!(
            ModelArtifact::decode_verified(&undef.encode()),
            Err(ArtifactError::Rejected(_))
        ));
        // An add with chain arity.
        let bad_arity =
            ModelArtifact::chain("arity", [1, 4, 4], vec![LayerPlan::Add { relu: false }]);
        assert!(matches!(
            ModelArtifact::decode_verified(&bad_arity.encode()),
            Err(ArtifactError::Rejected(_))
        ));
    }

    #[test]
    fn huge_unbacked_slot_count_is_rejected_without_allocating() {
        // A tiny buffer declaring a giant slot count must fail with a
        // typed error before any per-slot allocation happens (the
        // verifier checks the slot bound before allocating its per-slot
        // state).
        let mut artifact = ModelArtifact::chain("huge", [1, 4, 4], vec![]);
        artifact.slots = 100_000_000;
        assert!(matches!(
            ModelArtifact::decode_verified(&artifact.encode()),
            Err(ArtifactError::Rejected(_))
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            ModelArtifact::decode(b"NOTDNN rest"),
            Err(ArtifactError::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = ModelArtifact::chain("v", [1, 1, 1], vec![]).encode();
        bytes[6] = 0xFF;
        bytes[7] = 0xFF;
        assert!(matches!(
            ModelArtifact::decode(&bytes),
            Err(ArtifactError::UnsupportedVersion(0xFFFF))
        ));
    }

    #[test]
    fn truncation_is_detected_not_panicking() {
        let chain = ModelArtifact::chain(
            "t",
            [2, 4, 4],
            vec![LayerPlan::MaxPool {
                kernel: 2,
                stride: 2,
                pad: 0,
            }],
        );
        for bytes in [chain.encode(), chain.encode_v1().expect("v1")] {
            for cut in 0..bytes.len() {
                let r = ModelArtifact::decode(&bytes[..cut]);
                assert!(r.is_err(), "cut at {cut} must error");
            }
        }
    }

    #[test]
    fn degenerate_maxpool_window_is_rejected_by_verifier() {
        let bytes = ModelArtifact::chain(
            "z",
            [1, 4, 4],
            vec![LayerPlan::MaxPool {
                kernel: 0,
                stride: 0,
                pad: 0,
            }],
        )
        .encode();
        assert!(matches!(
            ModelArtifact::decode_verified(&bytes),
            Err(ArtifactError::Rejected(_))
        ));
    }

    #[test]
    fn out_of_range_fkw_index_is_rejected_by_verifier() {
        use patdnn_compiler::fkr::filter_kernel_reorder;
        use patdnn_core::pattern_set::PatternSet;
        use patdnn_core::project::prune_layer;
        use patdnn_tensor::rng::Rng;

        let mut rng = Rng::seed_from(1);
        let mut w = Tensor::randn(&[4, 4, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("t", &mut w, &set, 8);
        let order = filter_kernel_reorder(&lp);
        let mut fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        // Corrupt one kernel's input-channel index past the layer width.
        fkw.index[0] = fkw.in_c as u16;
        let bytes = ModelArtifact::chain(
            "corrupt",
            [4, 6, 6],
            vec![LayerPlan::PatternConv {
                name: "c".into(),
                stride: 1,
                pad: 1,
                fkw,
                bias: None,
                relu: false,
            }],
        )
        .encode();
        assert!(matches!(
            ModelArtifact::decode_verified(&bytes),
            Err(ArtifactError::Rejected(_))
        ));
    }

    /// A tuned config distinct from the default in every field that has
    /// alternatives.
    fn tuned_exec() -> ExecConfig {
        ExecConfig {
            opt_level: OptLevel::ReorderLre,
            tuning: TuningConfig {
                permute: LoopPermutation::CoCiHw,
                blocked: false,
                tile_oc: 64,
                tile_hw: 8,
                unroll_oc: 2,
                unroll_w: 4,
            },
            threads: 3,
            algo: ConvAlgo::Im2col,
        }
    }

    fn two_step_chain() -> ModelArtifact {
        ModelArtifact::chain(
            "t",
            [1, 4, 4],
            vec![
                LayerPlan::MaxPool {
                    kernel: 2,
                    stride: 2,
                    pad: 0,
                },
                LayerPlan::Flatten,
            ],
        )
    }

    #[test]
    fn v3_round_trips_per_step_exec_configs() {
        let mut a = two_step_chain();
        a.steps[0].exec = tuned_exec();
        let bytes = a.encode();
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), VERSION);
        let b = ModelArtifact::decode(&bytes).expect("v3 decodes");
        assert_eq!(a, b, "per-step configs survive the round trip");
        assert_eq!(b.steps[0].exec, tuned_exec());
        assert_eq!(b.steps[1].exec, ExecConfig::default());
    }

    #[test]
    fn v2_bytes_decode_with_default_exec_configs() {
        let a = two_step_chain();
        let v2 = a.encode_v2().expect("default-config plans encode as v2");
        assert_eq!(u16::from_le_bytes([v2[6], v2[7]]), VERSION_V2);
        let b = ModelArtifact::decode(&v2).expect("v2 decodes");
        assert_eq!(a, b, "v2 decodes into the default-config plan");
        assert!(b.steps.iter().all(|s| s.exec == ExecConfig::default()));
        // And the v3 re-encode of the decoded artifact round-trips.
        assert_eq!(ModelArtifact::decode(&b.encode()).expect("v3"), a);
    }

    #[test]
    fn legacy_encoders_reject_tuned_plans() {
        let mut a = two_step_chain();
        a.steps[1].exec = tuned_exec();
        assert!(matches!(a.encode_v2(), Err(ArtifactError::Malformed(_))));
        assert!(matches!(a.encode_v1(), Err(ArtifactError::Malformed(_))));
    }

    #[test]
    fn v5_round_trips_per_step_algorithm_choice() {
        let mut a = two_step_chain();
        a.steps[0].exec.algo = ConvAlgo::Winograd;
        a.steps[1].exec = tuned_exec(); // algo: Im2col
        let bytes = a.encode();
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), VERSION);
        let b = ModelArtifact::decode(&bytes).expect("v5 decodes");
        assert_eq!(a, b, "per-step algorithm choices survive the codec");
        assert_eq!(b.steps[0].exec.algo, ConvAlgo::Winograd);
        assert_eq!(b.steps[1].exec.algo, ConvAlgo::Im2col);
    }

    #[test]
    fn v4_bytes_decode_with_direct_algos() {
        let mut a = two_step_chain();
        a.steps[0].exec = tuned_exec();
        a.steps[0].exec.algo = ConvAlgo::Direct;
        let v4 = a.encode_v4().expect("direct plans encode as v4");
        assert_eq!(u16::from_le_bytes([v4[6], v4[7]]), VERSION_V4);
        let b = ModelArtifact::decode(&v4).expect("v4 decodes");
        assert_eq!(a, b, "v4 decodes into the tuned direct plan");
        assert!(b.steps.iter().all(|s| s.exec.algo == ConvAlgo::Direct));
        // And the current re-encode of the decoded artifact round-trips.
        assert_eq!(ModelArtifact::decode(&b.encode()).expect("v5"), a);
    }

    #[test]
    fn pre_v5_encoders_reject_algorithm_choice_with_typed_errors() {
        let mut a = two_step_chain();
        a.steps[1].exec.algo = ConvAlgo::Im2col;
        for (version, result) in [("v4", a.encode_v4()), ("v3", a.encode_v3())] {
            let err = result.expect_err("pre-v5 encoders must refuse algorithm choice");
            assert!(
                matches!(&err, ArtifactError::Malformed(msg) if msg.contains("algorithm")),
                "{version}: got {err}"
            );
        }
    }

    /// First step's exec config starts right after magic(6), version(2),
    /// name(2 + 1), input(12), slots(4), count(4), n_inputs(1),
    /// input slot(4), output slot(4), precision(1): byte 41. Field
    /// layout from there: opt(1) permute(1) blocked(1) tile_oc(2)
    /// tile_hw(2) unroll_oc(2) unroll_w(2) threads(2) — 13 bytes, then
    /// the v5 algorithm tag.
    const FIRST_EXEC_OFFSET: usize = 41;

    /// The v5 per-step algorithm tag follows the fixed-width exec record.
    const FIRST_ALGO_OFFSET: usize = FIRST_EXEC_OFFSET + 13;

    /// The first step's precision byte sits right before its exec config.
    const FIRST_PRECISION_OFFSET: usize = FIRST_EXEC_OFFSET - 1;

    #[test]
    fn bad_tile_sizes_are_rejected_by_verifier() {
        // Corrupt the encoded tile fields (encode itself refuses invalid
        // configs, so malformed bytes are forged directly). The bytes
        // decode — tile bounds are semantic — but never verify.
        for (field_offset, value) in [(3u16, 12u16), (3, 0), (5, 2048), (5, 0)] {
            let mut bytes = two_step_chain().encode();
            let at = FIRST_EXEC_OFFSET + field_offset as usize;
            bytes[at..at + 2].copy_from_slice(&value.to_le_bytes());
            assert!(
                matches!(
                    ModelArtifact::decode_verified(&bytes),
                    Err(ArtifactError::Rejected(_))
                ),
                "tile field at +{field_offset} = {value} must be rejected"
            );
        }
    }

    #[test]
    fn unknown_opt_level_tag_is_rejected_at_decode() {
        let a = two_step_chain();
        let mut bytes = a.encode();
        assert_eq!(bytes[FIRST_EXEC_OFFSET], 3, "encoded Full opt level");
        bytes[FIRST_EXEC_OFFSET] = 9;
        assert!(matches!(
            ModelArtifact::decode(&bytes),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_algo_tag_is_rejected_at_decode() {
        let a = two_step_chain();
        let mut bytes = a.encode();
        assert_eq!(bytes[FIRST_ALGO_OFFSET], 0, "encoded Direct algo tag");
        bytes[FIRST_ALGO_OFFSET] = 7;
        assert!(matches!(
            ModelArtifact::decode(&bytes),
            Err(ArtifactError::Malformed(msg)) if msg.contains("algorithm")
        ));
    }

    #[test]
    fn zero_threads_is_rejected_by_verifier() {
        let mut bytes = two_step_chain().encode();
        let at = FIRST_EXEC_OFFSET + 11; // threads field
        bytes[at..at + 2].copy_from_slice(&0u16.to_le_bytes());
        assert!(matches!(
            ModelArtifact::decode_verified(&bytes),
            Err(ArtifactError::Rejected(_))
        ));
    }

    #[test]
    #[should_panic(expected = "encodable exec config")]
    fn encode_refuses_invalid_exec_configs_instead_of_truncating() {
        let mut a = two_step_chain();
        // Would truncate to a different, valid-looking value as u16.
        a.steps[0].exec.threads = 65544;
        a.encode();
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = ModelArtifact::chain("t", [1, 2, 2], vec![]).encode();
        bytes.push(0);
        assert!(matches!(
            ModelArtifact::decode(&bytes),
            Err(ArtifactError::Malformed(_))
        ));
    }

    /// A small INT8-quantized artifact: one quantized pattern conv, a
    /// flatten, and a quantized FC.
    fn quantized_artifact(seed: u64) -> ModelArtifact {
        use patdnn_compiler::fkr::filter_kernel_reorder;
        use patdnn_compiler::quant::QuantFkwLayer;
        use patdnn_core::pattern_set::PatternSet;
        use patdnn_core::project::prune_layer;
        use patdnn_tensor::rng::Rng;

        let mut rng = Rng::seed_from(seed);
        let mut w = Tensor::randn(&[4, 3, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("qc", &mut w, &set, 6);
        let order = filter_kernel_reorder(&lp);
        let fkw = patdnn_compiler::fkw::FkwLayer::from_pruned(&w, &lp, &set, &order);
        let qfkw = QuantFkwLayer::from_fkw(&fkw, 2.5);
        let in_f = 4 * 6 * 6;
        ModelArtifact::chain(
            "quant",
            [3, 6, 6],
            vec![
                LayerPlan::QuantPatternConv {
                    name: "qc".into(),
                    stride: 1,
                    pad: 1,
                    qfkw,
                    bias: Some(vec![0.1, -0.2, 0.3, 0.0]),
                    relu: true,
                },
                LayerPlan::Flatten,
                LayerPlan::QuantFc {
                    name: "qfc".into(),
                    out_f: 2,
                    in_f,
                    qweights: (0..2 * in_f).map(|i| (i % 255) as u8 as i8).collect(),
                    scales: vec![0.01, 0.02],
                    act_scale: 0.05,
                    bias: vec![0.5, -0.5],
                },
            ],
        )
    }

    #[test]
    fn v4_round_trips_quantized_steps_with_precision_tags() {
        let a = quantized_artifact(51);
        assert_eq!(a.steps[0].precision, Precision::Int8);
        assert_eq!(a.steps[1].precision, Precision::F32);
        assert_eq!(a.steps[2].precision, Precision::Int8);
        let bytes = a.encode();
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), VERSION);
        let b = ModelArtifact::decode(&bytes).expect("v4 decodes");
        assert_eq!(a, b, "quantized payloads survive the round trip");
    }

    #[test]
    fn v3_bytes_decode_with_f32_precision() {
        let mut a = two_step_chain();
        a.steps[0].exec = tuned_exec();
        // v3 predates per-step algorithm choice: only direct plans encode.
        a.steps[0].exec.algo = ConvAlgo::Direct;
        let v3 = a.encode_v3().expect("f32 plans encode as v3");
        assert_eq!(u16::from_le_bytes([v3[6], v3[7]]), VERSION_V3);
        let b = ModelArtifact::decode(&v3).expect("v3 decodes");
        assert_eq!(a, b, "v3 decodes into the tuned f32 plan");
        assert!(b.steps.iter().all(|s| s.precision == Precision::F32));
        // And the v4 re-encode of the decoded artifact round-trips.
        assert_eq!(ModelArtifact::decode(&b.encode()).expect("v4"), a);
    }

    #[test]
    fn legacy_encoders_refuse_quantized_plans() {
        let a = quantized_artifact(52);
        for (version, result) in [
            ("v3", a.encode_v3()),
            ("v2", a.encode_v2()),
            ("v1", a.encode_v1()),
        ] {
            let err = result.expect_err("legacy encoders must refuse int8 steps");
            assert!(
                matches!(&err, ArtifactError::Malformed(msg) if msg.contains("int8")),
                "{version}: got {err}"
            );
        }
    }

    #[test]
    fn forged_precision_tag_is_rejected() {
        // Claim Int8 over an f32 payload: typed rejection from the
        // verifier's precision-flow check, not a wrong executor at
        // serve time.
        let mut bytes = two_step_chain().encode();
        assert_eq!(bytes[FIRST_PRECISION_OFFSET], 0, "encoded F32 tag");
        bytes[FIRST_PRECISION_OFFSET] = 1;
        assert!(matches!(
            ModelArtifact::decode_verified(&bytes),
            Err(ArtifactError::Rejected(_))
        ));
        // An unknown precision tag is rejected outright.
        let mut bytes = two_step_chain().encode();
        bytes[FIRST_PRECISION_OFFSET] = 7;
        assert!(matches!(
            ModelArtifact::decode(&bytes),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn invalid_quant_scales_are_rejected_by_verifier() {
        for bad_scale in [0.0f32, -0.5, f32::NAN, f32::INFINITY] {
            let mut a = quantized_artifact(53);
            let LayerPlan::QuantFc { scales, .. } = &mut a.steps[2].op else {
                panic!("third step is the quant fc");
            };
            scales[1] = bad_scale;
            assert!(
                matches!(
                    ModelArtifact::decode_verified(&a.encode()),
                    Err(ArtifactError::Rejected(_))
                ),
                "scale {bad_scale} must be rejected"
            );
        }
        // And a poisoned activation scale on the conv.
        let mut a = quantized_artifact(54);
        let LayerPlan::QuantPatternConv { qfkw, .. } = &mut a.steps[0].op else {
            panic!("first step is the quant conv");
        };
        qfkw.act_scale = f32::NAN;
        assert!(matches!(
            ModelArtifact::decode_verified(&a.encode()),
            Err(ArtifactError::Rejected(_))
        ));
    }

    #[test]
    fn overflow_prone_accumulation_depth_is_rejected_by_verifier() {
        // A quantized FC whose reduction depth could overflow i32 in the
        // worst case must fail with a typed rejection at verified load,
        // not produce wrapped logits (or panic) at serve time.
        let in_f = 200_000; // > i32::MAX / 127^2
        let a = ModelArtifact::chain(
            "wide",
            [1, 1, in_f],
            vec![
                LayerPlan::Flatten,
                LayerPlan::QuantFc {
                    name: "wide_fc".into(),
                    out_f: 1,
                    in_f,
                    qweights: vec![1i8; in_f],
                    scales: vec![0.01],
                    act_scale: 0.05,
                    bias: vec![0.0],
                },
            ],
        );
        assert!(matches!(
            ModelArtifact::decode_verified(&a.encode()),
            Err(ArtifactError::Rejected(_))
        ));
    }

    #[test]
    fn quantized_artifact_truncation_is_detected_not_panicking() {
        let bytes = quantized_artifact(55).encode();
        for cut in 0..bytes.len() {
            assert!(
                ModelArtifact::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must error"
            );
        }
    }
}
