//! The versioned model artifact format.
//!
//! A [`ModelArtifact`] is the on-disk form of a compiled pruned network:
//! per-layer FKW compressed weights plus layer geometry and the plan's
//! buffer-slot topology, enough to rebuild an
//! [`crate::engine::Engine`] without retraining, re-pruning, or
//! re-running filter-kernel reorder. The codec is a hand-rolled
//! little-endian byte format (the container builds offline, so no
//! serialization framework is used):
//!
//! ```text
//! "PATDNN" magic | u16 version | model name | input [c, h, w]
//! u32 slot count | u32 step count | tagged step records:
//!   u8 op tag | u8 n_inputs | u32 input slots... | u32 output slot
//!   | op payload (see LayerPlan)
//! ```
//!
//! Version 3 (current) additionally records a per-step [`ExecConfig`]
//! — the auto-tuner's chosen optimization level, tile/unroll parameters
//! and thread schedule (§5.5) — so a tuned artifact serves tuned
//! without retuning at load. Version 2 encodes the explicit DAG plan:
//! every step reads one or more buffer *slots* and writes one, slot 0
//! being the network input. Slot ids come from the compiler's liveness
//! analysis ([`crate::compile`]), so two values whose live ranges do
//! not overlap share a buffer. Version 1 artifacts (implicit chains, no
//! topology) still decode: each record `i` is synthesized as reading
//! slot `i` and writing slot `i + 1`, which is exactly the chain plan.
//! v1 and v2 artifacts carry no execution configs; every step decodes
//! to [`ExecConfig::default`], reproducing the pre-v3 engine behavior
//! bit for bit.
//!
//! Weights are stored as raw `f32` bit patterns, so a save → load round
//! trip is bitwise lossless. Decoding validates slot topology (bounds,
//! def-before-use, no in-place aliasing) so malformed plans fail at
//! load, not at request time.

use std::fmt;
use std::path::Path;

use patdnn_compiler::fkw::FkwLayer;
use patdnn_compiler::tune::space::{LoopPermutation, TuningConfig};
use patdnn_core::pattern::Pattern;
use patdnn_runtime::pattern_exec::OptLevel;
use patdnn_tensor::Tensor;

/// File magic.
pub const MAGIC: &[u8; 6] = b"PATDNN";
/// Current format version (DAG plans with per-step execution configs).
pub const VERSION: u16 = 3;
/// The DAG format without execution configs; still decodable.
pub const VERSION_V2: u16 = 2;
/// The legacy chain format (no slot topology); still decodable.
pub const VERSION_V1: u16 = 1;

/// Errors produced while decoding an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// The buffer does not start with the `PATDNN` magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A structural invariant failed while decoding.
    Malformed(String),
    /// Filesystem error during save/load.
    Io(std::io::Error),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => write!(f, "not a PatDNN artifact (bad magic)"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact version {v} (max {VERSION})")
            }
            ArtifactError::Truncated => write!(f, "artifact truncated"),
            ArtifactError::Malformed(msg) => write!(f, "malformed artifact: {msg}"),
            ArtifactError::Io(e) => write!(f, "artifact i/o: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// One compiled operation of the executable plan.
///
/// Convolution records carry only weight-side geometry (stride/pad plus
/// whatever the weight arrays imply); spatial input sizes are derived at
/// engine-build time from the artifact's input shape, so one artifact
/// serves any compatible spatial resolution.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerPlan {
    /// Pattern-pruned convolution in FKW storage.
    PatternConv {
        /// Layer name.
        name: String,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
        /// FKW compressed weights.
        fkw: FkwLayer,
        /// Per-filter bias, if any.
        bias: Option<Vec<f32>>,
        /// Whether a ReLU was fused into this convolution.
        relu: bool,
    },
    /// Dense (unpruned or unpatternable) convolution.
    DenseConv {
        /// Layer name.
        name: String,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
        /// OIHW weights.
        weights: Tensor,
        /// Per-filter bias, if any.
        bias: Option<Vec<f32>>,
        /// Whether a ReLU was fused into this convolution.
        relu: bool,
    },
    /// Max pooling.
    MaxPool {
        /// Window size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
    },
    /// Global average pooling to `[batch, c, 1, 1]`.
    GlobalAvgPool,
    /// Flatten to `[batch, features]`.
    Flatten,
    /// Standalone ReLU (post-FC; post-conv ReLUs are fused).
    Relu,
    /// Fully-connected layer.
    Fc {
        /// Layer name.
        name: String,
        /// Weights, shape `[out_f, in_f]`.
        weights: Tensor,
        /// Per-output bias.
        bias: Vec<f32>,
    },
    /// Elementwise addition of two slots (residual join).
    Add {
        /// Whether a ReLU was fused into this join.
        relu: bool,
    },
}

impl LayerPlan {
    /// Short kind label for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            LayerPlan::PatternConv { .. } => "pattern-conv",
            LayerPlan::DenseConv { .. } => "dense-conv",
            LayerPlan::MaxPool { .. } => "maxpool",
            LayerPlan::GlobalAvgPool => "gap",
            LayerPlan::Flatten => "flatten",
            LayerPlan::Relu => "relu",
            LayerPlan::Fc { .. } => "fc",
            LayerPlan::Add { .. } => "add",
        }
    }

    /// How many slots this op reads.
    pub fn arity(&self) -> usize {
        match self {
            LayerPlan::Add { .. } => 2,
            _ => 1,
        }
    }
}

/// The executor configuration of one plan step: the auto-tuner's
/// per-layer choices (§5.5) persisted in the artifact so a tuned plan
/// serves tuned without retuning at load.
///
/// Only pattern-conv steps are sensitive to it today (the other ops
/// have no tuning knobs and carry the default). Tile and unroll sizes
/// must be nonzero powers of two — the codec rejects anything else at
/// decode with a typed [`ArtifactError::Malformed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecConfig {
    /// Optimization level of the pattern executor (Figure 13 levels).
    pub opt_level: OptLevel,
    /// Loop order, blocking, tile and unroll factors.
    pub tuning: TuningConfig,
    /// Intra-layer CPU threads (1 = serial; >1 uses the runtime's
    /// FKR-balanced parallel schedule).
    pub threads: usize,
}

impl Default for ExecConfig {
    /// The untuned configuration every pre-v3 artifact decodes to:
    /// `OptLevel::Full` at the global tuned default, serial.
    fn default() -> Self {
        ExecConfig {
            opt_level: OptLevel::Full,
            tuning: TuningConfig::tuned_default(),
            threads: 1,
        }
    }
}

/// Largest tile size the codec accepts.
const MAX_TILE: usize = 1024;
/// Largest unroll factor the codec accepts.
const MAX_UNROLL: usize = 64;
/// Largest per-step thread count the codec accepts.
const MAX_THREADS: usize = 256;

impl ExecConfig {
    /// The default config with an explicit thread schedule.
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig {
            threads,
            ..ExecConfig::default()
        }
    }

    /// Structural validation: tile/unroll sizes are nonzero powers of
    /// two within codec bounds and the thread count is sane. Runs at
    /// decode and again at engine build.
    pub fn validate(&self) -> Result<(), String> {
        let pow2 = |what: &str, x: usize, max: usize| -> Result<(), String> {
            if x == 0 || !x.is_power_of_two() || x > max {
                Err(format!("{what} {x} is not a power of two in 1..={max}"))
            } else {
                Ok(())
            }
        };
        pow2("tile_oc", self.tuning.tile_oc, MAX_TILE)?;
        pow2("tile_hw", self.tuning.tile_hw, MAX_TILE)?;
        pow2("unroll_oc", self.tuning.unroll_oc, MAX_UNROLL)?;
        pow2("unroll_w", self.tuning.unroll_w, MAX_UNROLL)?;
        if self.threads == 0 || self.threads > MAX_THREADS {
            return Err(format!("thread count {} out of range", self.threads));
        }
        Ok(())
    }

    /// Compact human-readable form for plan dumps, e.g.
    /// `Reorder+LRE+Tune cohwci_b tile 16x32 unroll 4x8 1t`.
    pub fn summary(&self) -> String {
        format!(
            "{} {} tile {}x{} unroll {}x{} {}t",
            self.opt_level.label(),
            self.tuning.permute.label(self.tuning.blocked),
            self.tuning.tile_oc,
            self.tuning.tile_hw,
            self.tuning.unroll_oc,
            self.tuning.unroll_w,
            self.threads,
        )
    }
}

/// One step of the executable DAG plan: an op plus the buffer slots it
/// reads and the slot it writes. Slot 0 is the network input and is
/// never written.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// The operation.
    pub op: LayerPlan,
    /// Slots read, in op order (conv input; `Add` reads two).
    pub inputs: Vec<usize>,
    /// Slot written. Never 0 and never one of `inputs` (steps are not
    /// in-place, so the engine can borrow inputs and output disjointly).
    pub output: usize,
    /// The executor configuration this step runs with.
    pub exec: ExecConfig,
}

/// A compiled model: input geometry plus the executable DAG plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// Model name (registry key by convention).
    pub name: String,
    /// Per-item input shape `[c, h, w]`.
    pub input: [usize; 3],
    /// Total buffer slots, including slot 0 (the network input).
    pub slots: usize,
    /// The plan steps in execution order (producers before consumers).
    pub steps: Vec<PlanStep>,
}

impl ModelArtifact {
    /// Builds a chain-plan artifact from a bare op list: step `i` reads
    /// slot `i` and writes slot `i + 1`. This is the v1 layout and the
    /// natural form for straight-line models and tests.
    pub fn chain(name: &str, input: [usize; 3], ops: Vec<LayerPlan>) -> Self {
        let steps = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| PlanStep {
                op,
                inputs: vec![i],
                output: i + 1,
                exec: ExecConfig::default(),
            })
            .collect::<Vec<_>>();
        ModelArtifact {
            name: name.to_owned(),
            input,
            slots: steps.len() + 1,
            steps,
        }
    }

    /// Total bytes of weight payload (FKW weights + dense weights + FC
    /// weights), for size reporting.
    pub fn weight_bytes(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match &s.op {
                LayerPlan::PatternConv { fkw, .. } => fkw.total_bytes(),
                LayerPlan::DenseConv { weights, .. } => weights.len() * 4,
                LayerPlan::Fc { weights, .. } => weights.len() * 4,
                _ => 0,
            })
            .sum()
    }

    /// Whether the plan is a straight chain in v1 layout (step `i` reads
    /// slot `i`, writes slot `i + 1`, no joins).
    pub fn is_chain(&self) -> bool {
        self.slots == self.steps.len() + 1
            && self
                .steps
                .iter()
                .enumerate()
                .all(|(i, s)| s.inputs[..] == [i] && s.output == i + 1)
    }

    /// Encodes the artifact to its binary form (current version).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(MAGIC);
        w.u16(VERSION);
        w.str(&self.name);
        for d in self.input {
            w.u32(d as u32);
        }
        w.u32(self.slots as u32);
        w.u32(self.steps.len() as u32);
        for step in &self.steps {
            encode_step(&mut w, step);
        }
        w.finish()
    }

    /// Encodes the artifact in the legacy v1 chain layout (no slot
    /// topology, no execution configs). Fails unless
    /// [`ModelArtifact::is_chain`] and every step carries the default
    /// config; kept so the backward-compatibility path stays testable
    /// against real v1 bytes.
    pub fn encode_v1(&self) -> Result<Vec<u8>, ArtifactError> {
        if !self.is_chain() {
            return Err(ArtifactError::Malformed(
                "v1 cannot represent non-chain plans".into(),
            ));
        }
        self.require_default_configs("v1")?;
        let mut w = ByteWriter::new();
        w.bytes(MAGIC);
        w.u16(VERSION_V1);
        w.str(&self.name);
        for d in self.input {
            w.u32(d as u32);
        }
        w.u32(self.steps.len() as u32);
        for step in &self.steps {
            if matches!(step.op, LayerPlan::Add { .. }) {
                return Err(ArtifactError::Malformed("v1 has no add op".into()));
            }
            encode_op(&mut w, &step.op);
        }
        Ok(w.finish())
    }

    /// Encodes the artifact in the v2 DAG layout (slot topology but no
    /// execution configs). Fails if any step carries a non-default
    /// config — v2 cannot represent tuned plans, and a silently-lossy
    /// encode would break the codec's round-trip invariant.
    pub fn encode_v2(&self) -> Result<Vec<u8>, ArtifactError> {
        self.require_default_configs("v2")?;
        let mut w = ByteWriter::new();
        w.bytes(MAGIC);
        w.u16(VERSION_V2);
        w.str(&self.name);
        for d in self.input {
            w.u32(d as u32);
        }
        w.u32(self.slots as u32);
        w.u32(self.steps.len() as u32);
        for step in &self.steps {
            encode_step_topology(&mut w, step);
            encode_op(&mut w, &step.op);
        }
        Ok(w.finish())
    }

    fn require_default_configs(&self, version: &str) -> Result<(), ArtifactError> {
        if let Some(i) = self
            .steps
            .iter()
            .position(|s| s.exec != ExecConfig::default())
        {
            return Err(ArtifactError::Malformed(format!(
                "{version} cannot represent per-step exec configs (step {i} is tuned)"
            )));
        }
        Ok(())
    }

    /// Decodes an artifact from its binary form (v1, v2 or v3).
    pub fn decode(buf: &[u8]) -> Result<Self, ArtifactError> {
        let mut r = ByteReader::new(buf);
        if r.bytes(MAGIC.len())? != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = r.u16()?;
        if version == 0 || version > VERSION {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let name = r.str()?;
        let input = [r.u32()? as usize, r.u32()? as usize, r.u32()? as usize];
        let artifact = if version == VERSION_V1 {
            // v1: bare op records form an implicit chain.
            let count = r.u32()? as usize;
            let mut ops = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                ops.push(decode_op(&mut r)?);
            }
            ModelArtifact::chain(&name, input, ops)
        } else {
            let slots = r.u32()? as usize;
            let count = r.u32()? as usize;
            let mut steps = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                steps.push(decode_step(&mut r, version)?);
            }
            ModelArtifact {
                name,
                input,
                slots,
                steps,
            }
        };
        if !r.is_empty() {
            return Err(ArtifactError::Malformed("trailing bytes".into()));
        }
        artifact.validate_topology()?;
        Ok(artifact)
    }

    /// Structural validation of the slot topology: bounds,
    /// def-before-use, per-op arity, and the no-aliasing invariant the
    /// engine's disjoint borrows rely on. Runs at decode and again at
    /// engine build (artifacts can be constructed in memory).
    pub(crate) fn validate_topology(&self) -> Result<(), ArtifactError> {
        let malformed = |msg: String| ArtifactError::Malformed(msg);
        if self.slots == 0 {
            return Err(malformed("plan needs at least the input slot".into()));
        }
        // Each step writes exactly one slot, so a meaningful plan never
        // declares more than steps + 1 (input) slots. Checked before the
        // per-slot allocations below so a tiny malformed buffer cannot
        // request gigabytes.
        if self.slots > self.steps.len() + 1 {
            return Err(malformed(format!(
                "{} slots declared but {} steps can write at most {}",
                self.slots,
                self.steps.len(),
                self.steps.len() + 1
            )));
        }
        let mut written = vec![false; self.slots];
        written[0] = true; // the network input
        for (i, step) in self.steps.iter().enumerate() {
            let kind = step.op.kind();
            if step.inputs.len() != step.op.arity() {
                return Err(malformed(format!(
                    "step {i} ({kind}): reads {} slots, op arity is {}",
                    step.inputs.len(),
                    step.op.arity()
                )));
            }
            for &s in &step.inputs {
                if s >= self.slots {
                    return Err(malformed(format!(
                        "step {i} ({kind}): input slot {s} out of range"
                    )));
                }
                if !written[s] {
                    return Err(malformed(format!(
                        "step {i} ({kind}): reads slot {s} before any step wrote it"
                    )));
                }
            }
            if step.output == 0 || step.output >= self.slots {
                return Err(malformed(format!(
                    "step {i} ({kind}): output slot {} out of range",
                    step.output
                )));
            }
            if step.inputs.contains(&step.output) {
                return Err(malformed(format!(
                    "step {i} ({kind}): writes its own input slot {}",
                    step.output
                )));
            }
            step.exec
                .validate()
                .map_err(|msg| malformed(format!("step {i} ({kind}): exec config: {msg}")))?;
            written[step.output] = true;
        }
        Ok(())
    }

    /// Writes the encoded artifact to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads and decodes an artifact from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        Self::decode(&std::fs::read(path)?)
    }
}

const TAG_PATTERN_CONV: u8 = 0;
const TAG_DENSE_CONV: u8 = 1;
const TAG_MAXPOOL: u8 = 2;
const TAG_GAP: u8 = 3;
const TAG_FLATTEN: u8 = 4;
const TAG_RELU: u8 = 5;
const TAG_FC: u8 = 6;
const TAG_ADD: u8 = 7;

fn encode_step_topology(w: &mut ByteWriter, step: &PlanStep) {
    assert!(step.inputs.len() <= u8::MAX as usize, "step arity");
    w.u8(step.inputs.len() as u8);
    for &s in &step.inputs {
        w.u32(s as u32);
    }
    w.u32(step.output as u32);
}

fn encode_step(w: &mut ByteWriter, step: &PlanStep) {
    encode_step_topology(w, step);
    encode_exec_config(w, &step.exec);
    encode_op(w, &step.op);
}

fn decode_step(r: &mut ByteReader, version: u16) -> Result<PlanStep, ArtifactError> {
    let n = r.u8()? as usize;
    let mut inputs = Vec::with_capacity(n);
    for _ in 0..n {
        inputs.push(r.u32()? as usize);
    }
    let output = r.u32()? as usize;
    // v2 predates per-step configs; its steps decode to the default.
    // Gated on the fixed v2 boundary (not the floating current VERSION)
    // so future format bumps keep reading v3's config bytes.
    let exec = if version > VERSION_V2 {
        decode_exec_config(r)?
    } else {
        ExecConfig::default()
    };
    let op = decode_op(r)?;
    Ok(PlanStep {
        op,
        inputs,
        output,
        exec,
    })
}

const OPT_TAGS: [OptLevel; 4] = [
    OptLevel::NoOpt,
    OptLevel::Reorder,
    OptLevel::ReorderLre,
    OptLevel::Full,
];

fn encode_exec_config(w: &mut ByteWriter, cfg: &ExecConfig) {
    // Validated before writing: the fields below are cast to u16, and a
    // silently truncated config would decode valid-looking but
    // different, breaking the codec's round-trip invariant.
    cfg.validate().expect("encodable exec config");
    let opt = OPT_TAGS
        .iter()
        .position(|&l| l == cfg.opt_level)
        .expect("every opt level has a tag");
    w.u8(opt as u8);
    w.u8(match cfg.tuning.permute {
        LoopPermutation::CoCiHw => 0,
        LoopPermutation::CoHwCi => 1,
    });
    w.u8(u8::from(cfg.tuning.blocked));
    w.u16(cfg.tuning.tile_oc as u16);
    w.u16(cfg.tuning.tile_hw as u16);
    w.u16(cfg.tuning.unroll_oc as u16);
    w.u16(cfg.tuning.unroll_w as u16);
    w.u16(cfg.threads as u16);
}

fn decode_exec_config(r: &mut ByteReader) -> Result<ExecConfig, ArtifactError> {
    let malformed = |msg: String| ArtifactError::Malformed(msg);
    let opt_level = *OPT_TAGS
        .get(r.u8()? as usize)
        .ok_or_else(|| malformed("unknown opt level tag".into()))?;
    let permute = match r.u8()? {
        0 => LoopPermutation::CoCiHw,
        1 => LoopPermutation::CoHwCi,
        other => return Err(malformed(format!("unknown loop permutation tag {other}"))),
    };
    let blocked = match r.u8()? {
        0 => false,
        1 => true,
        other => return Err(malformed(format!("blocked flag must be 0/1, got {other}"))),
    };
    let cfg = ExecConfig {
        opt_level,
        tuning: TuningConfig {
            permute,
            blocked,
            tile_oc: r.u16()? as usize,
            tile_hw: r.u16()? as usize,
            unroll_oc: r.u16()? as usize,
            unroll_w: r.u16()? as usize,
        },
        threads: r.u16()? as usize,
    };
    cfg.validate()
        .map_err(|msg| malformed(format!("exec config: {msg}")))?;
    Ok(cfg)
}

fn encode_op(w: &mut ByteWriter, layer: &LayerPlan) {
    match layer {
        LayerPlan::PatternConv {
            name,
            stride,
            pad,
            fkw,
            bias,
            relu,
        } => {
            w.u8(TAG_PATTERN_CONV);
            w.str(name);
            w.u32(*stride as u32);
            w.u32(*pad as u32);
            w.u8(u8::from(*relu));
            encode_opt_f32s(w, bias.as_deref());
            encode_fkw(w, fkw);
        }
        LayerPlan::DenseConv {
            name,
            stride,
            pad,
            weights,
            bias,
            relu,
        } => {
            w.u8(TAG_DENSE_CONV);
            w.str(name);
            w.u32(*stride as u32);
            w.u32(*pad as u32);
            w.u8(u8::from(*relu));
            encode_opt_f32s(w, bias.as_deref());
            encode_tensor(w, weights);
        }
        LayerPlan::MaxPool {
            kernel,
            stride,
            pad,
        } => {
            w.u8(TAG_MAXPOOL);
            w.u32(*kernel as u32);
            w.u32(*stride as u32);
            w.u32(*pad as u32);
        }
        LayerPlan::GlobalAvgPool => w.u8(TAG_GAP),
        LayerPlan::Flatten => w.u8(TAG_FLATTEN),
        LayerPlan::Relu => w.u8(TAG_RELU),
        LayerPlan::Fc {
            name,
            weights,
            bias,
        } => {
            w.u8(TAG_FC);
            w.str(name);
            encode_tensor(w, weights);
            encode_f32s(w, bias);
        }
        LayerPlan::Add { relu } => {
            w.u8(TAG_ADD);
            w.u8(u8::from(*relu));
        }
    }
}

fn decode_op(r: &mut ByteReader) -> Result<LayerPlan, ArtifactError> {
    let malformed = |msg: String| ArtifactError::Malformed(msg);
    let tag = r.u8()?;
    Ok(match tag {
        TAG_PATTERN_CONV => {
            let name = r.str()?;
            let stride = r.u32()? as usize;
            let pad = r.u32()? as usize;
            let relu = r.u8()? != 0;
            let bias = decode_opt_f32s(r)?;
            let fkw = decode_fkw(r)?;
            if stride == 0 {
                return Err(malformed(format!("{name}: zero conv stride")));
            }
            if let Some(b) = &bias {
                if b.len() != fkw.out_c {
                    return Err(malformed(format!("{name}: bias arity")));
                }
            }
            LayerPlan::PatternConv {
                name,
                stride,
                pad,
                fkw,
                bias,
                relu,
            }
        }
        TAG_DENSE_CONV => {
            let name = r.str()?;
            let stride = r.u32()? as usize;
            let pad = r.u32()? as usize;
            let relu = r.u8()? != 0;
            let bias = decode_opt_f32s(r)?;
            let weights = decode_tensor(r)?;
            if stride == 0 {
                return Err(malformed(format!("{name}: zero conv stride")));
            }
            let [oc, _, kh, kw] = weights.shape() else {
                return Err(malformed(format!("{name}: conv weights must be OIHW")));
            };
            if *kh == 0 || *kw == 0 || *oc == 0 {
                return Err(malformed(format!("{name}: degenerate conv weights")));
            }
            if let Some(b) = &bias {
                if b.len() != *oc {
                    return Err(malformed(format!("{name}: bias arity")));
                }
            }
            LayerPlan::DenseConv {
                name,
                stride,
                pad,
                weights,
                bias,
                relu,
            }
        }
        TAG_MAXPOOL => {
            let kernel = r.u32()? as usize;
            let stride = r.u32()? as usize;
            let pad = r.u32()? as usize;
            if kernel == 0 || stride == 0 {
                return Err(malformed("degenerate maxpool window".into()));
            }
            LayerPlan::MaxPool {
                kernel,
                stride,
                pad,
            }
        }
        TAG_GAP => LayerPlan::GlobalAvgPool,
        TAG_FLATTEN => LayerPlan::Flatten,
        TAG_RELU => LayerPlan::Relu,
        TAG_FC => {
            let name = r.str()?;
            let weights = decode_tensor(r)?;
            let bias = decode_f32s(r)?;
            let [out_f, _] = weights.shape() else {
                return Err(malformed(format!("{name}: fc weights must be 2-d")));
            };
            if bias.len() != *out_f {
                return Err(malformed(format!("{name}: fc bias arity")));
            }
            LayerPlan::Fc {
                name,
                weights,
                bias,
            }
        }
        TAG_ADD => LayerPlan::Add { relu: r.u8()? != 0 },
        other => {
            return Err(ArtifactError::Malformed(format!(
                "unknown layer tag {other}"
            )))
        }
    })
}

fn encode_fkw(w: &mut ByteWriter, fkw: &FkwLayer) {
    w.u32(fkw.out_c as u32);
    w.u32(fkw.in_c as u32);
    w.u32(fkw.kernel as u32);
    w.u32(fkw.entries_per_kernel as u32);
    w.u32(fkw.patterns.len() as u32);
    for p in &fkw.patterns {
        w.u8(p.kernel() as u8);
        w.u64(p.mask());
    }
    w.u32(fkw.offsets.len() as u32);
    for &o in &fkw.offsets {
        w.u32(o);
    }
    w.u32(fkw.reorder.len() as u32);
    for &x in &fkw.reorder {
        w.u16(x);
    }
    w.u32(fkw.index.len() as u32);
    for &x in &fkw.index {
        w.u16(x);
    }
    w.u32(fkw.stride.len() as u32);
    for &x in &fkw.stride {
        w.u16(x);
    }
    encode_f32s(w, &fkw.weights);
}

fn decode_fkw(r: &mut ByteReader) -> Result<FkwLayer, ArtifactError> {
    let out_c = r.u32()? as usize;
    let in_c = r.u32()? as usize;
    let kernel = r.u32()? as usize;
    let entries_per_kernel = r.u32()? as usize;
    let np = r.u32()? as usize;
    let mut patterns = Vec::with_capacity(np.min(256));
    for _ in 0..np {
        let k = r.u8()? as usize;
        let mask = r.u64()?;
        if !(1..=7).contains(&k) {
            return Err(ArtifactError::Malformed(format!("pattern kernel {k}")));
        }
        let valid = (1u64 << (k * k)) - 1;
        if mask & !valid != 0 {
            return Err(ArtifactError::Malformed(
                "pattern mask outside kernel".into(),
            ));
        }
        patterns.push(Pattern::from_mask(k, mask));
    }
    let offsets = r.u32s()?;
    let reorder = r.u16s()?;
    let index = r.u16s()?;
    let stride = r.u16s()?;
    let weights = decode_f32s(r)?;
    let malformed = |msg: &str| ArtifactError::Malformed(format!("FKW {msg}"));
    // Structural validation: everything the executors index with has to
    // be in range here, so a corrupted artifact fails at load instead of
    // panicking inside a worker at request time.
    if out_c == 0 || in_c == 0 || !(1..=7).contains(&kernel) {
        return Err(malformed("degenerate layer dimensions"));
    }
    if patterns
        .iter()
        .any(|p| p.kernel() != kernel || p.entries() != entries_per_kernel)
    {
        return Err(malformed("pattern table disagrees with layer kernel"));
    }
    if offsets.len() != out_c + 1 || reorder.len() != out_c {
        return Err(malformed("filter-level arity"));
    }
    if offsets[0] != 0
        || offsets.windows(2).any(|w| w[0] > w[1])
        || *offsets.last().expect("out_c+1 entries") as usize != index.len()
    {
        return Err(malformed("offsets are not a cumulative kernel count"));
    }
    if reorder.iter().any(|&f| f as usize >= out_c) {
        return Err(malformed("reorder entry out of filter range"));
    }
    if index.iter().any(|&ic| ic as usize >= in_c) {
        return Err(malformed("kernel index out of channel range"));
    }
    if stride.len() != out_c * (np + 1) {
        return Err(malformed("stride arity"));
    }
    for row in 0..out_c {
        let runs = &stride[row * (np + 1)..(row + 1) * (np + 1)];
        let row_kernels = (offsets[row + 1] - offsets[row]) as usize;
        if runs[0] != 0 || runs.windows(2).any(|w| w[0] > w[1]) || runs[np] as usize != row_kernels
        {
            return Err(malformed("stride runs do not tile the filter"));
        }
    }
    if weights.len() != index.len() * entries_per_kernel {
        return Err(malformed("weight arity"));
    }
    Ok(FkwLayer {
        out_c,
        in_c,
        kernel,
        entries_per_kernel,
        patterns,
        offsets,
        reorder,
        index,
        stride,
        weights,
    })
}

fn encode_tensor(w: &mut ByteWriter, t: &Tensor) {
    w.u32(t.shape().len() as u32);
    for &d in t.shape() {
        w.u32(d as u32);
    }
    encode_f32s(w, t.data());
}

fn decode_tensor(r: &mut ByteReader) -> Result<Tensor, ArtifactError> {
    let rank = r.u32()? as usize;
    if rank > 8 {
        return Err(ArtifactError::Malformed(format!("tensor rank {rank}")));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(r.u32()? as usize);
    }
    let data = decode_f32s(r)?;
    Tensor::from_vec(&shape, data)
        .map_err(|e| ArtifactError::Malformed(format!("tensor payload: {e:?}")))
}

fn encode_f32s(w: &mut ByteWriter, xs: &[f32]) {
    w.u32(xs.len() as u32);
    for &x in xs {
        w.u32(x.to_bits());
    }
}

fn decode_f32s(r: &mut ByteReader) -> Result<Vec<f32>, ArtifactError> {
    let n = r.u32()? as usize;
    r.check_remaining(n * 4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(f32::from_bits(r.u32()?));
    }
    Ok(out)
}

fn encode_opt_f32s(w: &mut ByteWriter, xs: Option<&[f32]>) {
    match xs {
        Some(xs) => {
            w.u8(1);
            encode_f32s(w, xs);
        }
        None => w.u8(0),
    }
}

fn decode_opt_f32s(r: &mut ByteReader) -> Result<Option<Vec<f32>>, ArtifactError> {
    Ok(if r.u8()? != 0 {
        Some(decode_f32s(r)?)
    } else {
        None
    })
}

/// Little-endian byte sink.
struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    fn finish(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    fn u16(&mut self, x: u16) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn bytes(&mut self, xs: &[u8]) {
        self.buf.extend_from_slice(xs);
    }

    fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        assert!(bytes.len() <= u16::MAX as usize, "name too long");
        self.u16(bytes.len() as u16);
        self.bytes(bytes);
    }
}

/// Little-endian byte source with bounds checking.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn check_remaining(&self, n: usize) -> Result<(), ArtifactError> {
        if self.buf.len() - self.pos < n {
            Err(ArtifactError::Truncated)
        } else {
            Ok(())
        }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        self.check_remaining(n)?;
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ArtifactError> {
        Ok(u16::from_le_bytes(
            self.bytes(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn u16s(&mut self) -> Result<Vec<u16>, ArtifactError> {
        let n = self.u32()? as usize;
        self.check_remaining(n * 2)?;
        (0..n).map(|_| self.u16()).collect()
    }

    fn u32s(&mut self) -> Result<Vec<u32>, ArtifactError> {
        let n = self.u32()? as usize;
        self.check_remaining(n * 4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    fn str(&mut self) -> Result<String, ArtifactError> {
        let n = self.u16()? as usize;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ArtifactError::Malformed("non-utf8 name".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_model_round_trips() {
        let a = ModelArtifact::chain("empty", [3, 8, 8], vec![]);
        let bytes = a.encode();
        assert_eq!(&bytes[..6], MAGIC);
        let b = ModelArtifact::decode(&bytes).expect("decode");
        assert_eq!(a, b);
    }

    #[test]
    fn dag_plan_round_trips() {
        // input -> relu (slot 1), add(relu, input) -> slot 2.
        let a = ModelArtifact {
            name: "dag".into(),
            input: [2, 4, 4],
            slots: 3,
            steps: vec![
                PlanStep {
                    op: LayerPlan::Relu,
                    inputs: vec![0],
                    output: 1,
                    exec: ExecConfig::default(),
                },
                PlanStep {
                    op: LayerPlan::Add { relu: true },
                    inputs: vec![1, 0],
                    output: 2,
                    exec: ExecConfig::default(),
                },
            ],
        };
        let b = ModelArtifact::decode(&a.encode()).expect("decode");
        assert_eq!(a, b);
        assert!(!a.is_chain());
    }

    #[test]
    fn v1_bytes_decode_into_the_chain_plan() {
        let a = ModelArtifact::chain(
            "legacy",
            [1, 4, 4],
            vec![
                LayerPlan::MaxPool {
                    kernel: 2,
                    stride: 2,
                    pad: 0,
                },
                LayerPlan::Flatten,
            ],
        );
        let v1 = a.encode_v1().expect("chains encode as v1");
        assert_eq!(u16::from_le_bytes([v1[6], v1[7]]), VERSION_V1);
        let b = ModelArtifact::decode(&v1).expect("v1 decodes");
        assert_eq!(a, b, "v1 decodes into the equivalent v2 chain plan");
        // And the v2 re-encode of the decoded artifact round-trips.
        assert_eq!(ModelArtifact::decode(&b.encode()).expect("v2"), a);
    }

    #[test]
    fn encode_v1_rejects_dag_plans() {
        let a = ModelArtifact {
            name: "dag".into(),
            input: [1, 4, 4],
            slots: 3,
            steps: vec![
                PlanStep {
                    op: LayerPlan::Relu,
                    inputs: vec![0],
                    output: 1,
                    exec: ExecConfig::default(),
                },
                PlanStep {
                    op: LayerPlan::Add { relu: false },
                    inputs: vec![1, 0],
                    output: 2,
                    exec: ExecConfig::default(),
                },
            ],
        };
        assert!(matches!(a.encode_v1(), Err(ArtifactError::Malformed(_))));
    }

    #[test]
    fn aliasing_and_use_before_def_are_rejected() {
        // A step writing its own input slot.
        let aliased = ModelArtifact {
            name: "alias".into(),
            input: [1, 4, 4],
            slots: 2,
            steps: vec![PlanStep {
                op: LayerPlan::Relu,
                inputs: vec![1],
                output: 1,
                exec: ExecConfig::default(),
            }],
        };
        assert!(matches!(
            ModelArtifact::decode(&aliased.encode()),
            Err(ArtifactError::Malformed(_))
        ));
        // A step reading a slot no earlier step wrote.
        let undef = ModelArtifact {
            name: "undef".into(),
            input: [1, 4, 4],
            slots: 3,
            steps: vec![PlanStep {
                op: LayerPlan::Relu,
                inputs: vec![2],
                output: 1,
                exec: ExecConfig::default(),
            }],
        };
        assert!(matches!(
            ModelArtifact::decode(&undef.encode()),
            Err(ArtifactError::Malformed(_))
        ));
        // An add with chain arity.
        let bad_arity =
            ModelArtifact::chain("arity", [1, 4, 4], vec![LayerPlan::Add { relu: false }]);
        assert!(matches!(
            ModelArtifact::decode(&bad_arity.encode()),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn huge_unbacked_slot_count_is_rejected_without_allocating() {
        // A tiny buffer declaring a giant slot count must fail with a
        // typed error before any per-slot allocation happens.
        let mut artifact = ModelArtifact::chain("huge", [1, 4, 4], vec![]);
        artifact.slots = 100_000_000;
        assert!(matches!(
            ModelArtifact::decode(&artifact.encode()),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            ModelArtifact::decode(b"NOTDNN rest"),
            Err(ArtifactError::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = ModelArtifact::chain("v", [1, 1, 1], vec![]).encode();
        bytes[6] = 0xFF;
        bytes[7] = 0xFF;
        assert!(matches!(
            ModelArtifact::decode(&bytes),
            Err(ArtifactError::UnsupportedVersion(0xFFFF))
        ));
    }

    #[test]
    fn truncation_is_detected_not_panicking() {
        let chain = ModelArtifact::chain(
            "t",
            [2, 4, 4],
            vec![LayerPlan::MaxPool {
                kernel: 2,
                stride: 2,
                pad: 0,
            }],
        );
        for bytes in [chain.encode(), chain.encode_v1().expect("v1")] {
            for cut in 0..bytes.len() {
                let r = ModelArtifact::decode(&bytes[..cut]);
                assert!(r.is_err(), "cut at {cut} must error");
            }
        }
    }

    #[test]
    fn degenerate_maxpool_window_is_rejected_at_decode() {
        let bytes = ModelArtifact::chain(
            "z",
            [1, 4, 4],
            vec![LayerPlan::MaxPool {
                kernel: 0,
                stride: 0,
                pad: 0,
            }],
        )
        .encode();
        assert!(matches!(
            ModelArtifact::decode(&bytes),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn out_of_range_fkw_index_is_rejected_at_decode() {
        use patdnn_compiler::fkr::filter_kernel_reorder;
        use patdnn_core::pattern_set::PatternSet;
        use patdnn_core::project::prune_layer;
        use patdnn_tensor::rng::Rng;

        let mut rng = Rng::seed_from(1);
        let mut w = Tensor::randn(&[4, 4, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("t", &mut w, &set, 8);
        let order = filter_kernel_reorder(&lp);
        let mut fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        // Corrupt one kernel's input-channel index past the layer width.
        fkw.index[0] = fkw.in_c as u16;
        let bytes = ModelArtifact::chain(
            "corrupt",
            [4, 6, 6],
            vec![LayerPlan::PatternConv {
                name: "c".into(),
                stride: 1,
                pad: 1,
                fkw,
                bias: None,
                relu: false,
            }],
        )
        .encode();
        assert!(matches!(
            ModelArtifact::decode(&bytes),
            Err(ArtifactError::Malformed(_))
        ));
    }

    /// A tuned config distinct from the default in every field that has
    /// alternatives.
    fn tuned_exec() -> ExecConfig {
        ExecConfig {
            opt_level: OptLevel::ReorderLre,
            tuning: TuningConfig {
                permute: LoopPermutation::CoCiHw,
                blocked: false,
                tile_oc: 64,
                tile_hw: 8,
                unroll_oc: 2,
                unroll_w: 4,
            },
            threads: 3,
        }
    }

    fn two_step_chain() -> ModelArtifact {
        ModelArtifact::chain(
            "t",
            [1, 4, 4],
            vec![
                LayerPlan::MaxPool {
                    kernel: 2,
                    stride: 2,
                    pad: 0,
                },
                LayerPlan::Flatten,
            ],
        )
    }

    #[test]
    fn v3_round_trips_per_step_exec_configs() {
        let mut a = two_step_chain();
        a.steps[0].exec = tuned_exec();
        let bytes = a.encode();
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), VERSION);
        let b = ModelArtifact::decode(&bytes).expect("v3 decodes");
        assert_eq!(a, b, "per-step configs survive the round trip");
        assert_eq!(b.steps[0].exec, tuned_exec());
        assert_eq!(b.steps[1].exec, ExecConfig::default());
    }

    #[test]
    fn v2_bytes_decode_with_default_exec_configs() {
        let a = two_step_chain();
        let v2 = a.encode_v2().expect("default-config plans encode as v2");
        assert_eq!(u16::from_le_bytes([v2[6], v2[7]]), VERSION_V2);
        let b = ModelArtifact::decode(&v2).expect("v2 decodes");
        assert_eq!(a, b, "v2 decodes into the default-config plan");
        assert!(b.steps.iter().all(|s| s.exec == ExecConfig::default()));
        // And the v3 re-encode of the decoded artifact round-trips.
        assert_eq!(ModelArtifact::decode(&b.encode()).expect("v3"), a);
    }

    #[test]
    fn legacy_encoders_reject_tuned_plans() {
        let mut a = two_step_chain();
        a.steps[1].exec = tuned_exec();
        assert!(matches!(a.encode_v2(), Err(ArtifactError::Malformed(_))));
        assert!(matches!(a.encode_v1(), Err(ArtifactError::Malformed(_))));
    }

    /// First step's exec config starts right after magic(6), version(2),
    /// name(2 + 1), input(12), slots(4), count(4), n_inputs(1),
    /// input slot(4), output slot(4): byte 40. Field layout from there:
    /// opt(1) permute(1) blocked(1) tile_oc(2) tile_hw(2) unroll_oc(2)
    /// unroll_w(2) threads(2).
    const FIRST_EXEC_OFFSET: usize = 40;

    #[test]
    fn bad_tile_sizes_are_rejected_at_decode() {
        // Corrupt the encoded tile fields (encode itself refuses invalid
        // configs, so malformed bytes are forged directly).
        for (field_offset, value) in [(3u16, 12u16), (3, 0), (5, 2048), (5, 0)] {
            let mut bytes = two_step_chain().encode();
            let at = FIRST_EXEC_OFFSET + field_offset as usize;
            bytes[at..at + 2].copy_from_slice(&value.to_le_bytes());
            assert!(
                matches!(
                    ModelArtifact::decode(&bytes),
                    Err(ArtifactError::Malformed(_))
                ),
                "tile field at +{field_offset} = {value} must be rejected"
            );
        }
    }

    #[test]
    fn unknown_opt_level_tag_is_rejected_at_decode() {
        let a = two_step_chain();
        let mut bytes = a.encode();
        assert_eq!(bytes[FIRST_EXEC_OFFSET], 3, "encoded Full opt level");
        bytes[FIRST_EXEC_OFFSET] = 9;
        assert!(matches!(
            ModelArtifact::decode(&bytes),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn zero_threads_is_rejected_at_decode() {
        let mut bytes = two_step_chain().encode();
        let at = FIRST_EXEC_OFFSET + 11; // threads field
        bytes[at..at + 2].copy_from_slice(&0u16.to_le_bytes());
        assert!(matches!(
            ModelArtifact::decode(&bytes),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    #[should_panic(expected = "encodable exec config")]
    fn encode_refuses_invalid_exec_configs_instead_of_truncating() {
        let mut a = two_step_chain();
        // Would truncate to a different, valid-looking value as u16.
        a.steps[0].exec.threads = 65544;
        a.encode();
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = ModelArtifact::chain("t", [1, 2, 2], vec![]).encode();
        bytes.push(0);
        assert!(matches!(
            ModelArtifact::decode(&bytes),
            Err(ArtifactError::Malformed(_))
        ));
    }
}
