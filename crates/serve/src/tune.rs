//! Per-layer execution tuning for the serving compiler (§5.5 wired
//! into deployment).
//!
//! PatDNN's compile-time story selects a tiling/unroll configuration
//! *per layer*: a GA explorer generates the configuration space and a
//! performance estimator trained on collected history predicts the best
//! point for quick deployment. This module runs both paths at
//! `serve::compile` time and returns the [`ExecConfig`] each
//! pattern-conv plan step is persisted with:
//!
//! - [`TunePolicy::Estimate`] — the paper's quick-deployment path: fit
//!   a [`PerfEstimator`] on this layer's cost surface (an analytic
//!   model over its [`FkwLayer`] storage and [`Conv2dGeometry`]), then
//!   pick the predicted-best configuration and the cheapest
//!   [`OptLevel`] at that configuration. Fully deterministic.
//! - [`TunePolicy::Measure`] — GA exploration with real timed runs via
//!   [`AutoTuner`], bounded by a measurement budget. The untuned
//!   default is always included in the final timed comparison, so a
//!   measured plan is never slower than the default by construction
//!   (up to timer noise).
//!
//! The analytic cost model is not a cycle-accurate simulator; it is a
//! smooth, deterministic surface that ranks configurations the way the
//! executor's loop structure does (amortized dispatch under
//! output-channel unrolling, cache-driven spatial blocking, wasted
//! traversal when tiles exceed the layer), which is what the estimator
//! needs to learn and what makes per-layer choices non-uniform across a
//! real network.

use std::time::Instant;

use patdnn_compiler::fkw::FkwLayer;
use patdnn_compiler::tune::ga::GaConfig;
use patdnn_compiler::tune::space::{ConfigSpace, ConvAlgo, LoopPermutation, TuningConfig};
use patdnn_compiler::tune::{AutoTuner, PerfEstimator};
use patdnn_runtime::executor::ConvExecutor;
use patdnn_runtime::parallel::{ParallelPattern, Schedule};
use patdnn_runtime::pattern_exec::{OptLevel, PatternConv};
use patdnn_tensor::rng::Rng;
use patdnn_tensor::{Conv2dGeometry, Tensor};

use crate::algo_exec::{winograd_eligible, Im2colConv, WinogradConv};
use crate::artifact::ExecConfig;

/// How `serve::compile` selects each pattern-conv step's [`ExecConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunePolicy {
    /// No tuning: every step gets [`ExecConfig::default`] (the pre-tuning
    /// global configuration).
    Off,
    /// Estimator-only quick deployment: per layer, fit a
    /// [`PerfEstimator`] on the analytic cost surface and take its
    /// predicted-best configuration. No timed runs; deterministic.
    Estimate,
    /// GA exploration with real timed runs; `budget` caps (approximately)
    /// the number of distinct configurations measured per layer.
    Measure {
        /// Measured configurations per layer (clamped to at least 4).
        budget: usize,
    },
}

impl TunePolicy {
    /// Short label for reports and plan dumps.
    pub fn label(&self) -> &'static str {
        match self {
            TunePolicy::Off => "off",
            TunePolicy::Estimate => "estimate",
            TunePolicy::Measure { .. } => "measure",
        }
    }
}

/// An approximate L1 working-set budget; spatial blocking starts paying
/// off once a layer's input image overflows it.
const L1_BYTES: f64 = 32.0 * 1024.0;

/// Deterministic analytic cost (arbitrary units, lower is better) of
/// running one pattern layer at `level` with `cfg`.
///
/// The tuning knobs only steer the `Full` executor — the lower levels
/// ignore them, so their cost is configuration-independent (a fixed
/// overhead factor shaped like Figure 13's ablation).
pub fn analytic_cost(
    geo: &Conv2dGeometry,
    fkw: &FkwLayer,
    level: OptLevel,
    cfg: &TuningConfig,
) -> f64 {
    let out_hw = (geo.out_h * geo.out_w) as f64;
    let macs = (fkw.stored_kernels() * fkw.entries_per_kernel) as f64 * out_hw;
    let level_factor = match level {
        OptLevel::NoOpt => 1.60,
        OptLevel::Reorder => 1.28,
        OptLevel::ReorderLre => 1.08,
        OptLevel::Full => 1.0,
    };
    let mut cost = macs * level_factor;
    if level != OptLevel::Full {
        return cost;
    }
    let rows = fkw.out_c as f64;
    let kernels_per_row = (fkw.stored_kernels() as f64 / rows).max(1.0);

    // Output-channel unrolling amortizes the per-row pattern dispatch,
    // but chunks wider than the row's kernel runs reload more than they
    // reuse (filter-level LRE only pays within shared traversals).
    cost += 0.06 * macs / cfg.unroll_oc as f64;
    cost += (cfg.unroll_oc as f64 / kernels_per_row).max(1.0).ln() * 0.06 * macs;

    // Output-channel tiling: fewer tiles mean less tile-loop overhead,
    // but tiles wider than the layer are pure wasted traversal.
    let eff_tile_oc = cfg.tile_oc.min(fkw.out_c) as f64;
    cost += 0.04 * macs * (1.0 - eff_tile_oc / rows);
    cost += (cfg.tile_oc as f64 / rows).max(1.0).ln() * 0.05 * macs;

    // Spatial blocking pays once the input image overflows L1; on
    // cache-resident layers it is pure loop overhead. Oversized spatial
    // tiles approximate the unblocked loop.
    let in_bytes = (geo.in_channels * geo.in_h * geo.in_w * 4) as f64;
    let tile_rows_bytes = cfg.tile_hw as f64 * (geo.in_w * geo.in_channels * 4) as f64;
    if cfg.blocked {
        if in_bytes > L1_BYTES {
            cost -= 0.10 * macs * (L1_BYTES / tile_rows_bytes).min(1.0);
        } else {
            cost += 0.02 * macs;
        }
    } else if in_bytes > L1_BYTES {
        cost += 0.06 * macs;
    }
    cost += 0.03 * macs * (1.0 - 1.0 / rows_of(cfg.tile_hw, geo.out_h));
    cost += (cfg.tile_hw as f64 / geo.out_h.max(1) as f64).max(1.0).ln() * 0.04 * macs;

    // CoHWCi keeps a blocked input span register/cache-resident across
    // filters (the paper's Figure 15 winner is cohwci_b).
    if cfg.permute == LoopPermutation::CoHwCi && cfg.blocked {
        cost -= 0.03 * macs;
    }
    // The LRE interior path is 4-wide; width unrolls far from it cost
    // remainder work or spills.
    cost += (cfg.unroll_w as f64 / 4.0).ln().abs() * 0.02 * macs;
    cost
}

/// Spatial tile count for the tile-loop overhead term.
fn rows_of(tile_hw: usize, out_h: usize) -> f64 {
    (out_h as f64 / tile_hw.min(out_h.max(1)) as f64).ceil()
}

/// Analytic cost of the im2col lowering relative to dense MACs: the
/// packed GEMM retires dense arithmetic at roughly twice the direct
/// executor's per-MAC rate, minus the lowering's expand/pack traffic.
const IM2COL_DENSE_FACTOR: f64 = 0.5;

/// Analytic cost of Winograd `F(2×2, 3×3)` relative to dense MACs:
/// 16/36 multiplies per tile plus transform overhead.
const WINOGRAD_DENSE_FACTOR: f64 = 0.35;

/// Analytic cost of a *densified* lowering of this layer, in the same
/// units as [`analytic_cost`]; `None` when the layer cannot lower that
/// way (`Direct` has no densified cost, Winograd has eligibility
/// rules). Calibrated so heavily pruned layers (where the direct
/// executor's stored-MAC count is far below dense) keep the direct
/// lowering, and only dense-ish layers densify.
pub fn densified_cost(geo: &Conv2dGeometry, fkw: &FkwLayer, algo: ConvAlgo) -> Option<f64> {
    let out_hw = (geo.out_h * geo.out_w) as f64;
    let dense_macs = (fkw.out_c * fkw.in_c * fkw.kernel * fkw.kernel) as f64 * out_hw;
    match algo {
        ConvAlgo::Direct => None,
        ConvAlgo::Im2col => Some(IM2COL_DENSE_FACTOR * dense_macs),
        ConvAlgo::Winograd => winograd_eligible(geo, fkw)
            .ok()
            .map(|()| WINOGRAD_DENSE_FACTOR * dense_macs),
    }
}

/// Picks the cheapest lowering given the direct executor's cost.
///
/// The densified executors are serial, so algorithm choice only opens
/// up on single-threaded schedules — a multi-threaded step always runs
/// direct through the FKR-balanced parallel wrapper.
fn cheapest_algo(
    geo: &Conv2dGeometry,
    fkw: &FkwLayer,
    threads: usize,
    direct_cost: f64,
) -> ConvAlgo {
    let mut algo = ConvAlgo::Direct;
    if threads != 1 {
        return algo;
    }
    let mut best = direct_cost;
    for cand in [ConvAlgo::Im2col, ConvAlgo::Winograd] {
        if let Some(cost) = densified_cost(geo, fkw, cand) {
            if cost < best {
                best = cost;
                algo = cand;
            }
        }
    }
    algo
}

/// The estimator path: fit a per-layer MLP on the analytic cost surface,
/// pick the predicted-best configuration over the whole space, then the
/// cheapest opt level at that configuration, then the cheapest lowering
/// (direct / im2col / winograd) by the analytic per-algorithm costs.
pub fn estimate_exec_config(
    geo: &Conv2dGeometry,
    fkw: &FkwLayer,
    threads: usize,
    rng: &mut Rng,
) -> ExecConfig {
    let space = ConfigSpace::standard();
    let all = space.enumerate();
    // Train on a deterministic third of the space; predicting over the
    // full enumeration is the paper's "quick prediction of the optimal
    // configuration parameters" on a new platform.
    let xs: Vec<Vec<f32>> = all.iter().step_by(3).map(|c| c.features()).collect();
    let ys: Vec<f64> = all
        .iter()
        .step_by(3)
        .map(|c| analytic_cost(geo, fkw, OptLevel::Full, c))
        .collect();
    let mut est = PerfEstimator::new(xs[0].len(), rng);
    est.fit(&xs, &ys, 30, rng);
    let tuning = all
        .into_iter()
        .map(|c| {
            let p = est.predict(&c.features());
            (c, p)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite predictions"))
        .expect("standard space is non-empty")
        .0;
    let opt_level = cheapest_level(&tuning, |level, cfg| analytic_cost(geo, fkw, level, cfg));
    let algo = cheapest_algo(
        geo,
        fkw,
        threads,
        analytic_cost(geo, fkw, opt_level, &tuning),
    );
    ExecConfig {
        opt_level,
        tuning,
        threads,
        algo,
    }
}

/// The measured path: GA exploration over timed runs of the real
/// executor on a synthetic input, budget-bounded, with the untuned
/// default kept whenever it times faster than the GA's winner.
///
/// Measurements run under the *deployed* schedule: when the compile
/// options ask for a multi-threaded step, every candidate (and the
/// sticky default) is timed through the same FKR-balanced parallel
/// wrapper the engine will build at load, so the winner is the fastest
/// configuration of what actually serves — not of a serial stand-in.
///
/// On serial schedules the winner then faces a timed *algorithm*
/// run-off against the densified lowerings (im2col + packed GEMM, and
/// Winograd where the layer is eligible), under the same sticky
/// direct-stays margin.
pub fn measure_exec_config(
    geo: &Conv2dGeometry,
    fkw: &FkwLayer,
    bias: Option<&[f32]>,
    budget: usize,
    threads: usize,
    rng: &mut Rng,
) -> ExecConfig {
    let budget = budget.max(4);
    let input = Tensor::randn(&[1, geo.in_channels, geo.in_h, geo.in_w], rng);
    let mut out = Tensor::zeros(&[1, geo.out_channels, geo.out_h, geo.out_w]);
    // Min-of-3 after a warmup run: the standard microbenchmark
    // estimator, robust against scheduler noise on these small layers.
    let mut time_of = |level: OptLevel, cfg: &TuningConfig| -> f64 {
        let exec = PatternConv::new(*geo, fkw.clone(), bias.map(<[f32]>::to_vec), level, *cfg);
        let mut best = f64::INFINITY;
        if threads > 1 {
            let par = ParallelPattern::new(exec, threads, Schedule::Balanced);
            std::hint::black_box(par.run(&input)); // warm the caches
            for _ in 0..3 {
                let t = Instant::now();
                std::hint::black_box(par.run(&input));
                best = best.min(t.elapsed().as_secs_f64());
            }
        } else {
            exec.run_into(&input, &mut out); // warm the caches
            for _ in 0..3 {
                let t = Instant::now();
                exec.run_into(&input, &mut out);
                best = best.min(t.elapsed().as_secs_f64());
            }
        }
        best
    };

    // Size the GA so distinct evaluations stay within the budget
    // (population × (generations + 1) with memoized costs).
    let population = (budget / 3).clamp(4, 10);
    let generations = (budget / population).saturating_sub(1).max(1);
    let ga = GaConfig {
        population,
        generations,
        ..GaConfig::default()
    };
    let mut tuner = AutoTuner::with_config(ConfigSpace::standard(), ga);
    let explored = tuner.tune(|cfg| time_of(OptLevel::Full, cfg), rng);

    // Final selection is a timed run-off of every opt level at the GA
    // winner's tuning against the untuned default — and the default is
    // *sticky*: a candidate must beat it by a clear margin to replace
    // it, so timer noise on small layers (where all levels finish
    // within microseconds of each other) can never talk a measured plan
    // into a configuration slower than the default.
    const KEEP_DEFAULT_MARGIN: f64 = 0.97;
    let default = ExecConfig::default();
    let t_default = time_of(default.opt_level, &default.tuning);
    let (candidate, t_candidate) = OptLevel::all()
        .into_iter()
        .map(|level| {
            let t = time_of(level, &explored.best);
            ((level, explored.best), t)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
        .expect("levels are non-empty");
    let (opt_level, tuning, t_direct) = if t_candidate < t_default * KEEP_DEFAULT_MARGIN {
        (candidate.0, candidate.1, t_candidate)
    } else {
        (default.opt_level, default.tuning, t_default)
    };

    // Algorithm run-off: time the densified lowerings against the
    // chosen direct configuration under the same sticky margin. Only on
    // serial schedules (the densified executors run single-threaded),
    // and Winograd only when the layer passes its eligibility guard.
    let mut algo = ConvAlgo::Direct;
    if threads == 1 {
        let dense = fkw.to_dense();
        let bias_vec: Vec<f32> = bias.map(<[f32]>::to_vec).unwrap_or_default();
        let mut time_algo = |run: &dyn Fn(&Tensor, &mut Tensor)| -> f64 {
            run(&input, &mut out); // warm the caches
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t = Instant::now();
                run(&input, &mut out);
                best = best.min(t.elapsed().as_secs_f64());
            }
            best
        };
        let mut t_best = t_direct;
        let im2col = Im2colConv::new(*geo, &dense, bias_vec.clone());
        let t_im2col = time_algo(&|x, y| im2col.run_into(x, y));
        if t_im2col < t_best * KEEP_DEFAULT_MARGIN {
            t_best = t_im2col;
            algo = ConvAlgo::Im2col;
        }
        if winograd_eligible(geo, fkw).is_ok() {
            let wino = WinogradConv::new(*geo, &dense, bias_vec);
            let t_wino = time_algo(&|x, y| wino.run_into(x, y));
            if t_wino < t_best * KEEP_DEFAULT_MARGIN {
                algo = ConvAlgo::Winograd;
            }
        }
    }
    ExecConfig {
        opt_level,
        tuning,
        threads,
        algo,
    }
}

/// Picks the cheapest opt level at a fixed tuning configuration under
/// the given cost oracle (analytic for `Estimate`, timed for `Measure`).
fn cheapest_level(
    tuning: &TuningConfig,
    mut cost: impl FnMut(OptLevel, &TuningConfig) -> f64,
) -> OptLevel {
    OptLevel::all()
        .into_iter()
        .map(|level| (level, cost(level, tuning)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
        .expect("levels are non-empty")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use patdnn_compiler::fkr::filter_kernel_reorder;
    use patdnn_core::pattern_set::PatternSet;
    use patdnn_core::project::prune_layer;

    fn pruned_layer(
        oc: usize,
        ic: usize,
        hw: usize,
        alpha: usize,
        seed: u64,
    ) -> (Conv2dGeometry, FkwLayer) {
        let mut rng = Rng::seed_from(seed);
        let mut w = Tensor::randn(&[oc, ic, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("t", &mut w, &set, alpha);
        let order = filter_kernel_reorder(&lp);
        let fkw = FkwLayer::from_pruned(&w, &lp, &set, &order);
        (Conv2dGeometry::new(oc, ic, 3, 3, hw, hw, 1, 1), fkw)
    }

    #[test]
    fn analytic_cost_orders_opt_levels_like_figure_13() {
        let (geo, fkw) = pruned_layer(16, 16, 16, 72, 1);
        let cfg = TuningConfig::tuned_default();
        let costs: Vec<f64> = OptLevel::all()
            .into_iter()
            .map(|l| analytic_cost(&geo, &fkw, l, &cfg))
            .collect();
        assert!(
            costs[0] > costs[1] && costs[1] > costs[2] && costs[2] > costs[3],
            "levels must be monotone at a sane config: {costs:?}"
        );
    }

    #[test]
    fn estimate_is_deterministic_and_valid() {
        let (geo, fkw) = pruned_layer(16, 16, 16, 72, 2);
        let a = estimate_exec_config(&geo, &fkw, 1, &mut Rng::seed_from(9));
        let b = estimate_exec_config(&geo, &fkw, 1, &mut Rng::seed_from(9));
        assert_eq!(a, b, "same seed must reproduce the same config");
        a.validate().expect("estimated config is codec-valid");
    }

    #[test]
    fn estimate_differs_across_unlike_layers() {
        // A narrow cache-resident layer and a wide cache-busting layer
        // should not land on the same configuration.
        let (geo_a, fkw_a) = pruned_layer(16, 8, 8, 36, 3);
        let (geo_b, fkw_b) = pruned_layer(64, 64, 32, 1024, 4);
        let a = estimate_exec_config(&geo_a, &fkw_a, 1, &mut Rng::seed_from(5));
        let b = estimate_exec_config(&geo_b, &fkw_b, 1, &mut Rng::seed_from(5));
        assert_ne!(
            a.tuning, b.tuning,
            "per-layer tuning must be geometry-sensitive"
        );
    }

    #[test]
    fn measure_returns_a_valid_config_within_budget_scale() {
        let (geo, fkw) = pruned_layer(8, 8, 8, 24, 6);
        let mut rng = Rng::seed_from(7);
        let cfg = measure_exec_config(&geo, &fkw, None, 8, 2, &mut rng);
        cfg.validate().expect("measured config is codec-valid");
        assert_eq!(cfg.threads, 2, "thread schedule is recorded as given");
        assert_eq!(cfg.algo, ConvAlgo::Direct, "threaded steps stay direct");
    }

    #[test]
    fn measure_algo_runoff_returns_a_valid_serial_config() {
        let (geo, fkw) = pruned_layer(8, 8, 8, 64, 10);
        let mut rng = Rng::seed_from(11);
        let cfg = measure_exec_config(&geo, &fkw, None, 6, 1, &mut rng);
        cfg.validate().expect("measured config is codec-valid");
        assert!(ConvAlgo::all().contains(&cfg.algo));
    }

    #[test]
    fn estimate_keeps_sparse_layers_direct() {
        // ~25% of kernels kept at 4/9 entries each -> density ~0.11:
        // the direct executor does a fraction of the dense arithmetic.
        let (geo, fkw) = pruned_layer(16, 16, 16, 64, 8);
        let cfg = estimate_exec_config(&geo, &fkw, 1, &mut Rng::seed_from(8));
        assert_eq!(cfg.algo, ConvAlgo::Direct);
    }

    #[test]
    fn estimate_densifies_dense_ish_layers_when_serial() {
        // Every kernel kept (alpha = oc*ic) -> density 4/9: the stored
        // MACs approach dense and Winograd's 0.35x wins the analytic
        // run-off — but only on a serial schedule.
        let (geo, fkw) = pruned_layer(16, 16, 16, 256, 9);
        let serial = estimate_exec_config(&geo, &fkw, 1, &mut Rng::seed_from(8));
        assert_eq!(serial.algo, ConvAlgo::Winograd);
        let threaded = estimate_exec_config(&geo, &fkw, 2, &mut Rng::seed_from(8));
        assert_eq!(threaded.algo, ConvAlgo::Direct);
    }
}
