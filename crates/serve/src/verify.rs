//! The plan verifier: abstract interpretation over a decoded artifact.
//!
//! PatDNN's runtime executes blindly fast because everything that could
//! go wrong was ruled out before the first request: the compiler proves
//! the plan and the engine trusts it. This module is that proof,
//! gathered in one place. [`verify`] walks a [`ModelArtifact`]'s step
//! DAG once, propagating abstract values (per-item shapes and
//! precisions) through the buffer slots, and checks every semantic
//! invariant the serving stack relies on:
//!
//! - **Slot lifetimes** — every read slot is in range and written by an
//!   earlier step (def-before-use), no step writes its own input (the
//!   engine's disjoint borrows depend on it), no write is dead (its
//!   value is consumed before being overwritten, or it is the plan
//!   output), and every declared slot is used.
//! - **Shape dataflow** — channel and feature counts match each
//!   payload, convolution and pooling windows fit the flowing spatial
//!   size, residual joins see agreeing branch shapes, and slot reuse is
//!   shape-exact.
//! - **FKW/CSR index bounds** — the compressed-storage index arrays are
//!   exhaustively checked against the declared weight arrays (offsets
//!   cumulative, reorder and channel indices in range, stride runs
//!   tiling each filter), so the executors' inner loops never index out
//!   of bounds.
//! - **Accumulation proof** — every INT8 step's worst-case `i8 × i8 →
//!   i32` reduction depth is proven not to overflow.
//! - **Precision flow** — each step's stamped [`Precision`] agrees with
//!   its payload, and every quantized payload carries strictly positive
//!   finite dequantization scales.
//! - **Exec-config and algorithm eligibility** — tile/unroll/thread
//!   bounds, and the per-step [`ConvAlgo`]: non-direct lowerings are
//!   `f32` pattern-conv only, and Winograd additionally requires the
//!   3×3/stride-1/density conditions
//!   ([`crate::algo_exec::winograd_eligible`]).
//!
//! The verifier is the *single enforcement point* for these semantic
//! invariants: [`ModelArtifact::decode`] performs wire-format checks
//! only, [`ModelArtifact::load`] runs the verifier by default
//! ([`crate::artifact::LoadPolicy::Verify`]), and
//! [`crate::engine::Engine::new`] refuses any plan the verifier
//! rejects — then builds executors with no further checking, reusing
//! the shapes the analysis already computed.
//!
//! [`verify`] never fails fast: it collects *every* violation into a
//! [`VerifyReport`] so an operator linting an artifact
//! (`patdnn-serve --verify-only`) sees the whole damage at once. Each
//! [`Violation`] is typed — step index, slot, invariant class, and an
//! explanation — rather than a bare string.

use std::fmt;

use patdnn_compiler::tune::space::ConvAlgo;
use patdnn_core::pattern::Pattern;
use patdnn_runtime::quant_exec::accumulation_fits_i32;
use patdnn_tensor::{conv_out_dim, Conv2dGeometry};

use crate::algo_exec::winograd_eligible;
use crate::artifact::{LayerPlan, ModelArtifact, PlanStep, Precision};

/// One broken invariant, with enough structure for tooling: the step
/// (and slot, where meaningful) it anchors to, the invariant class
/// ([`Violation::invariant`]), and a human explanation ([`fmt::Display`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The plan declares zero slots; slot 0 (the network input) must
    /// always exist.
    NoInputSlot,
    /// More slots declared than the steps could ever write — each step
    /// writes exactly one slot, so a meaningful plan has at most
    /// `steps + 1` (checked before any per-slot allocation, so a tiny
    /// forged buffer cannot request gigabytes).
    SlotCount {
        /// Declared slot count.
        declared: usize,
        /// Number of plan steps.
        steps: usize,
    },
    /// A step reads a different number of slots than its op consumes.
    ArityMismatch {
        /// Step index.
        step: usize,
        /// Op kind label.
        kind: &'static str,
        /// Slots the step reads.
        got: usize,
        /// Slots the op consumes.
        want: usize,
    },
    /// A step reads a slot outside the declared range.
    InputOutOfRange {
        /// Step index.
        step: usize,
        /// Op kind label.
        kind: &'static str,
        /// The offending slot.
        slot: usize,
        /// Declared slot count.
        slots: usize,
    },
    /// A step reads a slot no earlier step wrote.
    UseBeforeDef {
        /// Step index.
        step: usize,
        /// Op kind label.
        kind: &'static str,
        /// The unwritten slot.
        slot: usize,
    },
    /// A step writes slot 0 (the borrowed input) or a slot outside the
    /// declared range.
    OutputOutOfRange {
        /// Step index.
        step: usize,
        /// Op kind label.
        kind: &'static str,
        /// The offending slot.
        slot: usize,
        /// Declared slot count.
        slots: usize,
    },
    /// A step writes one of its own input slots; the engine borrows
    /// inputs and output disjointly, so in-place steps are forbidden.
    InPlaceWrite {
        /// Step index.
        step: usize,
        /// Op kind label.
        kind: &'static str,
        /// The aliased slot.
        slot: usize,
    },
    /// A step's output is never consumed: it is overwritten (or the
    /// plan ends) before any later step reads it, and it is not the
    /// plan output. Dead stores mean the plan executes work whose
    /// result cannot be observed — a compiled plan never contains one.
    DeadStore {
        /// The step whose write is dead.
        step: usize,
        /// Op kind label.
        kind: &'static str,
        /// The slot whose value is lost.
        slot: usize,
    },
    /// A declared slot is never written and never read.
    UnusedSlot {
        /// The unused slot.
        slot: usize,
    },
    /// A step's stamped precision disagrees with its op payload — an
    /// `i8` payload cannot feed an `f32` executor or vice versa.
    PrecisionMismatch {
        /// Step index.
        step: usize,
        /// Op kind label.
        kind: &'static str,
        /// The precision stamped on the step.
        stamped: Precision,
        /// The precision the payload executes at.
        payload: Precision,
    },
    /// A step's exec config is outside codec bounds (tile/unroll sizes
    /// must be nonzero powers of two, thread counts in range).
    ExecConfigInvalid {
        /// Step index.
        step: usize,
        /// Op kind label.
        kind: &'static str,
        /// What exactly is out of bounds.
        detail: String,
    },
    /// A step demands a convolution lowering it cannot run: non-direct
    /// algorithms are `f32` pattern-conv only, and Winograd has hard
    /// shape/density conditions.
    AlgoIneligible {
        /// Step index.
        step: usize,
        /// Op kind label.
        kind: &'static str,
        /// The demanded algorithm.
        algo: ConvAlgo,
        /// Why the step cannot run it.
        detail: String,
    },
    /// A weight payload's internal structure is inconsistent: FKW/CSR
    /// index arrays out of bounds or mis-sized, weight/bias/scale
    /// arities disagreeing with the declared geometry, or degenerate
    /// dimensions.
    PayloadInvariant {
        /// Step index.
        step: usize,
        /// Layer name (or kind label for unnamed ops).
        name: String,
        /// Which structural invariant failed.
        detail: String,
    },
    /// A quantized payload carries a dequantization scale that is not a
    /// strictly positive finite number; such a scale poisons every
    /// output element.
    ScaleInvalid {
        /// Step index.
        step: usize,
        /// Layer name.
        name: String,
        /// Which scale, and its value.
        detail: String,
    },
    /// An INT8 step's worst-case reduction depth can overflow its `i32`
    /// accumulator.
    AccumulationOverflow {
        /// Step index.
        step: usize,
        /// Layer name.
        name: String,
        /// Reduction depth (input channels or features).
        depth: usize,
        /// Entries accumulated per depth unit.
        entries: usize,
    },
    /// The shape flowing into a step does not satisfy the op: channel
    /// or feature counts disagree with the payload, a window does not
    /// fit the spatial input, a spatial op follows a flatten, or a
    /// residual join's branches disagree.
    ShapeFlow {
        /// Step index.
        step: usize,
        /// Op kind label.
        kind: &'static str,
        /// What about the flowing shape is wrong.
        detail: String,
    },
    /// Two steps write the same slot with different per-item shapes;
    /// liveness-shared buffers must be shape-exact.
    SlotShapeConflict {
        /// The later-writing step.
        step: usize,
        /// The contested slot.
        slot: usize,
        /// Shape of the earlier write.
        existing: Vec<usize>,
        /// Shape of this write.
        got: Vec<usize>,
    },
}

impl Violation {
    /// The step this violation anchors to, when it concerns one.
    pub fn step(&self) -> Option<usize> {
        match self {
            Violation::NoInputSlot | Violation::SlotCount { .. } | Violation::UnusedSlot { .. } => {
                None
            }
            Violation::ArityMismatch { step, .. }
            | Violation::InputOutOfRange { step, .. }
            | Violation::UseBeforeDef { step, .. }
            | Violation::OutputOutOfRange { step, .. }
            | Violation::InPlaceWrite { step, .. }
            | Violation::DeadStore { step, .. }
            | Violation::PrecisionMismatch { step, .. }
            | Violation::ExecConfigInvalid { step, .. }
            | Violation::AlgoIneligible { step, .. }
            | Violation::PayloadInvariant { step, .. }
            | Violation::ScaleInvalid { step, .. }
            | Violation::AccumulationOverflow { step, .. }
            | Violation::ShapeFlow { step, .. }
            | Violation::SlotShapeConflict { step, .. } => Some(*step),
        }
    }

    /// The slot this violation anchors to, when it concerns one.
    pub fn slot(&self) -> Option<usize> {
        match self {
            Violation::InputOutOfRange { slot, .. }
            | Violation::UseBeforeDef { slot, .. }
            | Violation::OutputOutOfRange { slot, .. }
            | Violation::InPlaceWrite { slot, .. }
            | Violation::DeadStore { slot, .. }
            | Violation::UnusedSlot { slot }
            | Violation::SlotShapeConflict { slot, .. } => Some(*slot),
            _ => None,
        }
    }

    /// Stable kebab-case label of the invariant class, for rejection
    /// accounting (the mutation corpus buckets mutants by this).
    pub fn invariant(&self) -> &'static str {
        match self {
            Violation::NoInputSlot => "no-input-slot",
            Violation::SlotCount { .. } => "slot-count",
            Violation::ArityMismatch { .. } => "arity",
            Violation::InputOutOfRange { .. } => "input-slot-range",
            Violation::UseBeforeDef { .. } => "use-before-def",
            Violation::OutputOutOfRange { .. } => "output-slot-range",
            Violation::InPlaceWrite { .. } => "in-place-write",
            Violation::DeadStore { .. } => "dead-store",
            Violation::UnusedSlot { .. } => "unused-slot",
            Violation::PrecisionMismatch { .. } => "precision-flow",
            Violation::ExecConfigInvalid { .. } => "exec-config",
            Violation::AlgoIneligible { .. } => "algo-eligibility",
            Violation::PayloadInvariant { .. } => "payload-invariant",
            Violation::ScaleInvalid { .. } => "scale-invalid",
            Violation::AccumulationOverflow { .. } => "accumulation-overflow",
            Violation::ShapeFlow { .. } => "shape-flow",
            Violation::SlotShapeConflict { .. } => "slot-shape-conflict",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NoInputSlot => write!(f, "plan needs at least the input slot"),
            Violation::SlotCount { declared, steps } => write!(
                f,
                "{declared} slots declared but {steps} steps can write at most {}",
                steps + 1
            ),
            Violation::ArityMismatch {
                step,
                kind,
                got,
                want,
            } => write!(
                f,
                "step {step} ({kind}): reads {got} slots, op arity is {want}"
            ),
            Violation::InputOutOfRange {
                step,
                kind,
                slot,
                slots,
            } => write!(
                f,
                "step {step} ({kind}): input slot {slot} out of range (plan has {slots})"
            ),
            Violation::UseBeforeDef { step, kind, slot } => write!(
                f,
                "step {step} ({kind}): reads slot {slot} before any step wrote it"
            ),
            Violation::OutputOutOfRange {
                step,
                kind,
                slot,
                slots,
            } => write!(
                f,
                "step {step} ({kind}): output slot {slot} out of range (plan has {slots})"
            ),
            Violation::InPlaceWrite { step, kind, slot } => {
                write!(f, "step {step} ({kind}): writes its own input slot {slot}")
            }
            Violation::DeadStore { step, kind, slot } => write!(
                f,
                "step {step} ({kind}): its write to slot {slot} is never read"
            ),
            Violation::UnusedSlot { slot } => {
                write!(f, "slot {slot} is declared but never written or read")
            }
            Violation::PrecisionMismatch {
                step,
                kind,
                stamped,
                payload,
            } => write!(
                f,
                "step {step} ({kind}): stamped precision {} disagrees with the {} op payload",
                stamped.label(),
                payload.label()
            ),
            Violation::ExecConfigInvalid { step, kind, detail } => {
                write!(f, "step {step} ({kind}): exec config: {detail}")
            }
            Violation::AlgoIneligible {
                step,
                kind,
                algo,
                detail,
            } => write!(
                f,
                "step {step} ({kind}): {} lowering rejected: {detail}",
                algo.label()
            ),
            Violation::PayloadInvariant { step, name, detail } => {
                write!(f, "step {step} ({name}): {detail}")
            }
            Violation::ScaleInvalid { step, name, detail } => {
                write!(f, "step {step} ({name}): {detail}")
            }
            Violation::AccumulationOverflow {
                step,
                name,
                depth,
                entries,
            } => write!(
                f,
                "step {step} ({name}): i8 accumulation depth {depth}x{entries} overflows i32"
            ),
            Violation::ShapeFlow { step, kind, detail } => {
                write!(f, "step {step} ({kind}): {detail}")
            }
            Violation::SlotShapeConflict {
                step,
                slot,
                existing,
                got,
            } => write!(
                f,
                "step {step}: slot {slot} shape conflict: {existing:?} vs {got:?} \
                 (artifact compiled for an incompatible resolution)"
            ),
        }
    }
}

/// The result of verifying one artifact: every violation found, plus
/// enough plan metadata to print a useful lint report.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Model name.
    pub model: String,
    /// Number of plan steps analyzed.
    pub steps: usize,
    /// Declared slot count.
    pub slots: usize,
    /// Every broken invariant, in plan order.
    pub violations: Vec<Violation>,
}

impl VerifyReport {
    /// Whether the plan satisfies every invariant.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            write!(
                f,
                "plan {:?} verified: {} steps, {} slots, all invariants hold",
                self.model, self.steps, self.slots
            )
        } else {
            writeln!(
                f,
                "plan {:?} rejected: {} violation(s) across {} steps",
                self.model,
                self.violations.len(),
                self.steps
            )?;
            for v in &self.violations {
                writeln!(f, "  [{}] {v}", v.invariant())?;
            }
            Ok(())
        }
    }
}

/// Shapes the analysis proved, handed to the engine so it never
/// recomputes (or re-checks) the dataflow the verifier already walked.
/// Meaningful only when the accompanying report is clean; a poisoned
/// step (one downstream of a violation) carries empty shapes.
pub(crate) struct PlanFacts {
    /// Per-slot per-item shape; `None` for slot 0 (the borrowed input)
    /// and slots the plan never writes.
    pub slot_shapes: Vec<Option<Vec<usize>>>,
    /// Per-step first-input per-item shape.
    pub in_shapes: Vec<Vec<usize>>,
    /// Per-step output per-item shape.
    pub out_shapes: Vec<Vec<usize>>,
}

/// Verifies every semantic invariant of a decoded plan, collecting all
/// violations instead of stopping at the first.
pub fn verify(artifact: &ModelArtifact) -> VerifyReport {
    analyze(artifact).0
}

/// The full analysis: the public report plus the shape facts the engine
/// builds executors from.
pub(crate) fn analyze(artifact: &ModelArtifact) -> (VerifyReport, PlanFacts) {
    let n = artifact.steps.len();
    let mut facts = PlanFacts {
        slot_shapes: Vec::new(),
        in_shapes: vec![Vec::new(); n],
        out_shapes: vec![Vec::new(); n],
    };
    let mut v: Vec<Violation> = Vec::new();
    let report = |v: Vec<Violation>| VerifyReport {
        model: artifact.name.clone(),
        steps: n,
        slots: artifact.slots,
        violations: v,
    };

    // Plan-level bounds come first: the per-slot state below allocates
    // `slots` entries, so a forged slot count must be refused before it.
    if artifact.slots == 0 {
        v.push(Violation::NoInputSlot);
        return (report(v), facts);
    }
    if artifact.slots > n + 1 {
        v.push(Violation::SlotCount {
            declared: artifact.slots,
            steps: n,
        });
        return (report(v), facts);
    }

    let slots = artifact.slots;
    let mut written = vec![false; slots];
    written[0] = true; // the network input
    let mut ever_read = vec![false; slots];
    // The step whose write to this slot has not been read yet.
    let mut unread_writer: Vec<Option<usize>> = vec![None; slots];
    let mut slot_shapes: Vec<Option<Vec<usize>>> = vec![None; slots];
    let input_shape: Vec<usize> = artifact.input.to_vec();

    for (i, step) in artifact.steps.iter().enumerate() {
        let kind = step.op.kind();
        let mut inputs_ok = true;
        if step.inputs.len() != step.op.arity() {
            v.push(Violation::ArityMismatch {
                step: i,
                kind,
                got: step.inputs.len(),
                want: step.op.arity(),
            });
            inputs_ok = false;
        }
        for &s in &step.inputs {
            if s >= slots {
                v.push(Violation::InputOutOfRange {
                    step: i,
                    kind,
                    slot: s,
                    slots,
                });
                inputs_ok = false;
                continue;
            }
            if !written[s] {
                v.push(Violation::UseBeforeDef {
                    step: i,
                    kind,
                    slot: s,
                });
                inputs_ok = false;
            }
            ever_read[s] = true;
            unread_writer[s] = None;
        }

        let out = step.output;
        let mut output_ok = true;
        if out == 0 || out >= slots {
            v.push(Violation::OutputOutOfRange {
                step: i,
                kind,
                slot: out,
                slots,
            });
            output_ok = false;
        }
        if step.inputs.contains(&out) {
            v.push(Violation::InPlaceWrite {
                step: i,
                kind,
                slot: out,
            });
            output_ok = false;
        }

        if let Err(detail) = step.exec.validate() {
            v.push(Violation::ExecConfigInvalid {
                step: i,
                kind,
                detail,
            });
        }
        if step.precision != step.op.precision() {
            v.push(Violation::PrecisionMismatch {
                step: i,
                kind,
                stamped: step.precision,
                payload: step.op.precision(),
            });
        }

        // The abstract value flowing into this step: `None` poisons the
        // dataflow when an upstream violation left the shape unknown.
        let in_shape: Option<Vec<usize>> = if inputs_ok {
            match step.inputs.first() {
                Some(0) => Some(input_shape.clone()),
                Some(&s) => slot_shapes[s].clone(),
                None => None,
            }
        } else {
            None
        };
        let second_shape: Option<Vec<usize>> = if inputs_ok && step.inputs.len() == 2 {
            match step.inputs[1] {
                0 => Some(input_shape.clone()),
                s => slot_shapes[s].clone(),
            }
        } else {
            None
        };

        let out_shape = check_op(
            i,
            step,
            in_shape.as_deref(),
            second_shape.as_deref(),
            &mut v,
        );

        if output_ok {
            if let Some(prev) = unread_writer[out] {
                v.push(Violation::DeadStore {
                    step: prev,
                    kind: artifact.steps[prev].op.kind(),
                    slot: out,
                });
            }
            written[out] = true;
            unread_writer[out] = Some(i);
            if let Some(os) = &out_shape {
                match &slot_shapes[out] {
                    None => slot_shapes[out] = Some(os.clone()),
                    Some(existing) if existing != os => v.push(Violation::SlotShapeConflict {
                        step: i,
                        slot: out,
                        existing: existing.clone(),
                        got: os.clone(),
                    }),
                    Some(_) => {}
                }
            }
        }

        facts.in_shapes[i] = in_shape.unwrap_or_default();
        facts.out_shapes[i] = out_shape.unwrap_or_default();
    }

    // Liveness epilogue: the last step's write is the plan output; any
    // other still-unread write is dead, and a slot nobody ever touched
    // should not have been declared.
    for s in 1..slots {
        if let Some(w) = unread_writer[s] {
            if w + 1 != n {
                v.push(Violation::DeadStore {
                    step: w,
                    kind: artifact.steps[w].op.kind(),
                    slot: s,
                });
            }
        }
        if !written[s] && !ever_read[s] {
            v.push(Violation::UnusedSlot { slot: s });
        }
    }

    facts.slot_shapes = slot_shapes;
    (report(v), facts)
}

/// Extracts `[c, h, w]` when the flowing shape is still spatial.
fn spatial(shape: &[usize]) -> Option<[usize; 3]> {
    match shape {
        [c, h, w] => Some([*c, *h, *w]),
        _ => None,
    }
}

/// The window-fit condition `conv_out_dim` would otherwise panic on.
fn window_fits(kernel: usize, h: usize, w: usize, pad: usize) -> bool {
    h + 2 * pad >= kernel && w + 2 * pad >= kernel
}

/// Per-op payload and shape-flow checks. Returns the step's per-item
/// output shape when the abstract input was known and the op accepts
/// it; `None` poisons downstream steps (their shape checks are skipped,
/// but the violations recorded here already condemn the plan).
fn check_op(
    i: usize,
    step: &PlanStep,
    in_shape: Option<&[usize]>,
    second_shape: Option<&[usize]>,
    v: &mut Vec<Violation>,
) -> Option<Vec<usize>> {
    let kind = step.op.kind();
    let algo = step.exec.algo;
    // Non-direct lowerings exist for f32 pattern convs only; every
    // other op must carry the direct tag (forged v5 tags land here).
    let direct_only = |v: &mut Vec<Violation>| {
        if algo != ConvAlgo::Direct {
            v.push(Violation::AlgoIneligible {
                step: i,
                kind,
                algo,
                detail: format!(
                    "the {} lowering is f32 pattern-conv only; {kind} steps run direct",
                    algo.label()
                ),
            });
        }
    };
    match &step.op {
        LayerPlan::PatternConv {
            name,
            stride,
            pad,
            fkw,
            bias,
            relu: _,
        } => {
            let structure_ok = check_fkw_structure(
                i,
                name,
                v,
                FkwView {
                    out_c: fkw.out_c,
                    in_c: fkw.in_c,
                    kernel: fkw.kernel,
                    entries_per_kernel: fkw.entries_per_kernel,
                    patterns: &fkw.patterns,
                    offsets: &fkw.offsets,
                    reorder: &fkw.reorder,
                    index: &fkw.index,
                    stride: &fkw.stride,
                    weight_len: fkw.weights.len(),
                },
            );
            check_bias(i, name, bias.as_deref(), fkw.out_c, v);
            if *stride == 0 {
                v.push(Violation::PayloadInvariant {
                    step: i,
                    name: name.clone(),
                    detail: "zero conv stride".into(),
                });
                return None;
            }
            let [c, h, w] = conv_input(i, kind, name, in_shape, v)?;
            if c != fkw.in_c {
                v.push(Violation::ShapeFlow {
                    step: i,
                    kind,
                    detail: format!("{name}: expects {} input channels, got {c}", fkw.in_c),
                });
                return None;
            }
            if !check_window(i, kind, name, fkw.kernel, *stride, *pad, h, w, v) || !structure_ok {
                return None;
            }
            let geo = Conv2dGeometry::new(
                fkw.out_c, fkw.in_c, fkw.kernel, fkw.kernel, h, w, *stride, *pad,
            );
            if algo == ConvAlgo::Winograd {
                if let Err(why) = winograd_eligible(&geo, fkw) {
                    v.push(Violation::AlgoIneligible {
                        step: i,
                        kind,
                        algo,
                        detail: why.to_string(),
                    });
                }
            }
            Some(vec![geo.out_channels, geo.out_h, geo.out_w])
        }
        LayerPlan::DenseConv {
            name,
            stride,
            pad,
            weights,
            bias,
            relu: _,
        } => {
            direct_only(v);
            let &[oc, ic, kh, kw] = weights.shape() else {
                v.push(Violation::PayloadInvariant {
                    step: i,
                    name: name.clone(),
                    detail: "conv weights must be OIHW".into(),
                });
                return None;
            };
            if oc == 0 || ic == 0 || kh == 0 || kw == 0 {
                v.push(Violation::PayloadInvariant {
                    step: i,
                    name: name.clone(),
                    detail: "degenerate conv weights".into(),
                });
                return None;
            }
            check_bias(i, name, bias.as_deref(), oc, v);
            if *stride == 0 {
                v.push(Violation::PayloadInvariant {
                    step: i,
                    name: name.clone(),
                    detail: "zero conv stride".into(),
                });
                return None;
            }
            let [c, h, w] = conv_input(i, kind, name, in_shape, v)?;
            if c != ic {
                v.push(Violation::ShapeFlow {
                    step: i,
                    kind,
                    detail: format!("{name}: expects {ic} input channels, got {c}"),
                });
                return None;
            }
            if !check_window(i, kind, name, kh.max(kw), *stride, *pad, h, w, v) {
                return None;
            }
            let geo = Conv2dGeometry::new(oc, ic, kh, kw, h, w, *stride, *pad);
            Some(vec![geo.out_channels, geo.out_h, geo.out_w])
        }
        LayerPlan::MaxPool {
            kernel,
            stride,
            pad,
        } => {
            direct_only(v);
            if *kernel == 0 || *stride == 0 {
                v.push(Violation::PayloadInvariant {
                    step: i,
                    name: kind.into(),
                    detail: "degenerate maxpool window".into(),
                });
                return None;
            }
            let [c, h, w] = conv_input(i, kind, kind, in_shape, v)?;
            if !check_window(i, kind, kind, *kernel, *stride, *pad, h, w, v) {
                return None;
            }
            Some(vec![
                c,
                conv_out_dim(h, *kernel, *stride, *pad),
                conv_out_dim(w, *kernel, *stride, *pad),
            ])
        }
        LayerPlan::GlobalAvgPool => {
            direct_only(v);
            let [c, _, _] = conv_input(i, kind, kind, in_shape, v)?;
            Some(vec![c, 1, 1])
        }
        LayerPlan::Flatten => {
            direct_only(v);
            in_shape.map(|s| vec![s.iter().product()])
        }
        LayerPlan::Relu => {
            direct_only(v);
            in_shape.map(|s| s.to_vec())
        }
        LayerPlan::Fc {
            name,
            weights,
            bias,
        } => {
            direct_only(v);
            let &[out_f, in_f] = weights.shape() else {
                v.push(Violation::PayloadInvariant {
                    step: i,
                    name: name.clone(),
                    detail: "fc weights must be 2-d".into(),
                });
                return None;
            };
            if bias.len() != out_f {
                v.push(Violation::PayloadInvariant {
                    step: i,
                    name: name.clone(),
                    detail: "fc bias arity".into(),
                });
            }
            let features: usize = in_shape?.iter().product();
            if features != in_f {
                v.push(Violation::ShapeFlow {
                    step: i,
                    kind,
                    detail: format!("{name}: expects {in_f} input features, got {features}"),
                });
                return None;
            }
            Some(vec![out_f])
        }
        LayerPlan::Add { relu: _ } => {
            direct_only(v);
            let a = in_shape?;
            let b = second_shape?;
            if a != b {
                v.push(Violation::ShapeFlow {
                    step: i,
                    kind,
                    detail: format!("branch shapes disagree ({a:?} vs {b:?})"),
                });
                return None;
            }
            Some(a.to_vec())
        }
        LayerPlan::QuantPatternConv {
            name,
            stride,
            pad,
            qfkw,
            bias,
            relu: _,
        } => {
            direct_only(v);
            let structure_ok = check_fkw_structure(
                i,
                name,
                v,
                FkwView {
                    out_c: qfkw.out_c,
                    in_c: qfkw.in_c,
                    kernel: qfkw.kernel,
                    entries_per_kernel: qfkw.entries_per_kernel,
                    patterns: &qfkw.patterns,
                    offsets: &qfkw.offsets,
                    reorder: &qfkw.reorder,
                    index: &qfkw.index,
                    stride: &qfkw.stride,
                    weight_len: qfkw.qweights.len(),
                },
            );
            if qfkw.scales.len() != qfkw.out_c {
                v.push(Violation::PayloadInvariant {
                    step: i,
                    name: name.clone(),
                    detail: "FKW per-filter scale arity".into(),
                });
            }
            check_scales(i, name, &qfkw.scales, qfkw.act_scale, v);
            // The INT8 executor accumulates in i32; prove the layer's
            // worst-case reduction depth fits before it ever runs.
            if !accumulation_fits_i32(qfkw.in_c, qfkw.entries_per_kernel) {
                v.push(Violation::AccumulationOverflow {
                    step: i,
                    name: name.clone(),
                    depth: qfkw.in_c,
                    entries: qfkw.entries_per_kernel,
                });
            }
            check_bias(i, name, bias.as_deref(), qfkw.out_c, v);
            if *stride == 0 {
                v.push(Violation::PayloadInvariant {
                    step: i,
                    name: name.clone(),
                    detail: "zero conv stride".into(),
                });
                return None;
            }
            let [c, h, w] = conv_input(i, kind, name, in_shape, v)?;
            if c != qfkw.in_c {
                v.push(Violation::ShapeFlow {
                    step: i,
                    kind,
                    detail: format!("{name}: expects {} input channels, got {c}", qfkw.in_c),
                });
                return None;
            }
            if !check_window(i, kind, name, qfkw.kernel, *stride, *pad, h, w, v) || !structure_ok {
                return None;
            }
            Some(vec![
                qfkw.out_c,
                conv_out_dim(h, qfkw.kernel, *stride, *pad),
                conv_out_dim(w, qfkw.kernel, *stride, *pad),
            ])
        }
        LayerPlan::QuantFc {
            name,
            out_f,
            in_f,
            qweights,
            scales,
            act_scale,
            bias,
        } => {
            direct_only(v);
            if *out_f == 0 || *in_f == 0 {
                v.push(Violation::PayloadInvariant {
                    step: i,
                    name: name.clone(),
                    detail: "degenerate fc dimensions".into(),
                });
                return None;
            }
            if qweights.len() != out_f * in_f {
                v.push(Violation::PayloadInvariant {
                    step: i,
                    name: name.clone(),
                    detail: "quantized weight arity".into(),
                });
            }
            if scales.len() != *out_f || bias.len() != *out_f {
                v.push(Violation::PayloadInvariant {
                    step: i,
                    name: name.clone(),
                    detail: "scale/bias arity".into(),
                });
            }
            check_scales(i, name, scales, *act_scale, v);
            // The FC reduction depth is `in_f` saturated products.
            if !accumulation_fits_i32(*in_f, 1) {
                v.push(Violation::AccumulationOverflow {
                    step: i,
                    name: name.clone(),
                    depth: *in_f,
                    entries: 1,
                });
            }
            let features: usize = in_shape?.iter().product();
            if features != *in_f {
                v.push(Violation::ShapeFlow {
                    step: i,
                    kind,
                    detail: format!("{name}: expects {in_f} input features, got {features}"),
                });
                return None;
            }
            Some(vec![*out_f])
        }
    }
}

/// Requires a spatial `[c, h, w]` input (convolutions and poolings
/// cannot follow a flatten).
fn conv_input(
    i: usize,
    kind: &'static str,
    name: &str,
    in_shape: Option<&[usize]>,
    v: &mut Vec<Violation>,
) -> Option<[usize; 3]> {
    let shape = in_shape?;
    match spatial(shape) {
        Some(chw) => Some(chw),
        None => {
            v.push(Violation::ShapeFlow {
                step: i,
                kind,
                detail: format!("{name}: spatial op after flatten (input shape {shape:?})"),
            });
            None
        }
    }
}

/// Window-fit check mirroring what `conv_out_dim` would panic on.
#[allow(clippy::too_many_arguments)]
fn check_window(
    i: usize,
    kind: &'static str,
    name: &str,
    kernel: usize,
    stride: usize,
    pad: usize,
    h: usize,
    w: usize,
    v: &mut Vec<Violation>,
) -> bool {
    debug_assert!(
        kernel > 0 && stride > 0,
        "degenerate payloads caught earlier"
    );
    if !window_fits(kernel, h, w, pad) {
        v.push(Violation::ShapeFlow {
            step: i,
            kind,
            detail: format!(
                "{name}: {kernel}x{kernel} window does not fit {h}x{w} input with pad {pad}"
            ),
        });
        return false;
    }
    true
}

fn check_bias(i: usize, name: &str, bias: Option<&[f32]>, out_c: usize, v: &mut Vec<Violation>) {
    if let Some(b) = bias {
        if b.len() != out_c {
            v.push(Violation::PayloadInvariant {
                step: i,
                name: name.to_owned(),
                detail: format!("bias arity ({} entries for {out_c} filters)", b.len()),
            });
        }
    }
}

/// Dequantization scales must be strictly positive finite numbers: a
/// zero, negative, or non-finite scale poisons every output element.
fn check_scales(i: usize, name: &str, scales: &[f32], act_scale: f32, v: &mut Vec<Violation>) {
    if !(act_scale.is_finite() && act_scale > 0.0) {
        v.push(Violation::ScaleInvalid {
            step: i,
            name: name.to_owned(),
            detail: format!("activation scale {act_scale} is invalid"),
        });
    }
    if let Some(s) = scales.iter().find(|s| !(s.is_finite() && **s > 0.0)) {
        v.push(Violation::ScaleInvalid {
            step: i,
            name: name.to_owned(),
            detail: format!("weight scale {s} is invalid"),
        });
    }
}

/// The precision-independent view of FKW storage the index-bounds
/// checks run over, shared between the `f32` and INT8 payloads.
struct FkwView<'a> {
    out_c: usize,
    in_c: usize,
    kernel: usize,
    entries_per_kernel: usize,
    patterns: &'a [Pattern],
    offsets: &'a [u32],
    reorder: &'a [u16],
    index: &'a [u16],
    stride: &'a [u16],
    weight_len: usize,
}

/// Exhaustive FKW/CSR index-bounds checking: everything the executors'
/// inner loops index with must be proven in range here, so a corrupted
/// artifact is refused before a worker ever touches it. Returns whether
/// the structure is sound (geometry construction downstream needs it).
fn check_fkw_structure(i: usize, name: &str, v: &mut Vec<Violation>, fkw: FkwView<'_>) -> bool {
    let mut fail = |detail: &str| {
        v.push(Violation::PayloadInvariant {
            step: i,
            name: name.to_owned(),
            detail: format!("FKW {detail}"),
        });
        false
    };
    if fkw.out_c == 0 || fkw.in_c == 0 || !(1..=7).contains(&fkw.kernel) {
        return fail("degenerate layer dimensions");
    }
    if fkw
        .patterns
        .iter()
        .any(|p| p.kernel() != fkw.kernel || p.entries() != fkw.entries_per_kernel)
    {
        return fail("pattern table disagrees with layer kernel");
    }
    if fkw.offsets.len() != fkw.out_c + 1 || fkw.reorder.len() != fkw.out_c {
        return fail("filter-level arity");
    }
    if fkw.offsets[0] != 0
        || fkw.offsets.windows(2).any(|w| w[0] > w[1])
        || fkw.offsets[fkw.out_c] as usize != fkw.index.len()
    {
        return fail("offsets are not a cumulative kernel count");
    }
    if fkw.reorder.iter().any(|&f| f as usize >= fkw.out_c) {
        return fail("reorder entry out of filter range");
    }
    if fkw.index.iter().any(|&ic| ic as usize >= fkw.in_c) {
        return fail("kernel index out of channel range");
    }
    let np = fkw.patterns.len();
    if fkw.stride.len() != fkw.out_c * (np + 1) {
        return fail("stride arity");
    }
    for row in 0..fkw.out_c {
        let runs = &fkw.stride[row * (np + 1)..(row + 1) * (np + 1)];
        let row_kernels = (fkw.offsets[row + 1] - fkw.offsets[row]) as usize;
        if runs[0] != 0 || runs.windows(2).any(|w| w[0] > w[1]) || runs[np] as usize != row_kernels
        {
            return fail("stride runs do not tile the filter");
        }
    }
    if fkw.weight_len != fkw.index.len() * fkw.entries_per_kernel {
        return fail("weight arity");
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ExecConfig;
    use patdnn_compiler::fkr::filter_kernel_reorder;
    use patdnn_compiler::fkw::FkwLayer;
    use patdnn_core::pattern_set::PatternSet;
    use patdnn_core::project::prune_layer;
    use patdnn_tensor::rng::Rng;
    use patdnn_tensor::Tensor;

    fn relu_step(input: usize, output: usize) -> crate::artifact::PlanStep {
        crate::artifact::PlanStep::new(LayerPlan::Relu, vec![input], output)
    }

    fn pruned_conv(seed: u64, rate: usize) -> FkwLayer {
        let mut rng = Rng::seed_from(seed);
        let mut w = Tensor::randn(&[4, 4, 3, 3], &mut rng);
        let set = PatternSet::standard(8);
        let lp = prune_layer("t", &mut w, &set, rate);
        let order = filter_kernel_reorder(&lp);
        FkwLayer::from_pruned(&w, &lp, &set, &order)
    }

    fn conv_chain(fkw: FkwLayer, stride: usize) -> ModelArtifact {
        ModelArtifact::chain(
            "conv",
            [4, 6, 6],
            vec![LayerPlan::PatternConv {
                name: "c".into(),
                stride,
                pad: 1,
                fkw,
                bias: None,
                relu: false,
            }],
        )
    }

    #[test]
    fn clean_chain_verifies_with_shape_facts() {
        let artifact = ModelArtifact::chain(
            "clean",
            [2, 4, 4],
            vec![
                LayerPlan::MaxPool {
                    kernel: 2,
                    stride: 2,
                    pad: 0,
                },
                LayerPlan::Flatten,
            ],
        );
        let (report, facts) = analyze(&artifact);
        assert!(report.is_ok(), "unexpected violations: {report}");
        assert_eq!(facts.in_shapes[0], vec![2, 4, 4]);
        assert_eq!(facts.out_shapes[0], vec![2, 2, 2]);
        assert_eq!(facts.out_shapes[1], vec![8]);
        assert_eq!(facts.slot_shapes[2], Some(vec![8]));
        assert!(report.to_string().contains("all invariants hold"));
    }

    #[test]
    fn verify_collects_every_violation_not_just_the_first() {
        // Step 0 writes its own input AND carries a zero-thread config;
        // both must be reported in one pass.
        let mut artifact = ModelArtifact {
            name: "multi".into(),
            input: [1, 4, 4],
            slots: 2,
            steps: vec![relu_step(1, 1)],
        };
        artifact.steps[0].exec.threads = 0;
        let report = verify(&artifact);
        let invariants: Vec<&str> = report.violations.iter().map(|v| v.invariant()).collect();
        assert!(invariants.contains(&"in-place-write"), "{invariants:?}");
        assert!(invariants.contains(&"use-before-def"), "{invariants:?}");
        assert!(invariants.contains(&"exec-config"), "{invariants:?}");
    }

    #[test]
    fn dead_stores_and_unused_slots_are_reported() {
        // Step 0's write to slot 1 is overwritten by step 1 before any
        // read, and slot 2 is declared but never touched.
        let artifact = ModelArtifact {
            name: "liveness".into(),
            input: [1, 4, 4],
            slots: 3,
            steps: vec![relu_step(0, 1), relu_step(0, 1)],
        };
        let report = verify(&artifact);
        assert!(report.violations.contains(&Violation::DeadStore {
            step: 0,
            kind: "relu",
            slot: 1
        }));
        assert!(report
            .violations
            .contains(&Violation::UnusedSlot { slot: 2 }));
    }

    #[test]
    fn intermediate_write_never_read_is_a_dead_store() {
        // Step 1 writes slot 2 which no later step reads, and the plan
        // output is slot 1 (written by the last step).
        let artifact = ModelArtifact {
            name: "dangling".into(),
            input: [1, 4, 4],
            slots: 3,
            steps: vec![relu_step(0, 2), relu_step(0, 1)],
        };
        let report = verify(&artifact);
        assert_eq!(
            report.violations,
            vec![Violation::DeadStore {
                step: 0,
                kind: "relu",
                slot: 2
            }]
        );
    }

    #[test]
    fn winograd_demands_stride_one() {
        let mut artifact = conv_chain(pruned_conv(7, 8), 2);
        artifact.steps[0].exec.algo = ConvAlgo::Winograd;
        let report = verify(&artifact);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.invariant() == "algo-eligibility"),
            "{report}"
        );
    }

    #[test]
    fn non_direct_algo_on_data_movement_step_is_ineligible() {
        let mut artifact = ModelArtifact::chain(
            "pool",
            [1, 4, 4],
            vec![LayerPlan::MaxPool {
                kernel: 2,
                stride: 2,
                pad: 0,
            }],
        );
        artifact.steps[0].exec.algo = ConvAlgo::Im2col;
        let report = verify(&artifact);
        assert!(
            matches!(
                report.violations.as_slice(),
                [Violation::AlgoIneligible { step: 0, .. }]
            ),
            "{report}"
        );
    }

    #[test]
    fn shape_poisoning_suppresses_downstream_shape_checks() {
        // The conv's channel mismatch poisons its output shape; the
        // flatten and fc downstream must not add spurious shape-flow
        // violations on the unknown shape.
        let artifact = ModelArtifact::chain(
            "poison",
            [3, 6, 6], // conv expects 4 channels
            vec![
                LayerPlan::PatternConv {
                    name: "c".into(),
                    stride: 1,
                    pad: 1,
                    fkw: pruned_conv(11, 8),
                    bias: None,
                    relu: false,
                },
                LayerPlan::Flatten,
                LayerPlan::Fc {
                    name: "fc".into(),
                    weights: Tensor::zeros(&[2, 9]),
                    bias: vec![0.0; 2],
                },
            ],
        );
        let report = verify(&artifact);
        assert_eq!(report.violations.len(), 1, "{report}");
        assert_eq!(report.violations[0].invariant(), "shape-flow");
        assert_eq!(report.violations[0].step(), Some(0));
    }

    #[test]
    fn corrupt_fkw_offsets_are_a_payload_invariant() {
        let mut fkw = pruned_conv(13, 8);
        fkw.offsets[1] = fkw.offsets[fkw.out_c] + 7;
        let report = verify(&conv_chain(fkw, 1));
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.invariant() == "payload-invariant"),
            "{report}"
        );
    }

    #[test]
    fn violation_display_names_the_step_and_slot() {
        let artifact = ModelArtifact {
            name: "display".into(),
            input: [1, 4, 4],
            slots: 2,
            steps: vec![crate::artifact::PlanStep {
                op: LayerPlan::Relu,
                inputs: vec![9],
                output: 1,
                exec: ExecConfig::default(),
                precision: crate::artifact::Precision::F32,
            }],
        };
        let report = verify(&artifact);
        let text = report.to_string();
        assert!(text.contains("input-slot-range"), "{text}");
        assert!(text.contains("slot 9"), "{text}");
        assert_eq!(report.violations[0].slot(), Some(9));
    }
}
