//! The model registry: named engines shared between server workers.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use crate::engine::Engine;
use crate::ServeError;

/// A thread-safe name → [`Engine`] map.
///
/// Engines are immutable once built (inference takes `&self`), so the
/// registry hands out `Arc` clones; replacing a model under a live name
/// swaps the `Arc` atomically and in-flight requests finish on the
/// engine they resolved.
#[derive(Default)]
pub struct ModelRegistry {
    // lock: model-registry
    models: RwLock<HashMap<String, Arc<Engine>>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a model under `name`.
    pub fn register(&self, name: &str, engine: Engine) -> Arc<Engine> {
        let engine = Arc::new(engine);
        self.models
            .write()
            .expect("registry lock")
            .insert(name.to_owned(), Arc::clone(&engine));
        engine
    }

    /// Looks up a model.
    pub fn get(&self, name: &str) -> Result<Arc<Engine>, ServeError> {
        self.models
            .read()
            .expect("registry lock")
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(name.to_owned()))
    }

    /// Whether a model is registered under `name` (cheaper than
    /// [`ModelRegistry::get`] when the engine itself is not needed,
    /// e.g. request builders probing before submission).
    pub fn contains(&self, name: &str) -> bool {
        self.models
            .read()
            .expect("registry lock")
            .contains_key(name)
    }

    /// Removes a model; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.models
            .write()
            .expect("registry lock")
            .remove(name)
            .is_some()
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .models
            .read()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().expect("registry lock").len()
    }

    /// Returns `true` when no models are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_network;
    use crate::engine::EngineOptions;
    use patdnn_nn::models::small_cnn;
    use patdnn_tensor::rng::Rng;

    fn engine(seed: u64) -> Engine {
        let mut rng = Rng::seed_from(seed);
        let net = small_cnn(3, 8, 4, &mut rng);
        let artifact = compile_network("m", &net, [3, 8, 8]).expect("compiles");
        Engine::new(artifact, EngineOptions::default()).expect("engine")
    }

    #[test]
    fn register_get_remove() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        reg.register("a", engine(1));
        reg.register("b", engine(2));
        assert_eq!(reg.names(), vec!["a".to_string(), "b".to_string()]);
        assert!(reg.get("a").is_ok());
        assert!(reg.contains("a") && reg.contains("b"));
        assert!(!reg.contains("c"));
        assert!(matches!(reg.get("c"), Err(ServeError::UnknownModel(_))));
        assert!(reg.remove("a"));
        assert!(!reg.remove("a"));
        assert!(!reg.contains("a"));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn replacement_swaps_engine() {
        let reg = ModelRegistry::new();
        let first = reg.register("m", engine(3));
        let second = reg.register("m", engine(4));
        assert!(!Arc::ptr_eq(&first, &second));
        assert!(Arc::ptr_eq(&reg.get("m").unwrap(), &second));
    }
}
