//! The shard router: `patdnn-router`.
//!
//! A [`Router`] fronts a fleet of `patdnn-serve --listen` replica
//! processes and shards requests by *model name* with consistent
//! hashing (FNV-1a over virtual nodes, so adding or removing a replica
//! moves only `1/replicas` of the key space). Each replica gets:
//!
//! - **in-flight accounting** reusing the serving-tier
//!   [`AdmissionPolicy`] — the router refuses to hold more than the
//!   configured number of outstanding requests per replica (and per
//!   model on that replica), shedding locally instead of piling onto a
//!   saturated process;
//! - **retry-on-shed**: a replica answering `Shed` (or an admission
//!   refusal, or a transport failure) sends the request to the next
//!   replica in the model's preference order, with the remaining
//!   deadline budget shrunk by the time already burned;
//! - **health ejection**: `eject_after` consecutive transport failures
//!   take a replica out of rotation for `cooldown`; the first probe
//!   after cooldown readmits it on success or re-ejects on failure.
//!
//! The router speaks the same wire protocol as a replica on its own
//! listen port (plus the `/metrics` and `/healthz` HTTP shim), so
//! clients cannot tell a router from a single replica — the typed
//! terminals and frozen v1 codes are identical.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use patdnn_tensor::Tensor;

use crate::net::{self, NetClient, WaitGroup, WireOutcome};
use crate::request::{AdmissionControl, AdmissionPolicy, CancelToken, Priority, RETRY_HINT_FLOOR};
use crate::wire::{self, read_frame, write_frame, Frame, WireError, WIRE_MAGIC};
use crate::ServeError;

/// Router knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Replica addresses (`host:port`), each a `patdnn-serve --listen`.
    pub replicas: Vec<String>,
    /// Virtual nodes per replica on the hash ring.
    pub vnodes: usize,
    /// Replicas tried per request before giving up (walks the model's
    /// preference order). Clamped to the replica count.
    pub max_attempts: usize,
    /// Outstanding-request bounds the router enforces *per replica*
    /// (total and per model), reusing the serving-tier policy type.
    pub replica_policy: AdmissionPolicy,
    /// Consecutive transport failures before a replica is ejected.
    pub eject_after: u32,
    /// How long an ejected replica stays out of rotation before the
    /// next probe.
    pub cooldown: Duration,
    /// TCP connect timeout when dialing a replica.
    pub connect_timeout: Duration,
    /// Honor [`Frame::Shutdown`] on the router's own listen port.
    pub allow_remote_shutdown: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            replicas: Vec::new(),
            vnodes: 64,
            max_attempts: usize::MAX,
            replica_policy: AdmissionPolicy::default(),
            eject_after: 3,
            cooldown: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(2),
            allow_remote_shutdown: true,
        }
    }
}

/// FNV-1a 64-bit with a Murmur3 finalizer — stable and
/// dependency-free. Raw FNV-1a avalanches poorly on short, similar
/// keys (vnode names differ only in their suffix), which visibly
/// unbalances the ring; the finalizer fixes the high-bit spread.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^ (hash >> 33)
}

/// Per-replica health state.
struct Health {
    consecutive_failures: u32,
    /// When set, the replica is ejected until this instant.
    ejected_until: Option<Instant>,
}

struct Replica {
    addr: String,
    /// Idle connections to this replica (checked out per request,
    /// returned on success, dropped on failure).
    // lock: replica-pool
    pool: Mutex<Vec<NetClient>>,
    /// Router-side in-flight accounting for this replica.
    admission: Arc<AdmissionControl>,
    // lock: replica-health
    health: Mutex<Health>,
    /// Lifetime requests forwarded to this replica.
    forwarded: AtomicU64,
}

/// Monotonic counters the router exposes on `/metrics`.
#[derive(Default)]
struct RouterMetrics {
    forwarded: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    shed_retries: AtomicU64,
    transport_retries: AtomicU64,
    exhausted: AtomicU64,
    ejections: AtomicU64,
    readmissions: AtomicU64,
}

/// Point-in-time router counters (see [`Router::metrics_snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterMetricsSnapshot {
    /// Requests forwarded to a replica (attempts, so retries count).
    pub forwarded: u64,
    /// Requests that resolved `Completed`.
    pub completed: u64,
    /// Requests that resolved to a typed rejection (any non-completed
    /// terminal returned to the client).
    pub rejected: u64,
    /// Retries caused by a replica shedding (remote `Shed` response or
    /// the router's own per-replica admission refusing).
    pub shed_retries: u64,
    /// Retries caused by a transport failure (connect/read/write).
    pub transport_retries: u64,
    /// Requests that ran out of replicas to try.
    pub exhausted: u64,
    /// Replicas taken out of rotation for consecutive failures.
    pub ejections: u64,
    /// Ejected replicas brought back by a successful probe.
    pub readmissions: u64,
    /// Per-replica `(addr, forwarded, in_flight, ejected)` rows.
    pub replicas: Vec<(String, u64, usize, bool)>,
}

/// The shard router core: routing table + per-replica state. Wrap in
/// an [`Arc`] and call [`Router::route`] from any thread; the listen
/// front-end is [`RouterServer`].
pub struct Router {
    cfg: RouterConfig,
    replicas: Vec<Replica>,
    /// Sorted `(hash, replica index)` ring.
    ring: Vec<(u64, usize)>,
    metrics: RouterMetrics,
}

impl Router {
    /// Builds the routing table. Connections are dialed lazily on
    /// first use, so replicas may come up after the router.
    pub fn new(cfg: RouterConfig) -> Router {
        assert!(
            !cfg.replicas.is_empty(),
            "router needs at least one replica"
        );
        assert!(cfg.vnodes > 0, "vnodes must be positive");
        let replicas: Vec<Replica> = cfg
            .replicas
            .iter()
            .map(|addr| Replica {
                addr: addr.clone(),
                pool: Mutex::new(Vec::new()),
                admission: AdmissionControl::new(cfg.replica_policy, None),
                health: Mutex::new(Health {
                    consecutive_failures: 0,
                    ejected_until: None,
                }),
                forwarded: AtomicU64::new(0),
            })
            .collect();
        let mut ring = Vec::with_capacity(replicas.len() * cfg.vnodes);
        for (idx, replica) in replicas.iter().enumerate() {
            for v in 0..cfg.vnodes {
                ring.push((fnv1a(format!("{}#{v}", replica.addr).as_bytes()), idx));
            }
        }
        ring.sort_unstable();
        Router {
            cfg,
            replicas,
            ring,
            metrics: RouterMetrics::default(),
        }
    }

    /// Replica indices in preference order for `model`: walk the ring
    /// clockwise from the model's hash, keeping first occurrences.
    pub fn preference(&self, model: &str) -> Vec<usize> {
        let h = fnv1a(model.as_bytes());
        let start = self.ring.partition_point(|&(vh, _)| vh < h);
        let mut order = Vec::with_capacity(self.replicas.len());
        let mut seen = vec![false; self.replicas.len()];
        for i in 0..self.ring.len() {
            let (_, idx) = self.ring[(start + i) % self.ring.len()];
            if !seen[idx] {
                seen[idx] = true;
                order.push(idx);
                if order.len() == self.replicas.len() {
                    break;
                }
            }
        }
        order
    }

    /// Routes one request: tries the model's preferred replicas in
    /// order, retrying on shed / admission refusal / transport failure,
    /// shrinking the deadline budget by time already burned. Returns
    /// the typed outcome the client sees.
    pub fn route(
        &self,
        model: &str,
        input: &Tensor,
        priority: Priority,
        deadline: Option<Duration>,
        cancel: Option<&CancelToken>,
    ) -> WireOutcome {
        let started = Instant::now();
        let mut best_hint: Option<Duration> = None;
        let mut attempts = 0usize;
        for &idx in self.preference(model).iter() {
            if attempts >= self.cfg.max_attempts.max(1) {
                break;
            }
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                    return WireOutcome::Rejected(ServeError::Cancelled);
                }
            }
            // A request whose budget is spent must not be forwarded:
            // "zero expired requests execute" holds across the fleet.
            let remaining = match deadline {
                None => None,
                Some(budget) => {
                    let elapsed = started.elapsed();
                    if elapsed >= budget {
                        self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                        return WireOutcome::Rejected(ServeError::Expired {
                            missed_by: elapsed - budget,
                        });
                    }
                    Some(budget - elapsed)
                }
            };
            let replica = &self.replicas[idx];
            if !self.replica_available(replica) {
                continue;
            }
            // Per-replica in-flight accounting: hold a permit for the
            // whole round trip; refusal is a local shed → next replica.
            let Some(_permit) = replica.admission.try_admit(model) else {
                self.metrics.shed_retries.fetch_add(1, Ordering::Relaxed);
                best_hint = Some(best_hint.unwrap_or(RETRY_HINT_FLOOR).max(RETRY_HINT_FLOOR));
                attempts += 1;
                continue;
            };
            attempts += 1;
            replica.forwarded.fetch_add(1, Ordering::Relaxed);
            self.metrics.forwarded.fetch_add(1, Ordering::Relaxed);
            match self.forward(replica, model, input, priority, remaining) {
                Ok(WireOutcome::Rejected(ServeError::Shed { retry_after_hint })) => {
                    self.metrics.shed_retries.fetch_add(1, Ordering::Relaxed);
                    best_hint = Some(match best_hint {
                        Some(h) => h.max(retry_after_hint),
                        None => retry_after_hint,
                    });
                    self.mark_success(replica);
                }
                Ok(outcome) => {
                    self.mark_success(replica);
                    if outcome.is_completed() {
                        self.metrics.completed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    return outcome;
                }
                Err(_) => {
                    self.metrics
                        .transport_retries
                        .fetch_add(1, Ordering::Relaxed);
                    self.mark_failure(replica);
                }
            }
        }
        // Every replica shed, failed, or was ejected: the fleet is
        // saturated. Surface a typed shed with the largest hint any
        // replica quoted (clamped to the floor so callers never spin).
        self.metrics.exhausted.fetch_add(1, Ordering::Relaxed);
        self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        WireOutcome::Rejected(ServeError::Shed {
            retry_after_hint: best_hint.unwrap_or(RETRY_HINT_FLOOR).max(RETRY_HINT_FLOOR),
        })
    }

    /// One forwarding attempt over a pooled connection.
    fn forward(
        &self,
        replica: &Replica,
        model: &str,
        input: &Tensor,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<WireOutcome, WireError> {
        // Pop in its own statement: a match scrutinee's guard temporary
        // lives for the whole match, which would hold the pool lock
        // across the TCP connect below and stall every other request
        // targeting this replica while a dead host times out.
        let pooled = replica.pool.lock().expect("router pool lock").pop();
        let mut conn = match pooled {
            Some(conn) => conn,
            None => NetClient::connect_timeout(&replica.addr, self.cfg.connect_timeout)?,
        };
        match conn.infer(model, input, priority, deadline) {
            Ok(outcome) => {
                replica.pool.lock().expect("router pool lock").push(conn);
                Ok(outcome)
            }
            // Drop the (possibly poisoned) connection on any error.
            Err(e) => Err(e),
        }
    }

    /// Whether the replica is in rotation (not ejected, or its
    /// cooldown has elapsed and it may take a probe).
    fn replica_available(&self, replica: &Replica) -> bool {
        let health = replica.health.lock().expect("router health lock");
        match health.ejected_until {
            None => true,
            Some(until) => Instant::now() >= until,
        }
    }

    fn mark_success(&self, replica: &Replica) {
        let mut health = replica.health.lock().expect("router health lock");
        if health.ejected_until.is_some() {
            self.metrics.readmissions.fetch_add(1, Ordering::Relaxed);
        }
        health.consecutive_failures = 0;
        health.ejected_until = None;
    }

    fn mark_failure(&self, replica: &Replica) {
        let mut health = replica.health.lock().expect("router health lock");
        health.consecutive_failures += 1;
        if health.consecutive_failures >= self.cfg.eject_after {
            if health.ejected_until.is_none() {
                self.metrics.ejections.fetch_add(1, Ordering::Relaxed);
            }
            // (Re-)eject: failed probes push the window out again.
            health.ejected_until = Some(Instant::now() + self.cfg.cooldown);
        }
    }

    /// Point-in-time counters, including per-replica rows.
    pub fn metrics_snapshot(&self) -> RouterMetricsSnapshot {
        let m = &self.metrics;
        RouterMetricsSnapshot {
            forwarded: m.forwarded.load(Ordering::Relaxed),
            completed: m.completed.load(Ordering::Relaxed),
            rejected: m.rejected.load(Ordering::Relaxed),
            shed_retries: m.shed_retries.load(Ordering::Relaxed),
            transport_retries: m.transport_retries.load(Ordering::Relaxed),
            exhausted: m.exhausted.load(Ordering::Relaxed),
            ejections: m.ejections.load(Ordering::Relaxed),
            readmissions: m.readmissions.load(Ordering::Relaxed),
            replicas: self
                .replicas
                .iter()
                .map(|r| {
                    let ejected = {
                        let h = r.health.lock().expect("router health lock");
                        h.ejected_until.is_some_and(|until| Instant::now() < until)
                    };
                    (
                        r.addr.clone(),
                        r.forwarded.load(Ordering::Relaxed),
                        r.admission.in_flight(),
                        ejected,
                    )
                })
                .collect(),
        }
    }

    /// Asks every reachable replica to shut down (drain or
    /// fail-pending). Used by the smoke harness for clean fleet drain.
    pub fn shutdown_replicas(&self, drain: bool) {
        for replica in &self.replicas {
            if let Ok(mut conn) =
                NetClient::connect_timeout(&replica.addr, self.cfg.connect_timeout)
            {
                let _ = conn.shutdown(drain);
            }
        }
    }
}

/// Flat text exposition of the router counters (same shape as the
/// replica `/metrics`).
fn render_router_metrics(snap: &RouterMetricsSnapshot) -> String {
    let mut out = String::new();
    let mut line = |name: &str, value: String| {
        out.push_str(name);
        out.push(' ');
        out.push_str(&value);
        out.push('\n');
    };
    line("patdnn_router_forwarded_total", snap.forwarded.to_string());
    line("patdnn_router_completed_total", snap.completed.to_string());
    line("patdnn_router_rejected_total", snap.rejected.to_string());
    line(
        "patdnn_router_shed_retries_total",
        snap.shed_retries.to_string(),
    );
    line(
        "patdnn_router_transport_retries_total",
        snap.transport_retries.to_string(),
    );
    line("patdnn_router_exhausted_total", snap.exhausted.to_string());
    line("patdnn_router_ejections_total", snap.ejections.to_string());
    line(
        "patdnn_router_readmissions_total",
        snap.readmissions.to_string(),
    );
    for (addr, forwarded, in_flight, ejected) in &snap.replicas {
        line(
            &format!("patdnn_router_replica_forwarded{{replica=\"{addr}\"}}"),
            forwarded.to_string(),
        );
        line(
            &format!("patdnn_router_replica_in_flight{{replica=\"{addr}\"}}"),
            in_flight.to_string(),
        );
        line(
            &format!("patdnn_router_replica_ejected{{replica=\"{addr}\"}}"),
            u8::from(*ejected).to_string(),
        );
    }
    out
}

/// The router's listen front-end — same dual-protocol port as
/// [`crate::net::NetServer`], backed by [`Router::route`] instead of a
/// local engine.
pub struct RouterServer {
    router: Arc<Router>,
    listener: TcpListener,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waiters: Arc<WaitGroup>,
}

impl RouterServer {
    /// Binds `addr` over a routing table.
    pub fn bind(router: Router, addr: &str) -> std::io::Result<RouterServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(RouterServer {
            router: Arc::new(router),
            listener,
            local_addr,
            stop: Arc::new(AtomicBool::new(false)),
            waiters: Arc::new(WaitGroup::default()),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared handle to the routing core (metrics, fleet shutdown).
    pub fn router(&self) -> Arc<Router> {
        Arc::clone(&self.router)
    }

    /// Accepts connections until a shutdown frame arrives, then waits
    /// for in-flight forwards to finish writing their responses.
    pub fn serve(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let router = Arc::clone(&self.router);
            let stop = Arc::clone(&self.stop);
            let waiters = Arc::clone(&self.waiters);
            let local_addr = self.local_addr;
            std::thread::spawn(move || {
                handle_router_connection(stream, &router, &stop, &waiters, local_addr)
            });
        }
        self.waiters.wait();
        Ok(())
    }

    /// Runs [`Self::serve`] on a background thread.
    pub fn spawn(self) -> RouterHandle {
        let addr = self.local_addr;
        let router = Arc::clone(&self.router);
        let join = std::thread::spawn(move || self.serve());
        RouterHandle { addr, router, join }
    }
}

/// Handle to a [`RouterServer`] running on a background thread.
pub struct RouterHandle {
    addr: SocketAddr,
    router: Arc<Router>,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

impl RouterHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared handle to the routing core.
    pub fn router(&self) -> Arc<Router> {
        Arc::clone(&self.router)
    }

    /// Sends a shutdown frame to the router's own port and joins.
    pub fn shutdown(self) -> std::io::Result<()> {
        if let Ok(mut client) = NetClient::connect(&self.addr.to_string()) {
            let _ = client.shutdown(true);
        }
        self.join.join().expect("router server thread panicked")
    }
}

/// Sniffs the protocol and dispatches one router connection.
fn handle_router_connection(
    stream: TcpStream,
    router: &Arc<Router>,
    stop: &Arc<AtomicBool>,
    waiters: &Arc<WaitGroup>,
    local_addr: SocketAddr,
) {
    let _ = stream.set_nodelay(true);
    let mut head = [0u8; 4];
    let mut reader = stream;
    if reader.read_exact(&mut head).is_err() {
        return;
    }
    if &head == WIRE_MAGIC {
        let _ = wire_loop(reader, router, stop, waiters, local_addr);
    } else if head.is_ascii() {
        let _ = http_shim(reader, &head, router);
    }
}

/// The binary protocol loop for one router connection.
fn wire_loop(
    stream: TcpStream,
    router: &Arc<Router>,
    stop: &Arc<AtomicBool>,
    waiters: &Arc<WaitGroup>,
    local_addr: SocketAddr,
) -> Result<(), WireError> {
    let mut reader = BufReader::new(stream.try_clone()?);
    wire::read_handshake_version(&mut reader)?;
    // lock: router-writer
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    // lock: router-inflight
    let inflight: Arc<Mutex<HashMap<u64, CancelToken>>> = Arc::new(Mutex::new(HashMap::new()));
    // A read error means the peer hung up or sent garbage; the
    // connection is done.
    while let Ok(frame) = read_frame(&mut reader) {
        match frame {
            Frame::Infer {
                id,
                model,
                priority,
                deadline_us,
                input,
            } => {
                let token = CancelToken::new();
                inflight
                    .lock()
                    .expect("router inflight lock")
                    .insert(id, token.clone());
                waiters.add();
                let router = Arc::clone(router);
                let writer = Arc::clone(&writer);
                let inflight = Arc::clone(&inflight);
                let waiters = Arc::clone(waiters);
                std::thread::spawn(move || {
                    let deadline = (deadline_us > 0).then(|| Duration::from_micros(deadline_us));
                    let outcome = router.route(&model, &input, priority, deadline, Some(&token));
                    inflight.lock().expect("router inflight lock").remove(&id);
                    let frame = outcome_to_frame(id, outcome);
                    let _ = write_router_frame(&writer, &frame);
                    waiters.done();
                });
            }
            Frame::Cancel { id } => {
                // Best-effort: stops un-forwarded attempts; a request
                // already at a replica resolves there normally. Clone
                // the token out so the registry lock is released before
                // signalling.
                let token = inflight
                    .lock()
                    .expect("router inflight lock")
                    .get(&id)
                    .cloned();
                if let Some(token) = token {
                    token.cancel();
                }
            }
            Frame::Ping { token } => {
                let snap = router.metrics_snapshot();
                let in_flight: usize = snap.replicas.iter().map(|r| r.2).sum();
                let pong = Frame::Pong {
                    token,
                    queue_depth: 0,
                    in_flight: in_flight as u64,
                    models: snap.replicas.len() as u32,
                };
                write_router_frame(&writer, &pong)?;
            }
            Frame::Shutdown { drain } => {
                if !router.cfg.allow_remote_shutdown {
                    write_router_frame(
                        &writer,
                        &Frame::reject(0, &ServeError::Internal("remote shutdown disabled".into())),
                    )?;
                    continue;
                }
                // Shuts down the router front-end only; replicas are
                // drained separately (see Router::shutdown_replicas).
                let _ = drain;
                stop.store(true, Ordering::Release);
                write_router_frame(&writer, &Frame::ShutdownAck)?;
                let _ = TcpStream::connect(local_addr);
                break;
            }
            _ => break,
        }
    }
    Ok(())
}

fn outcome_to_frame(id: u64, outcome: WireOutcome) -> Frame {
    match outcome {
        WireOutcome::Completed {
            output,
            latency,
            batch_size,
        } => Frame::Completed {
            id,
            latency_us: wire::duration_to_us(latency),
            batch_size: batch_size as u32,
            output,
        },
        WireOutcome::Rejected(e) => Frame::reject(id, &e),
        // WireOutcome is #[non_exhaustive] for callers, but this crate
        // owns it; keep the compiler honest if a variant is added.
        #[allow(unreachable_patterns)]
        _ => Frame::reject(id, &ServeError::Internal("unknown outcome".into())),
    }
}

fn write_router_frame(writer: &Arc<Mutex<TcpStream>>, frame: &Frame) -> Result<(), WireError> {
    let mut guard = writer.lock().expect("router writer lock");
    let mut buffered = BufWriter::new(&mut *guard);
    // lock-order: allow(router-writer serializes whole response frames; holding it across the socket write is the point)
    write_frame(&mut buffered, frame)?;
    buffered.flush()?;
    Ok(())
}

/// `GET /metrics` and `GET /healthz` for the router port.
fn http_shim(mut stream: TcpStream, head: &[u8; 4], router: &Arc<Router>) -> std::io::Result<()> {
    let path = match net::read_http_request(&mut stream, head) {
        Some(p) => p,
        None => return Ok(()),
    };
    let snap = router.metrics_snapshot();
    let (status, body) = match path.as_str() {
        "/healthz" => {
            let healthy = snap.replicas.iter().filter(|r| !r.3).count();
            let status = if healthy > 0 {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            (
                status,
                format!("ok replicas={} healthy={healthy}\n", snap.replicas.len()),
            )
        }
        "/metrics" => ("200 OK", render_router_metrics(&snap)),
        _ => ("404 Not Found", "not found\n".to_owned()),
    };
    net::write_http_response(&mut stream, status, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_router(addrs: &[&str]) -> Router {
        Router::new(RouterConfig {
            replicas: addrs.iter().map(|s| s.to_string()).collect(),
            cooldown: Duration::from_millis(50),
            eject_after: 2,
            ..RouterConfig::default()
        })
    }

    #[test]
    fn preference_is_deterministic_and_covers_all_replicas() {
        let router = test_router(&["10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"]);
        for model in ["vgg16", "resnet50", "tinyconv", "fc-only"] {
            let a = router.preference(model);
            let b = router.preference(model);
            assert_eq!(a, b, "preference order must be deterministic");
            assert_eq!(a.len(), 3, "order must cover every replica");
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "order must be a permutation");
        }
    }

    #[test]
    fn hashing_spreads_models_across_replicas() {
        let router = test_router(&["a:1", "b:1", "c:1", "d:1"]);
        let mut first_choice = [0usize; 4];
        for i in 0..256 {
            let model = format!("model-{i}");
            first_choice[router.preference(&model)[0]] += 1;
        }
        for (idx, &count) in first_choice.iter().enumerate() {
            assert!(
                count > 16,
                "replica {idx} owns {count}/256 keys — ring is badly unbalanced: {first_choice:?}"
            );
        }
    }

    #[test]
    fn consistent_hashing_moves_few_keys_when_a_replica_joins() {
        let three = test_router(&["a:1", "b:1", "c:1"]);
        let four = test_router(&["a:1", "b:1", "c:1", "d:1"]);
        let mut moved = 0usize;
        let total = 512usize;
        for i in 0..total {
            let model = format!("model-{i}");
            let before = three.preference(&model)[0];
            let after = four.preference(&model)[0];
            // Replica indices 0..=2 name the same addresses in both.
            if after != 3 && after != before {
                moved += 1;
            }
        }
        // Perfect consistent hashing moves 0 keys among the surviving
        // replicas; allow a little slack for vnode boundary effects.
        assert!(
            moved < total / 8,
            "{moved}/{total} keys moved between surviving replicas"
        );
    }

    #[test]
    fn ejection_and_readmission_track_consecutive_failures() {
        let router = test_router(&["127.0.0.1:1", "127.0.0.1:2"]);
        let replica = &router.replicas[0];
        assert!(router.replica_available(replica));
        router.mark_failure(replica);
        assert!(
            router.replica_available(replica),
            "one failure is tolerated"
        );
        router.mark_failure(replica);
        assert!(
            !router.replica_available(replica),
            "eject_after=2 failures ejects"
        );
        assert_eq!(router.metrics_snapshot().ejections, 1);
        // Cooldown elapses → probe allowed; a success readmits.
        std::thread::sleep(Duration::from_millis(60));
        assert!(router.replica_available(replica), "cooldown elapsed: probe");
        router.mark_success(replica);
        assert!(router.replica_available(replica));
        let snap = router.metrics_snapshot();
        assert_eq!(snap.readmissions, 1);
        assert!(!snap.replicas[0].3, "replica no longer marked ejected");
    }

    #[test]
    fn unreachable_fleet_sheds_typed_with_clamped_hint() {
        // Ports in the reserved range: connects fail fast, the router
        // must surface a typed shed whose hint is at least the floor.
        let router = Router::new(RouterConfig {
            replicas: vec!["127.0.0.1:1".into(), "127.0.0.1:9".into()],
            connect_timeout: Duration::from_millis(100),
            ..RouterConfig::default()
        });
        let input = Tensor::from_vec(&[1, 4], vec![0.0; 4]).expect("tensor");
        let outcome = router.route("m", &input, Priority::Standard, None, None);
        match outcome {
            WireOutcome::Rejected(ServeError::Shed { retry_after_hint }) => {
                assert!(retry_after_hint >= RETRY_HINT_FLOOR);
            }
            other => panic!("expected typed shed, got {other:?}"),
        }
        let snap = router.metrics_snapshot();
        assert_eq!(snap.exhausted, 1);
        assert!(snap.transport_retries >= 2, "both replicas were tried");
    }

    #[test]
    fn router_metrics_text_renders_counters_and_replica_rows() {
        let router = test_router(&["a:1", "b:1"]);
        let text = render_router_metrics(&router.metrics_snapshot());
        for needle in [
            "patdnn_router_forwarded_total 0",
            "patdnn_router_shed_retries_total 0",
            "patdnn_router_replica_ejected{replica=\"a:1\"} 0",
            "patdnn_router_replica_in_flight{replica=\"b:1\"} 0",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
