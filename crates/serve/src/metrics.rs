//! Serving counters: per-request latency and throughput.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Cap on retained latency samples: percentiles are computed over the
/// most recent window so a long-running server neither grows without
/// bound nor pays ever-increasing snapshot costs.
const MAX_SAMPLES: usize = 16_384;

/// Fixed-capacity ring of the most recent latency samples.
#[derive(Default)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl LatencyRing {
    fn push(&mut self, us: u64) {
        if self.samples.len() < MAX_SAMPLES {
            self.samples.push(us);
        } else {
            self.samples[self.next] = us;
            self.next = (self.next + 1) % MAX_SAMPLES;
        }
    }
}

/// Live counters updated by server workers.
pub struct ServerMetrics {
    latencies_us: Mutex<LatencyRing>,
    requests: AtomicU64,
    batches: AtomicU64,
    rejected: AtomicU64,
    started: Instant,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Creates zeroed counters; QPS is measured from this instant.
    pub fn new() -> Self {
        ServerMetrics {
            latencies_us: Mutex::new(LatencyRing::default()),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Records one executed batch and its per-request latencies.
    ///
    /// Latency percentiles are computed over the most recent
    /// `MAX_SAMPLES` requests; the request/batch totals are exact.
    pub fn record_batch(&self, latencies: &[Duration]) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.requests
            .fetch_add(latencies.len() as u64, Ordering::Relaxed);
        let mut ring = self.latencies_us.lock().expect("metrics lock");
        for d in latencies {
            ring.push(d.as_micros() as u64);
        }
    }

    /// Records a rejected (queue-full) request.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent snapshot of the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let latencies = self
            .latencies_us
            .lock()
            .expect("metrics lock")
            .samples
            .clone();
        let requests = self.requests.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let rejected = self.rejected.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_secs_f64();
        let mut sorted = latencies;
        sorted.sort_unstable();
        let pct = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let rank = (q * (sorted.len() - 1) as f64).round() as usize;
            sorted[rank] as f64 / 1e3
        };
        let mean_ms = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<u64>() as f64 / sorted.len() as f64 / 1e3
        };
        MetricsSnapshot {
            requests,
            batches,
            rejected,
            avg_batch: if batches == 0 {
                0.0
            } else {
                requests as f64 / batches as f64
            },
            qps: if elapsed <= 0.0 {
                0.0
            } else {
                requests as f64 / elapsed
            },
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            mean_ms,
        }
    }
}

/// A point-in-time view of the serving counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests completed.
    pub requests: u64,
    /// Batched executions run.
    pub batches: u64,
    /// Requests rejected for backpressure.
    pub rejected: u64,
    /// Mean requests per executed batch.
    pub avg_batch: f64,
    /// Completed requests per second since server start.
    pub qps: f64,
    /// Median request latency (enqueue → response), milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requests={} batches={} rejected={} avg_batch={:.2} qps={:.1} \
             latency p50={:.3}ms p95={:.3}ms p99={:.3}ms mean={:.3}ms",
            self.requests,
            self.batches,
            self.rejected,
            self.avg_batch,
            self.qps,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.mean_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_snapshot_is_zeroed() {
        let m = ServerMetrics::new();
        let s = m.snapshot();
        assert_eq!(s.requests, 0);
        assert_eq!(s.p99_ms, 0.0);
        assert_eq!(s.avg_batch, 0.0);
    }

    #[test]
    fn percentiles_order_correctly() {
        let m = ServerMetrics::new();
        // 100 requests in two batches: latencies 1ms..100ms.
        let first: Vec<Duration> = (1..=50).map(Duration::from_millis).collect();
        let second: Vec<Duration> = (51..=100).map(Duration::from_millis).collect();
        m.record_batch(&first);
        m.record_batch(&second);
        let s = m.snapshot();
        assert_eq!(s.requests, 100);
        assert_eq!(s.batches, 2);
        assert_eq!(s.avg_batch, 50.0);
        assert!((s.p50_ms - 51.0).abs() < 1.5, "p50 {}", s.p50_ms);
        assert!((s.p95_ms - 95.0).abs() < 1.5, "p95 {}", s.p95_ms);
        assert!((s.p99_ms - 99.0).abs() < 1.5, "p99 {}", s.p99_ms);
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
    }

    #[test]
    fn rejections_are_counted() {
        let m = ServerMetrics::new();
        m.record_rejected();
        m.record_rejected();
        assert_eq!(m.snapshot().rejected, 2);
    }

    #[test]
    fn sample_store_is_bounded_and_keeps_the_recent_window() {
        let m = ServerMetrics::new();
        // Overfill the ring: MAX_SAMPLES slow requests, then MAX_SAMPLES
        // fast ones. The window must hold only the fast tail.
        let slow = vec![Duration::from_millis(1000); MAX_SAMPLES];
        m.record_batch(&slow);
        let fast = vec![Duration::from_millis(1); MAX_SAMPLES];
        m.record_batch(&fast);
        let s = m.snapshot();
        assert_eq!(s.requests, 2 * MAX_SAMPLES as u64, "totals stay exact");
        assert!(
            (s.p99_ms - 1.0).abs() < 0.01,
            "p99 {} reflects only the recent window",
            s.p99_ms
        );
    }
}
