//! Serving counters: per-request latency and throughput, broken out by
//! priority class, the request-lifecycle outcome counters
//! (shed / expired / cancelled — see DESIGN.md §10), and live
//! queue-depth / in-flight gauges (DESIGN.md §11).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::request::Priority;
use crate::telemetry::LayerSnapshot;

/// Cap on retained latency samples **per priority class**: percentiles
/// are computed over the most recent window so a long-running server
/// neither grows without bound nor pays ever-increasing snapshot costs.
const MAX_SAMPLES: usize = 16_384;

/// Fixed-capacity ring of the most recent latency samples, each with
/// its record time so throughput can be computed over the retained
/// window rather than process uptime.
#[derive(Default)]
struct LatencyRing {
    samples: Vec<u64>,
    /// When each retained sample was recorded (parallel to `samples`).
    recorded: Vec<Instant>,
    next: usize,
}

impl LatencyRing {
    fn push(&mut self, us: u64, at: Instant) {
        if self.samples.len() < MAX_SAMPLES {
            self.samples.push(us);
            self.recorded.push(at);
        } else {
            self.samples[self.next] = us;
            self.recorded[self.next] = at;
            self.next = (self.next + 1) % MAX_SAMPLES;
        }
    }

    /// Record time of the oldest retained sample. Before wrap-around
    /// that is the first push; once full, the slot `next` is about to
    /// overwrite.
    fn oldest(&self) -> Option<Instant> {
        if self.recorded.len() < MAX_SAMPLES {
            self.recorded.first().copied()
        } else {
            Some(self.recorded[self.next])
        }
    }
}

/// Live counters updated by server workers.
pub struct ServerMetrics {
    /// One latency ring per priority class (indexed by
    /// [`Priority::index`]).
    // lock: metrics-latency
    latencies_us: Mutex<[LatencyRing; 3]>,
    requests: AtomicU64,
    batches: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    cancelled: AtomicU64,
    /// Wall time of the most recent batch execution, microseconds
    /// (feeds shed retry hints without a snapshot's sorting cost).
    last_batch_us: AtomicU64,
    /// When that execution was recorded, as microseconds since
    /// `started` (`u64::MAX` = never): [`Self::recent_batch_time`]
    /// expires the reading after [`BATCH_RATE_TTL`] so an idle server
    /// does not quote stale batch rates in shed retry hints.
    last_batch_at_us: AtomicU64,
    /// Requests currently waiting in the batch queue (gauge, set by the
    /// queue under its own lock).
    queue_depth: AtomicU64,
    /// Requests currently holding an admission permit (gauge).
    in_flight: AtomicU64,
    started: Instant,
}

/// How long [`ServerMetrics::recent_batch_time`] keeps quoting the
/// last batch execution. Past this, the reading decays to zero and
/// shed retry hints fall back to their default floor instead of a
/// rate measured before an idle stretch.
pub const BATCH_RATE_TTL: Duration = Duration::from_millis(500);

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Creates zeroed counters; QPS is measured from this instant.
    pub fn new() -> Self {
        ServerMetrics {
            latencies_us: Mutex::new(Default::default()),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            last_batch_us: AtomicU64::new(0),
            last_batch_at_us: AtomicU64::new(u64::MAX),
            queue_depth: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Records one executed batch and its per-request latencies with
    /// their priority classes.
    ///
    /// Latency percentiles are computed over the most recent
    /// `MAX_SAMPLES` requests per class; the request/batch totals are
    /// exact.
    pub fn record_batch(&self, latencies: &[(Priority, Duration)]) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.requests
            .fetch_add(latencies.len() as u64, Ordering::Relaxed);
        let now = Instant::now();
        let mut rings = self.latencies_us.lock().expect("metrics lock");
        for (priority, d) in latencies {
            rings[priority.index()].push(d.as_micros() as u64, now);
        }
    }

    /// Records a batch execution's wall time (the basis of the shed
    /// retry hint).
    pub fn record_batch_exec(&self, wall: Duration) {
        self.last_batch_us
            .store(wall.as_micros() as u64, Ordering::Relaxed);
        self.last_batch_at_us
            .store(self.started.elapsed().as_micros() as u64, Ordering::Relaxed);
    }

    /// The most recent batch execution wall time — zero when no batch
    /// has run yet *or* none ran within [`BATCH_RATE_TTL`], so callers
    /// sizing retry hints fall back to their default instead of a rate
    /// measured before an idle period.
    pub fn recent_batch_time(&self) -> Duration {
        let at = self.last_batch_at_us.load(Ordering::Relaxed);
        if at == u64::MAX {
            return Duration::ZERO;
        }
        let age_us = (self.started.elapsed().as_micros() as u64).saturating_sub(at);
        if age_us > BATCH_RATE_TTL.as_micros() as u64 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.last_batch_us.load(Ordering::Relaxed))
    }

    /// Sets the queued-request gauge (called by the batch queue under
    /// its lock after every mutation, so the gauge tracks exactly).
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth as u64, Ordering::Relaxed);
    }

    /// Sets the in-flight-admission gauge (called by admission control
    /// under its lock on every admit and permit release).
    pub fn set_in_flight(&self, in_flight: usize) {
        self.in_flight.store(in_flight as u64, Ordering::Relaxed);
    }

    /// Records a rejected (queue-full) request.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request refused by admission control.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` requests dropped unexecuted at their deadline.
    pub fn record_expired(&self, n: u64) {
        self.expired.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` requests cancelled before execution.
    pub fn record_cancelled(&self, n: u64) {
        self.cancelled.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a consistent snapshot of the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let (per_class_samples, window_oldest) = {
            let rings = self.latencies_us.lock().expect("metrics lock");
            let samples: [Vec<u64>; 3] = [
                rings[0].samples.clone(),
                rings[1].samples.clone(),
                rings[2].samples.clone(),
            ];
            let oldest = rings.iter().filter_map(|r| r.oldest()).min();
            (samples, oldest)
        };
        let requests = self.requests.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let rejected = self.rejected.load(Ordering::Relaxed);
        let shed = self.shed.load(Ordering::Relaxed);
        let expired = self.expired.load(Ordering::Relaxed);
        let cancelled = self.cancelled.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_secs_f64();

        let class_stats = |sorted: &[u64]| -> (f64, f64, f64, f64, f64) {
            let pct = |q: f64| -> f64 {
                if sorted.is_empty() {
                    return 0.0;
                }
                let rank = (q * (sorted.len() - 1) as f64).round() as usize;
                sorted[rank] as f64 / 1e3
            };
            let mean = if sorted.is_empty() {
                0.0
            } else {
                sorted.iter().sum::<u64>() as f64 / sorted.len() as f64 / 1e3
            };
            (pct(0.50), pct(0.95), pct(0.99), mean, sorted.len() as f64)
        };

        let classes: [ClassSnapshot; 3] = std::array::from_fn(|i| {
            let mut sorted = per_class_samples[i].clone();
            sorted.sort_unstable();
            let (p50_ms, _p95, p99_ms, mean_ms, _n) = class_stats(&sorted);
            ClassSnapshot {
                priority: Priority::ALL[i],
                requests: per_class_samples[i].len() as u64,
                p50_ms,
                p99_ms,
                mean_ms,
            }
        });

        // Combined percentiles over every retained sample.
        let mut all: Vec<u64> = per_class_samples.iter().flatten().copied().collect();
        all.sort_unstable();
        let (p50_ms, p95_ms, p99_ms, mean_ms, retained) = class_stats(&all);

        // Window throughput: retained samples over the span from the
        // oldest retained sample to now. Unlike requests/uptime this
        // does not stay decayed forever after an idle stretch — once
        // load resumes, old samples are overwritten and the span tracks
        // the active window. A truly idle server decays toward 0, which
        // is the truthful reading. The span is floored so a snapshot
        // taken right after a single burst (all samples sharing one
        // record instant) cannot report an absurd spike.
        const MIN_WINDOW_SECS: f64 = 0.1;
        let window_qps = match window_oldest {
            Some(t0) => retained / t0.elapsed().as_secs_f64().max(MIN_WINDOW_SECS),
            None => 0.0,
        };
        MetricsSnapshot {
            requests,
            batches,
            rejected,
            shed,
            expired,
            cancelled,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            avg_batch: if batches == 0 {
                0.0
            } else {
                requests as f64 / batches as f64
            },
            qps: window_qps,
            lifetime_qps: if elapsed <= 0.0 {
                0.0
            } else {
                requests as f64 / elapsed
            },
            p50_ms,
            p95_ms,
            p99_ms,
            mean_ms,
            classes,
            layers: Vec::new(),
        }
    }
}

/// Latency stats for one priority class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassSnapshot {
    /// Which class this row describes.
    pub priority: Priority,
    /// Retained completed requests in this class's window.
    pub requests: u64,
    /// Median latency (enqueue → response), milliseconds.
    pub p50_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
}

/// A point-in-time view of the serving counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests completed.
    pub requests: u64,
    /// Batched executions run.
    pub batches: u64,
    /// Requests rejected for backpressure (queue full).
    pub rejected: u64,
    /// Requests refused by admission control (in-flight budgets).
    pub shed: u64,
    /// Requests dropped unexecuted because their deadline passed.
    pub expired: u64,
    /// Requests cancelled before execution.
    pub cancelled: u64,
    /// Requests waiting in the batch queue right now (gauge).
    pub queue_depth: u64,
    /// Requests holding an admission permit right now (gauge; returns
    /// to zero once the server drains).
    pub in_flight: u64,
    /// Mean requests per executed batch.
    pub avg_batch: f64,
    /// Completed requests per second over the retained sample window
    /// (oldest retained sample → snapshot time). Immune to long idle
    /// stretches before the load started.
    pub qps: f64,
    /// Completed requests per second since server start (the lifetime
    /// average; decays while idle).
    pub lifetime_qps: f64,
    /// Median request latency (enqueue → response), milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Per-priority-class latency breakdown, highest priority first.
    pub classes: [ClassSnapshot; 3],
    /// Per-model per-layer execution profiles (p50/p99/GFLOP-s gauges).
    /// Empty unless telemetry profiled some executions and the
    /// snapshot came from [`crate::Server::snapshot`], which merges
    /// them in; [`ServerMetrics::snapshot`] alone leaves this empty.
    pub layers: Vec<LayerSnapshot>,
}

impl MetricsSnapshot {
    /// The per-class stats for `priority`.
    pub fn class(&self, priority: Priority) -> &ClassSnapshot {
        &self.classes[priority.index()]
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requests={} batches={} rejected={} shed={} expired={} cancelled={} \
             depth={} in_flight={} \
             avg_batch={:.2} qps={:.1} (lifetime {:.1}) \
             latency p50={:.3}ms p95={:.3}ms p99={:.3}ms mean={:.3}ms",
            self.requests,
            self.batches,
            self.rejected,
            self.shed,
            self.expired,
            self.cancelled,
            self.queue_depth,
            self.in_flight,
            self.avg_batch,
            self.qps,
            self.lifetime_qps,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.mean_ms,
        )?;
        for c in &self.classes {
            if c.requests > 0 {
                write!(
                    f,
                    " {}[n={} p50={:.3}ms p99={:.3}ms]",
                    c.priority.label(),
                    c.requests,
                    c.p50_ms,
                    c.p99_ms
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn standard(latencies: &[Duration]) -> Vec<(Priority, Duration)> {
        latencies.iter().map(|d| (Priority::Standard, *d)).collect()
    }

    #[test]
    fn empty_metrics_snapshot_is_zeroed() {
        let m = ServerMetrics::new();
        let s = m.snapshot();
        assert_eq!(s.requests, 0);
        assert_eq!(s.p99_ms, 0.0);
        assert_eq!(s.avg_batch, 0.0);
        assert_eq!(s.shed, 0);
        assert_eq!(s.expired, 0);
        assert_eq!(s.cancelled, 0);
        for c in &s.classes {
            assert_eq!(c.requests, 0);
        }
    }

    #[test]
    fn percentiles_order_correctly() {
        let m = ServerMetrics::new();
        // 100 requests in two batches: latencies 1ms..100ms.
        let first: Vec<Duration> = (1..=50).map(Duration::from_millis).collect();
        let second: Vec<Duration> = (51..=100).map(Duration::from_millis).collect();
        m.record_batch(&standard(&first));
        m.record_batch(&standard(&second));
        let s = m.snapshot();
        assert_eq!(s.requests, 100);
        assert_eq!(s.batches, 2);
        assert_eq!(s.avg_batch, 50.0);
        assert!((s.p50_ms - 51.0).abs() < 1.5, "p50 {}", s.p50_ms);
        assert!((s.p95_ms - 95.0).abs() < 1.5, "p95 {}", s.p95_ms);
        assert!((s.p99_ms - 99.0).abs() < 1.5, "p99 {}", s.p99_ms);
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
    }

    #[test]
    fn per_class_stats_are_segregated() {
        let m = ServerMetrics::new();
        m.record_batch(&[
            (Priority::Interactive, Duration::from_millis(2)),
            (Priority::Interactive, Duration::from_millis(4)),
            (Priority::Batch, Duration::from_millis(100)),
            (Priority::Batch, Duration::from_millis(200)),
        ]);
        let s = m.snapshot();
        let interactive = s.class(Priority::Interactive);
        let batch = s.class(Priority::Batch);
        assert_eq!(interactive.requests, 2);
        assert_eq!(batch.requests, 2);
        assert_eq!(s.class(Priority::Standard).requests, 0);
        assert!(interactive.p99_ms <= 4.1, "{}", interactive.p99_ms);
        assert!(batch.p50_ms >= 99.0, "{}", batch.p50_ms);
        // Combined stats still cover everything.
        assert_eq!(s.requests, 4);
        assert!(s.p99_ms >= 199.0);
    }

    #[test]
    fn lifecycle_counters_accumulate() {
        let m = ServerMetrics::new();
        m.record_rejected();
        m.record_rejected();
        m.record_shed();
        m.record_expired(3);
        m.record_cancelled(2);
        let s = m.snapshot();
        assert_eq!(s.rejected, 2);
        assert_eq!(s.shed, 1);
        assert_eq!(s.expired, 3);
        assert_eq!(s.cancelled, 2);
    }

    #[test]
    fn recent_batch_time_tracks_the_latest_execution() {
        let m = ServerMetrics::new();
        assert!(m.recent_batch_time().is_zero());
        m.record_batch_exec(Duration::from_millis(7));
        assert_eq!(m.recent_batch_time(), Duration::from_millis(7));
        m.record_batch_exec(Duration::from_millis(3));
        assert_eq!(m.recent_batch_time(), Duration::from_millis(3));
    }

    /// Satellite regression: after an idle stretch longer than the TTL,
    /// the last batch rate must expire to zero so shed retry hints fall
    /// back to their default instead of quoting a pre-idle rate.
    #[test]
    fn recent_batch_time_expires_after_an_idle_period() {
        let m = ServerMetrics::new();
        m.record_batch_exec(Duration::from_millis(7));
        assert_eq!(m.recent_batch_time(), Duration::from_millis(7));
        std::thread::sleep(BATCH_RATE_TTL + Duration::from_millis(150));
        assert!(
            m.recent_batch_time().is_zero(),
            "stale batch rate must decay to zero"
        );
        // Fresh traffic revives the reading.
        m.record_batch_exec(Duration::from_millis(2));
        assert_eq!(m.recent_batch_time(), Duration::from_millis(2));
    }

    #[test]
    fn gauges_surface_in_the_snapshot() {
        let m = ServerMetrics::new();
        assert_eq!(m.snapshot().queue_depth, 0);
        assert_eq!(m.snapshot().in_flight, 0);
        m.set_queue_depth(5);
        m.set_in_flight(3);
        let s = m.snapshot();
        assert_eq!(s.queue_depth, 5);
        assert_eq!(s.in_flight, 3);
        let line = s.to_string();
        assert!(line.contains("depth=5"), "{line}");
        assert!(line.contains("in_flight=3"), "{line}");
        m.set_queue_depth(0);
        m.set_in_flight(0);
        let s = m.snapshot();
        assert_eq!((s.queue_depth, s.in_flight), (0, 0));
    }

    #[test]
    fn qps_reflects_the_active_window_not_idle_uptime() {
        let m = ServerMetrics::new();
        // Idle stretch before any traffic arrives.
        std::thread::sleep(Duration::from_millis(300));
        m.record_batch(&standard(&vec![Duration::from_millis(1); 50]));
        std::thread::sleep(Duration::from_millis(120));
        m.record_batch(&standard(&vec![Duration::from_millis(1); 50]));
        let s = m.snapshot();
        assert_eq!(s.requests, 100);
        // 100 requests over a ~120ms active window vs ~420ms of uptime:
        // the window rate must not be dragged down by the idle period.
        assert!(
            s.qps > s.lifetime_qps * 2.0,
            "windowed qps {} must beat decayed lifetime qps {}",
            s.qps,
            s.lifetime_qps
        );
        assert!(s.lifetime_qps > 0.0);
    }

    #[test]
    fn qps_is_bounded_right_after_a_single_burst() {
        let m = ServerMetrics::new();
        m.record_batch(&standard(&vec![Duration::from_millis(1); 50]));
        let s = m.snapshot();
        // All 50 samples share one record instant; the floored window
        // must keep the reading sane instead of dividing by ~0.
        assert!(
            s.qps <= 50.0 / 0.1 + 1.0,
            "burst qps {} must be span-floored",
            s.qps
        );
    }

    /// LatencyRing wrap-around: after pushing more than `MAX_SAMPLES`
    /// samples, percentiles reflect only the most recent window — the
    /// overwritten prefix must not contribute.
    #[test]
    fn wrapped_ring_percentiles_cover_only_the_recent_window() {
        let m = ServerMetrics::new();
        // Fill the ring with slow samples, then overwrite 3/4 of it
        // with fast ones: the window is now 3/4 fast, 1/4 slow.
        m.record_batch(&standard(&vec![Duration::from_millis(100); MAX_SAMPLES]));
        m.record_batch(&standard(&vec![
            Duration::from_millis(1);
            MAX_SAMPLES * 3 / 4
        ]));
        let s = m.snapshot();
        assert_eq!(s.requests, (MAX_SAMPLES + MAX_SAMPLES * 3 / 4) as u64);
        assert!(
            (s.p50_ms - 1.0).abs() < 0.01,
            "p50 {} must come from the fast 3/4 of the window",
            s.p50_ms
        );
        assert!(
            (s.p95_ms - 100.0).abs() < 0.01,
            "p95 {} must still see the slow 1/4 tail",
            s.p95_ms
        );
        assert!((s.p99_ms - 100.0).abs() < 0.01, "p99 {}", s.p99_ms);
    }

    #[test]
    fn sample_store_is_bounded_and_keeps_the_recent_window() {
        let m = ServerMetrics::new();
        // Overfill the ring: MAX_SAMPLES slow requests, then MAX_SAMPLES
        // fast ones. The window must hold only the fast tail.
        let slow = vec![Duration::from_millis(1000); MAX_SAMPLES];
        m.record_batch(&standard(&slow));
        let fast = vec![Duration::from_millis(1); MAX_SAMPLES];
        m.record_batch(&standard(&fast));
        let s = m.snapshot();
        assert_eq!(s.requests, 2 * MAX_SAMPLES as u64, "totals stay exact");
        assert!(
            (s.p99_ms - 1.0).abs() < 0.01,
            "p99 {} reflects only the recent window",
            s.p99_ms
        );
    }
}
