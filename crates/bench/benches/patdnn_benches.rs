//! Micro-benchmarks mirroring the paper's figures, on a hand-rolled
//! timing harness (`harness = false`; the container builds offline, so
//! no external benchmark framework is used).
//!
//! - `overall/*` — framework comparison on a VGG-L6-class layer (Fig. 12)
//! - `breakdown/*` — optimization levels No-opt → Full (Fig. 13)
//! - `storage/*` — FKW vs CSR construction (Fig. 16)
//! - `gflops/*` — pattern vs dense kernels (Fig. 17)
//! - `fkr_ablation/*` — full FKR similarity vs identity order (DESIGN §5)
//!
//! Run with `cargo bench -p patdnn-bench`. Each case is timed over a
//! fixed number of iterations after one warm-up run and reported as mean
//! milliseconds per iteration.

use std::time::Instant;

use patdnn_bench::workloads::{Framework, PrunedLayer};
use patdnn_compiler::csr::CsrLayer;
use patdnn_compiler::fkr::{filter_kernel_reorder, FilterOrder};
use patdnn_compiler::fkw::FkwLayer;
use patdnn_compiler::tune::space::TuningConfig;
use patdnn_runtime::executor::ConvExecutor;
use patdnn_runtime::parallel::{ParallelPattern, Schedule};
use patdnn_runtime::pattern_exec::{OptLevel, PatternConv};
use patdnn_tensor::Conv2dGeometry;

const ITERS: usize = 10;

/// Times `f` over [`ITERS`] iterations after one warm-up, printing the
/// mean time under `group/name`.
fn bench(group: &str, name: &str, mut f: impl FnMut()) {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    let ms = start.elapsed().as_secs_f64() * 1e3 / ITERS as f64;
    println!("{group}/{name:<24} {ms:>10.3} ms/iter");
}

fn bench_layer() -> PrunedLayer {
    // A VGG L6-class layer at quarter scale: 256x256x3x3 on 14x14.
    let geo = Conv2dGeometry::new(256, 256, 3, 3, 14, 14, 1, 1);
    PrunedLayer::from_geometry("bench", geo, 8, 3.6, 7)
}

fn bench_overall(layer: &PrunedLayer) {
    let input = layer.input(1);
    for fw in [
        Framework::TfliteLike,
        Framework::TvmLike,
        Framework::MnnLike,
        Framework::PatDnnCsr,
        Framework::PatDnn,
    ] {
        let exec = layer.framework_exec(fw);
        bench("overall", fw.label(), || {
            std::hint::black_box(exec.run(&input));
        });
    }
}

fn bench_breakdown(layer: &PrunedLayer) {
    let input = layer.input(2);
    for level in OptLevel::all() {
        let exec = layer.pattern_exec(level);
        bench("breakdown", level.label(), || {
            std::hint::black_box(exec.run(&input));
        });
    }
    // Parallel balanced (the deployed configuration).
    let par = ParallelPattern::new(layer.pattern_exec(OptLevel::Full), 4, Schedule::Balanced);
    bench("breakdown", "Full+4threads", || {
        std::hint::black_box(par.run(&input));
    });
}

fn bench_storage(layer: &PrunedLayer) {
    bench("storage", "fkw_build", || {
        let order = filter_kernel_reorder(&layer.lp);
        std::hint::black_box(FkwLayer::from_pruned(
            &layer.weights,
            &layer.lp,
            &layer.set,
            &order,
        ));
    });
    bench("storage", "csr_build", || {
        std::hint::black_box(CsrLayer::from_dense(&layer.weights));
    });
}

fn bench_gflops(layer: &PrunedLayer) {
    let input = layer.input(3);
    let dense = layer.framework_exec(Framework::PatDnnDense);
    bench("gflops", "dense_tiled", || {
        std::hint::black_box(dense.run(&input));
    });
    let pat = layer.pattern_exec(OptLevel::Full);
    bench("gflops", "pattern_full", || {
        std::hint::black_box(pat.run(&input));
    });
}

fn bench_fkr_ablation(layer: &PrunedLayer) {
    let input = layer.input(4);
    // Identity order: no filter reorder (kernels still pattern-grouped).
    let identity = FkwLayer::from_pruned(
        &layer.weights,
        &layer.lp,
        &layer.set,
        &FilterOrder::identity(&layer.lp),
    );
    let no_fkr = ParallelPattern::new(
        PatternConv::new(
            layer.geo,
            identity,
            None,
            OptLevel::Full,
            TuningConfig::tuned_default(),
        ),
        4,
        Schedule::Contiguous,
    );
    bench("fkr_ablation", "no_fkr_contiguous", || {
        std::hint::black_box(no_fkr.run(&input));
    });
    let fkr = ParallelPattern::new(layer.pattern_exec(OptLevel::Full), 4, Schedule::Balanced);
    bench("fkr_ablation", "fkr_balanced", || {
        std::hint::black_box(fkr.run(&input));
    });
}

fn main() {
    let layer = bench_layer();
    bench_overall(&layer);
    bench_breakdown(&layer);
    bench_storage(&layer);
    bench_gflops(&layer);
    bench_fkr_ablation(&layer);
}
