//! Criterion micro-benchmarks mirroring the paper's figures.
//!
//! - `overall/*` — framework comparison on a VGG-L6-class layer (Fig. 12)
//! - `breakdown/*` — optimization levels No-opt → Full (Fig. 13)
//! - `permutation/*` — loop orders ± blocking (Fig. 15)
//! - `storage/*` — FKW vs CSR construction (Fig. 16)
//! - `gflops/*` — pattern vs dense kernels (Fig. 17)
//! - `fkr_ablation/*` — full FKR similarity vs identity order (DESIGN §5)

use criterion::{criterion_group, criterion_main, Criterion};
use patdnn_bench::workloads::{Framework, PrunedLayer};
use patdnn_compiler::csr::CsrLayer;
use patdnn_compiler::fkr::{filter_kernel_reorder, FilterOrder};
use patdnn_compiler::fkw::FkwLayer;
use patdnn_compiler::tune::space::TuningConfig;
use patdnn_runtime::executor::ConvExecutor;
use patdnn_runtime::parallel::{ParallelPattern, Schedule};
use patdnn_runtime::pattern_exec::{OptLevel, PatternConv};
use patdnn_tensor::Conv2dGeometry;

fn bench_layer() -> PrunedLayer {
    // A VGG L6-class layer at quarter scale: 256x256x3x3 on 14x14.
    let geo = Conv2dGeometry::new(256, 256, 3, 3, 14, 14, 1, 1);
    PrunedLayer::from_geometry("bench", geo, 8, 3.6, 7)
}

fn bench_overall(c: &mut Criterion) {
    let layer = bench_layer();
    let input = layer.input(1);
    let mut group = c.benchmark_group("overall");
    group.sample_size(10);
    for fw in [
        Framework::TfliteLike,
        Framework::TvmLike,
        Framework::MnnLike,
        Framework::PatDnnCsr,
        Framework::PatDnn,
    ] {
        let exec = layer.framework_exec(fw);
        group.bench_function(fw.label(), |b| b.iter(|| exec.run(&input)));
    }
    group.finish();
}

fn bench_breakdown(c: &mut Criterion) {
    let layer = bench_layer();
    let input = layer.input(2);
    let mut group = c.benchmark_group("breakdown");
    group.sample_size(10);
    for level in OptLevel::all() {
        let exec = layer.pattern_exec(level);
        group.bench_function(level.label(), |b| b.iter(|| exec.run(&input)));
    }
    // Parallel balanced (the deployed configuration).
    let par = ParallelPattern::new(layer.pattern_exec(OptLevel::Full), 4, Schedule::Balanced);
    group.bench_function("Full+4threads", |b| b.iter(|| par.run(&input)));
    group.finish();
}

fn bench_storage(c: &mut Criterion) {
    let layer = bench_layer();
    let mut group = c.benchmark_group("storage");
    group.sample_size(10);
    group.bench_function("fkw_build", |b| {
        b.iter(|| {
            let order = filter_kernel_reorder(&layer.lp);
            FkwLayer::from_pruned(&layer.weights, &layer.lp, &layer.set, &order)
        })
    });
    group.bench_function("csr_build", |b| {
        b.iter(|| CsrLayer::from_dense(&layer.weights))
    });
    group.finish();
}

fn bench_gflops(c: &mut Criterion) {
    let layer = bench_layer();
    let input = layer.input(3);
    let mut group = c.benchmark_group("gflops");
    group.sample_size(10);
    let dense = layer.framework_exec(Framework::PatDnnDense);
    group.bench_function("dense_tiled", |b| b.iter(|| dense.run(&input)));
    let pat = layer.pattern_exec(OptLevel::Full);
    group.bench_function("pattern_full", |b| b.iter(|| pat.run(&input)));
    group.finish();
}

fn bench_fkr_ablation(c: &mut Criterion) {
    let layer = bench_layer();
    let input = layer.input(4);
    let mut group = c.benchmark_group("fkr_ablation");
    group.sample_size(10);
    // Identity order: no filter reorder (kernels still pattern-grouped).
    let identity = FkwLayer::from_pruned(
        &layer.weights,
        &layer.lp,
        &layer.set,
        &FilterOrder::identity(&layer.lp),
    );
    let no_fkr = ParallelPattern::new(
        PatternConv::new(layer.geo, identity, None, OptLevel::Full, TuningConfig::tuned_default()),
        4,
        Schedule::Contiguous,
    );
    group.bench_function("no_fkr_contiguous", |b| b.iter(|| no_fkr.run(&input)));
    let fkr = ParallelPattern::new(layer.pattern_exec(OptLevel::Full), 4, Schedule::Balanced);
    group.bench_function("fkr_balanced", |b| b.iter(|| fkr.run(&input)));
    group.finish();
}

criterion_group!(
    benches,
    bench_overall,
    bench_breakdown,
    bench_storage,
    bench_gflops,
    bench_fkr_ablation
);
criterion_main!(benches);
