//! Mutation corpus for the network wire protocol
//! (`patdnn_serve::wire`).
//!
//! The wire codec makes the same promise the artifact codec does ([see
//! `crate::corpus`]): **no byte stream coming off a socket reaches the
//! serving layer unless it decodes into a well-formed, bounds-checked
//! frame** — and nothing a hostile or corrupted peer sends may panic
//! the process or trigger an unbounded allocation. This module attacks
//! that promise mechanically, with the artifact corpus's recipe
//! applied to framed streams:
//!
//! - **Base streams** — every frame variant the protocol defines,
//!   encoded with representative payloads: all three priority classes,
//!   zero / finite / saturating deadlines, small and multi-dimensional
//!   tensors with adversarial float values (NaN, infinities,
//!   subnormals — stored as raw bits, so they must round-trip), reject
//!   frames for every frozen `ServeError` code, and the connection
//!   handshake itself.
//! - **Byte track** — single-byte flips (`^0xFF` and `^0x01`) at
//!   evenly spread offsets plus truncation cuts, exactly like the
//!   artifact corpus. Every mutant must end in one of two states:
//!   *decode-rejected* with a typed [`WireError`] (counted per
//!   variant), or *benign* — it decodes into some frame and re-encodes
//!   **bit-identically** (the flip landed in represented data: an id,
//!   a tensor bit pattern, a priority byte that named another valid
//!   class). A panic or a lossy "benign" decode is a corpus failure.
//!
//! No mutant is ever dispatched to a server: the harness stops at
//! decode (+ re-encode for benign mutants), so `executed` stays zero
//! by construction. Everything is deterministic — no RNG, no clock —
//! so a regression names the exact mutant that slipped through.
//!
//! Run via `repro wire-corpus` or the `wire_corpus` integration test
//! (quick mode).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use patdnn_serve::wire::{self, Frame, WireError, MAX_FRAME_LEN, WIRE_MAGIC};
use patdnn_serve::{Priority, ServeError};
use patdnn_tensor::Tensor;

use crate::corpus::CorpusReport;

/// A deterministic tensor with adversarial float payloads: NaN,
/// infinities, a subnormal, and ordinary values, cycled over `shape`.
fn adversarial_tensor(shape: &[usize]) -> Tensor {
    let pattern = [
        0.0f32,
        -0.0,
        1.5,
        -3.25e7,
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::MIN_POSITIVE / 2.0, // subnormal
        f32::MAX,
    ];
    let len: usize = shape.iter().product();
    let data: Vec<f32> = (0..len).map(|i| pattern[i % pattern.len()]).collect();
    Tensor::from_vec(shape, data).expect("adversarial tensor")
}

/// Every frozen error variant, with payloads a reject frame carries.
/// The nested compile/artifact/quant errors (codes 11–13) are rebuilt
/// from their frozen codes — exactly how a peer reconstructs them.
fn all_serve_errors() -> Vec<ServeError> {
    let mut errors = vec![
        ServeError::UnknownModel("ghost".into()),
        ServeError::QueueFull,
        ServeError::QueueClosed,
        ServeError::ShuttingDown,
        ServeError::Expired {
            missed_by: Duration::from_micros(12_345),
        },
        ServeError::Cancelled,
        ServeError::Shed {
            retry_after_hint: Duration::from_millis(7),
        },
        ServeError::MissingInput,
        ServeError::Closed,
        ServeError::ShapeMismatch {
            expected: vec![3, 8, 8],
            got: vec![1, 28, 28],
        },
        ServeError::Internal("worker fault: slot 3 poisoned".into()),
    ];
    for code in [11u16, 12, 13] {
        errors.push(ServeError::from_code(code).expect("frozen code"));
    }
    errors
}

/// One base byte stream the byte track mutates.
struct Base {
    label: String,
    bytes: Vec<u8>,
    /// Handshake streams are classified with the handshake reader;
    /// frame streams with `read_frame`.
    handshake: bool,
}

/// Builds every base stream: the handshake plus one framed encoding of
/// each representative frame.
fn build_bases(report: &mut CorpusReport) -> Vec<Base> {
    let mut frames: Vec<(String, Frame)> = Vec::new();
    for (p_idx, priority) in [Priority::Interactive, Priority::Standard, Priority::Batch]
        .into_iter()
        .enumerate()
    {
        for (d_idx, deadline_us) in [0u64, 250_000, u64::MAX].into_iter().enumerate() {
            frames.push((
                format!("infer p{p_idx} d{d_idx}"),
                Frame::Infer {
                    id: 0x0102_0304_0506_0708,
                    model: "vgg_small".into(),
                    priority,
                    deadline_us,
                    input: adversarial_tensor(&[1, 3, 8, 8]),
                },
            ));
        }
    }
    frames.push((
        "infer rank4".into(),
        Frame::Infer {
            id: 2,
            model: "m".into(),
            priority: Priority::Standard,
            deadline_us: 1,
            input: adversarial_tensor(&[2, 3, 4, 5]),
        },
    ));
    frames.push(("cancel".into(), Frame::Cancel { id: u64::MAX }));
    frames.push(("ping".into(), Frame::Ping { token: 0xDEAD_BEEF }));
    frames.push(("shutdown drain".into(), Frame::Shutdown { drain: true }));
    frames.push(("shutdown now".into(), Frame::Shutdown { drain: false }));
    frames.push((
        "completed".into(),
        Frame::Completed {
            id: 3,
            latency_us: 1_234,
            batch_size: 8,
            output: adversarial_tensor(&[1, 10]),
        },
    ));
    for err in all_serve_errors() {
        frames.push((
            format!("reject code {}", err.code()),
            Frame::reject(9, &err),
        ));
    }
    frames.push((
        "pong".into(),
        Frame::Pong {
            token: 7,
            queue_depth: 42,
            in_flight: 3,
            models: 2,
        },
    ));
    frames.push(("shutdown-ack".into(), Frame::ShutdownAck));

    let mut bases = Vec::new();
    let mut handshake = Vec::new();
    wire::write_handshake(&mut handshake).expect("handshake encodes");
    bases.push(Base {
        label: "handshake".into(),
        bytes: handshake,
        handshake: true,
    });
    for (label, frame) in frames {
        let mut bytes = Vec::new();
        wire::write_frame(&mut bytes, &frame).expect("frame encodes");
        bases.push(Base {
            label,
            bytes,
            handshake: false,
        });
    }
    report.artifacts = bases.len();
    report.encodings = bases.len();
    bases
}

fn wire_error_class(e: &WireError) -> String {
    match e {
        WireError::BadMagic => "wire:bad-magic".into(),
        WireError::UnsupportedVersion(_) => "wire:unsupported-version".into(),
        WireError::Truncated => "wire:truncated".into(),
        WireError::Oversize { .. } => "wire:oversize".into(),
        WireError::UnknownFrame(_) => "wire:unknown-frame".into(),
        WireError::Malformed(_) => "wire:malformed".into(),
        WireError::Io(_) => "wire:io".into(),
    }
}

/// Reads a full handshake the way the net listener does: sniff the 4
/// magic bytes, then validate the version.
fn read_full_handshake(mut reader: &[u8]) -> Result<u16, WireError> {
    let mut magic = [0u8; 4];
    std::io::Read::read_exact(&mut reader, &mut magic)?;
    if &magic != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    wire::read_handshake_version(&mut reader)
}

/// Decodes one mutant and records its outcome. The codec holds its
/// promise iff the mutant is typed-rejected or decodes into a frame
/// that re-encodes bit-identically to the bytes consumed.
fn classify(label: &str, bytes: &[u8], handshake: bool, report: &mut CorpusReport) {
    report.mutants += 1;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if handshake {
            // A valid mutated handshake has no frame to re-encode;
            // represent success as None.
            read_full_handshake(bytes).map(|_| None)
        } else {
            let mut reader = bytes;
            wire::read_frame(&mut reader).map(|frame| Some((frame, reader.len())))
        }
    }));
    match outcome {
        Err(_) => {
            report.panics += 1;
            report
                .failures
                .push(format!("{label}: decode PANICKED on mutated bytes"));
        }
        Ok(Err(e)) => {
            report.decode_rejected += 1;
            *report.per_class.entry(wire_error_class(&e)).or_insert(0) += 1;
        }
        Ok(Ok(None)) => {
            // A handshake mutant that still read a supported version:
            // only possible for flips that left magic+version valid.
            report.benign += 1;
        }
        Ok(Ok(Some((frame, remaining)))) => {
            let consumed = &bytes[..bytes.len() - remaining];
            let mut reencoded = Vec::new();
            match wire::write_frame(&mut reencoded, &frame) {
                Ok(()) if reencoded == consumed => report.benign += 1,
                Ok(()) => report.failures.push(format!(
                    "{label}: lossy benign decode ({} consumed bytes re-encode to {})",
                    consumed.len(),
                    reencoded.len()
                )),
                Err(e) => report
                    .failures
                    .push(format!("{label}: decoded frame fails to re-encode: {e}")),
            }
        }
    }
}

/// The byte track: flips and truncations at evenly spread offsets,
/// always covering offset 0 and the final byte.
fn byte_track(bases: &[Base], quick: bool, report: &mut CorpusReport) {
    let flips = if quick { 40 } else { 160 };
    let cuts = if quick { 12 } else { 40 };
    for base in bases {
        let n = base.bytes.len();
        for k in 0..flips.min(n) {
            let pos = if flips >= n {
                k
            } else {
                k * (n - 1) / (flips - 1)
            };
            for mask in [0xFFu8, 0x01] {
                let mut mutant = base.bytes.clone();
                mutant[pos] ^= mask;
                classify(
                    &format!("{} flip@{pos}^{mask:#04x}", base.label),
                    &mutant,
                    base.handshake,
                    report,
                );
            }
        }
        for k in 0..cuts.min(n) {
            let cut = if cuts >= n {
                k
            } else {
                k * (n - 1) / (cuts - 1)
            };
            classify(
                &format!("{} cut@{cut}", base.label),
                &base.bytes[..cut],
                base.handshake,
                report,
            );
        }
    }
}

/// Hand-crafted streams aimed at the codec's allocation and structure
/// guards: each must be refused with the named typed error *before*
/// any large allocation happens.
fn crafted_track(report: &mut CorpusReport) {
    let mut crafted: Vec<(String, Vec<u8>)> = Vec::new();

    // A length prefix far beyond the frame cap.
    let mut huge = ((MAX_FRAME_LEN as u64 + 1) as u32).to_le_bytes().to_vec();
    huge.extend_from_slice(&[0u8; 16]);
    crafted.push(("crafted oversize-frame-len".into(), huge));

    // An unknown frame tag.
    let mut unknown = 1u32.to_le_bytes().to_vec();
    unknown.push(0x7F);
    crafted.push(("crafted unknown-tag".into(), unknown));

    // An infer frame whose tensor claims ~u32::MAX-element dimensions:
    // the element-count guard must fire before the data allocation.
    let mut base = Vec::new();
    wire::write_frame(
        &mut base,
        &Frame::Infer {
            id: 1,
            model: "m".into(),
            priority: Priority::Standard,
            deadline_us: 0,
            input: adversarial_tensor(&[2, 2]),
        },
    )
    .expect("encodes");
    // Tensor header sits after: len(4) tag(1) id(8) name_len(2)+1 prio(1)
    // deadline(8) → ndim byte at a fixed offset; forge both u32 dims
    // to u32::MAX.
    let ndim_off = 4 + 1 + 8 + 2 + 1 + 1 + 8;
    let mut forged = base.clone();
    forged[ndim_off + 1..ndim_off + 5].copy_from_slice(&u32::MAX.to_le_bytes());
    forged[ndim_off + 5..ndim_off + 9].copy_from_slice(&u32::MAX.to_le_bytes());
    crafted.push(("crafted tensor-element-bomb".into(), forged));

    // Zero-dimension tensor.
    let mut zero_dim = base.clone();
    zero_dim[ndim_off + 1..ndim_off + 5].copy_from_slice(&0u32.to_le_bytes());
    crafted.push(("crafted tensor-zero-dim".into(), zero_dim));

    // A handshake claiming a future protocol version.
    let mut future = Vec::new();
    wire::write_handshake(&mut future).expect("handshake encodes");
    let version_off = future.len() - 2;
    future[version_off..].copy_from_slice(&(wire::WIRE_VERSION + 1).to_le_bytes());
    crafted.push(("crafted future-version".to_string(), future));

    for (label, bytes) in crafted {
        let handshake = label.contains("future-version");
        classify(&label, &bytes, handshake, report);
    }
}

/// Runs the wire corpus. `quick` shrinks the flip/cut density for the
/// tier-1 integration test; CI runs the full density.
pub fn run(quick: bool) -> CorpusReport {
    let mut report = CorpusReport {
        title: "wire-corpus",
        ..CorpusReport::default()
    };
    let bases = build_bases(&mut report);

    // Sanity: every base stream must decode clean before mutation, and
    // reject frames must rebuild the exact frozen code they carry.
    for base in &bases {
        let ok = if base.handshake {
            read_full_handshake(&base.bytes).is_ok() && base.bytes.len() == WIRE_MAGIC.len() + 2
        } else {
            let mut reader = &base.bytes[..];
            wire::read_frame(&mut reader).is_ok() && reader.is_empty()
        };
        if !ok {
            report
                .failures
                .push(format!("base {} does not decode cleanly", base.label));
        }
    }
    for err in all_serve_errors() {
        let frame = Frame::reject(1, &err);
        let mut bytes = Vec::new();
        wire::write_frame(&mut bytes, &frame).expect("encodes");
        let mut reader = &bytes[..];
        match wire::read_frame(&mut reader) {
            Ok(Frame::Reject { code, .. }) if code == err.code() => {}
            other => report.failures.push(format!(
                "reject frame for code {} decoded to {other:?}",
                err.code()
            )),
        }
    }

    byte_track(&bases, quick, &mut report);
    crafted_track(&mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_wire_corpus_is_clean_and_covers_both_outcomes() {
        let report = run(true);
        assert!(report.is_ok(), "wire corpus failures:\n{report}");
        assert!(report.mutants > 300, "corpus too small:\n{report}");
        assert!(report.decode_rejected > 0, "no rejects:\n{report}");
        assert!(report.benign > 0, "no benign mutants:\n{report}");
        // The allocation guards must have fired.
        assert!(
            report.per_class.contains_key("wire:oversize"),
            "no oversize rejection:\n{report}"
        );
    }
}
